//! Bench support crate: shared helpers for the harness-free timing
//! benches and the table/figure regeneration targets.
//!
//! `cargo bench --workspace` runs, in this crate:
//!
//! * `timing` — micro-benchmarks matching the paper's §5 CPU time
//!   claims (all eight constructions on the `|V| = 50, |E| = 1000,
//!   |N| = 5` random graphs, plus per-net routing on a real device);
//! * `parallel` — sequential-versus-parallel routing speedup on the
//!   Table 5 circuits, from the router's per-pass timing counters;
//! * `table1`–`table5` — `harness = false` targets that regenerate the
//!   paper's tables (quality metrics, not timings);
//! * `figures` — Figures 4, 10, 11, 14, 16;
//! * `ablations` — design-choice ablations (batching, candidate pools,
//!   congestion pressure, net ordering, switch-box flexibility).

#![forbid(unsafe_code)]

/// Returns `true` when a quick, reduced-size run was requested via the
/// `BENCH_QUICK` environment variable — useful in CI.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}
