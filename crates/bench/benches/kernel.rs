//! Shortest-path kernel micro-benchmark: A* lower bounds and the
//! flat-CSR adjacency snapshot against the seed kernel.
//!
//! Two query shapes on seeded random-weight grids — a point-to-point
//! query and the router's staple multi-target fan-out (one source,
//! a clustered far target set) — each timed in a 2×2 matrix:
//! {plain, A*-guided} × {`Graph` adjacency lists, [`CsrView`]}. A
//! scratch-arena `minpath` row covers the [`DistanceOracle`] reuse
//! path. Every variant's distances are asserted equal to the seed
//! kernel before its timing is reported, so the numbers can never come
//! from a wrong answer.
//!
//! Results go to `BENCH_kernel.json` at the repository root. Quick
//! mode (`BENCH_QUICK=1`) keeps the SAME grid and query sizes and only
//! cuts repetitions, so `bench-diff` comparisons against the
//! checked-in baseline stay apples-to-apples.

use std::time::Instant;

use route_graph::dijkstra::minpath;
use route_graph::lowerbound::{GridPotential, ZeroPotential};
use route_graph::rng::{Rng, SplitMix64};
use route_graph::{CsrView, DistanceOracle, GridGraph, NodeId, ShortestPaths, Weight};

/// Output path, relative to this crate's manifest.
const OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");

/// Grid sizes: the paper's Table 5 substrates are ~20×21 grids; the
/// scaled size exists because kernel-level effects (cache locality,
/// frontier pruning) need a larger ball to show up above timer noise.
const SIZES: &[(&str, usize, usize)] = &[("table5", 21, 21), ("scaled", 96, 96)];

/// Edge weights are drawn near one unit (±10%): tight enough that the
/// grid-Manhattan floor stays a sharp bound (the realistic regime —
/// congestion pricing starts from uniform physical wire costs), random
/// enough that no two routes tie everywhere.
const WEIGHT_LO: u64 = 900;
const WEIGHT_HI: u64 = 1_100;

struct Workload {
    grid: GridGraph,
    source: NodeId,
    targets: Vec<NodeId>,
}

/// Source at the grid center, targets clustered in one far quadrant —
/// a net whose terminals span a fraction of the device, the router's
/// normal case. A plain run floods a cost ball in all four directions
/// until the farthest target settles; the goal-oriented kernel only
/// explores the wedge toward the cluster. (Source and targets at
/// *opposite corners* would be the worst case instead: every monotone
/// lattice path between two corners has the same Manhattan length, so
/// the admissible bound keys the whole rectangle identically and
/// prunes nothing.)
fn build_workload(seed: u64, rows: usize, cols: usize, target_count: usize) -> Workload {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut grid = GridGraph::new(rows, cols, Weight::UNIT).expect("grid");
    let edges: Vec<_> = grid.graph().edge_ids().collect();
    for e in edges {
        let w = Weight::from_milli(rng.gen_range(WEIGHT_LO..=WEIGHT_HI));
        grid.graph_mut().set_weight(e, w).expect("live edge");
    }
    let source = grid.node_at(rows / 2, cols / 2).expect("on-grid");
    let mut targets = Vec::new();
    while targets.len() < target_count {
        let r = rng.gen_range(rows - rows / 4..rows);
        let c = rng.gen_range(cols - cols / 4..cols);
        let t = grid.node_at(r, c).expect("on-grid");
        if t != source && !targets.contains(&t) {
            targets.push(t);
        }
    }
    targets.sort_by_key(|t| t.index());
    Workload { grid, source, targets }
}

/// Times `f` over `reps` repetitions and returns the mean in micros.
/// The first (untimed) call warms caches and verifies the closure runs.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    started.elapsed().as_micros() as f64 / reps as f64
}

struct Row {
    size: &'static str,
    query: &'static str,
    nodes: usize,
    targets: usize,
    seed_us: f64,
    csr_us: f64,
    astar_us: f64,
    astar_csr_us: f64,
    scratch_minpath_us: f64,
    speedup: f64,
}

fn bench_size(name: &'static str, rows: usize, cols: usize, reps: usize) -> Vec<Row> {
    let fan = build_workload(1995, rows, cols, 8);
    let p2p_target = *fan.targets.last().expect("targets");
    let mut out = Vec::new();
    for (query, targets) in [
        ("point_to_point", std::slice::from_ref(&p2p_target)),
        ("multi_target_fanout", fan.targets.as_slice()),
    ] {
        let g = fan.grid.graph();
        let csr = CsrView::build(g);
        let pot = GridPotential::new(&fan.grid, targets).expect("potential");
        // Correctness first: every variant must settle the seed
        // kernel's distances on the target set.
        let truth = ShortestPaths::run_to_targets(g, fan.source, targets).expect("seed");
        for (label, got) in [
            (
                "csr",
                ShortestPaths::run_to_targets_guided(&csr, fan.source, targets, &ZeroPotential),
            ),
            (
                "astar",
                ShortestPaths::run_to_targets_guided(g, fan.source, targets, &pot),
            ),
            (
                "astar_csr",
                ShortestPaths::run_to_targets_guided(&csr, fan.source, targets, &pot),
            ),
        ] {
            let got = got.expect(label);
            for &t in targets {
                assert_eq!(truth.dist(t), got.dist(t), "{name}/{query}/{label}: dist({t})");
            }
        }
        let seed_us = time_us(reps, || {
            let sp = ShortestPaths::run_to_targets(g, fan.source, targets).expect("seed");
            std::hint::black_box(sp.dist(targets[0]));
        });
        let csr_us = time_us(reps, || {
            let sp = ShortestPaths::run_to_targets_guided(&csr, fan.source, targets, &ZeroPotential)
                .expect("csr");
            std::hint::black_box(sp.dist(targets[0]));
        });
        let astar_us = time_us(reps, || {
            let sp =
                ShortestPaths::run_to_targets_guided(g, fan.source, targets, &pot).expect("astar");
            std::hint::black_box(sp.dist(targets[0]));
        });
        let astar_csr_us = time_us(reps, || {
            let sp = ShortestPaths::run_to_targets_guided(&csr, fan.source, targets, &pot)
                .expect("astar+csr");
            std::hint::black_box(sp.dist(targets[0]));
        });
        let mut oracle = DistanceOracle::new();
        assert_eq!(
            oracle.minpath(g, fan.source, p2p_target).expect("scratch"),
            minpath(g, fan.source, p2p_target).expect("alloc"),
            "{name}/{query}: scratch minpath disagrees"
        );
        let scratch_minpath_us = time_us(reps, || {
            let d = oracle.minpath(g, fan.source, p2p_target).expect("scratch");
            std::hint::black_box(d);
        });
        out.push(Row {
            size: name,
            query,
            nodes: g.node_count(),
            targets: targets.len(),
            seed_us,
            csr_us,
            astar_us,
            astar_csr_us,
            scratch_minpath_us,
            speedup: seed_us / astar_csr_us.max(0.001),
        });
    }
    out
}

fn main() {
    let quick = bench::quick_mode();
    let reps = if quick { 8 } else { 60 };
    println!("## shortest-path kernel: A* and flat-CSR vs seed (reps = {reps})");
    println!(
        "{:>8} {:>20} {:>7} {:>4} {:>10} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "size", "query", "nodes", "|T|", "seed us", "csr us", "astar us", "astar+csr", "minpath", "speedup"
    );
    let mut rows = Vec::new();
    for &(name, r, c) in SIZES {
        rows.extend(bench_size(name, r, c, reps));
    }
    for row in &rows {
        println!(
            "{:>8} {:>20} {:>7} {:>4} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>10.1} {:>8.2}",
            row.size,
            row.query,
            row.nodes,
            row.targets,
            row.seed_us,
            row.csr_us,
            row.astar_us,
            row.astar_csr_us,
            row.scratch_minpath_us,
            row.speedup
        );
    }
    // The acceptance bar: A*+CSR beats the seed kernel by >= 1.3x on
    // the scaled multi-target fan-out.
    let gate = rows
        .iter()
        .find(|r| r.size == "scaled" && r.query == "multi_target_fanout")
        .expect("gate row");
    assert!(
        gate.speedup >= 1.3,
        "A*+CSR fan-out speedup {:.2}x below the 1.3x bar",
        gate.speedup
    );
    write_json(&rows, reps, quick);
    println!("results written to {OUT}");
}

fn write_json(rows: &[Row], reps: usize, quick: bool) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"shortest-path kernel: A* lower bounds + flat-CSR adjacency (crates/bench/benches/kernel.rs)\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"weight_milli\": [{WEIGHT_LO}, {WEIGHT_HI}], \"reps\": {reps}, \"quick\": {quick} }},\n"
    ));
    out.push_str("  \"before\": {\n");
    out.push_str("    \"mechanism\": \"seed kernel: plain Dijkstra over the mutable graph's per-node edge lists; a multi-target query floods a cost ball until the last target settles\",\n");
    out.push_str("    \"cost_model\": \"pops scale with the ball volume around the source, pointer-chasing one heap-allocated edge list per settled node\"\n");
    out.push_str("  },\n");
    out.push_str("  \"after\": {\n");
    out.push_str("    \"mechanism\": \"goal-oriented kernel: frontier ordered by dist + admissible grid-Manhattan bound, relaxing over a contiguous flat-CSR (neighbor, edge, weight) arena; settled distances asserted equal to the seed kernel before timing\",\n");
    out.push_str("    \"cost_model\": \"pops scale with the corridor toward the target set; adjacency reads are sequential within one contiguous allocation\"\n");
    out.push_str("  },\n");
    // `bench-diff` keys rows on `circuits[].name` and gates on `*_us`
    // fields, so each (size, query) pair is one named "circuit".
    out.push_str("  \"circuits\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}/{}\", \"nodes\": {}, \"targets\": {}, \"seed_us\": {:.1}, \"csr_us\": {:.1}, \"astar_us\": {:.1}, \"astar_csr_us\": {:.1}, \"scratch_minpath_us\": {:.1}, \"astar_csr_speedup\": {:.2} }}{}\n",
            r.size,
            r.query,
            r.nodes,
            r.targets,
            r.seed_us,
            r.csr_us,
            r.astar_us,
            r.astar_csr_us,
            r.scratch_minpath_us,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"notes\": [\n");
    out.push_str("    \"every timed variant first asserts its target distances equal the seed kernel's, so speedups can never come from wrong answers.\",\n");
    out.push_str("    \"astar_csr_speedup is seed_us / astar_csr_us; the scaled multi-target row is asserted >= 1.3x (the PR acceptance bar).\",\n");
    out.push_str("    \"scratch_minpath_us times DistanceOracle::minpath, the arena-backed point-to-point query that reuses one heap/flag/dist allocation across calls.\",\n");
    out.push_str("    \"quick = true cuts repetitions only; grid and query sizes are identical to the full run so bench-diff stays apples-to-apples.\"\n");
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(OUT, out).expect("write BENCH_kernel.json");
}
