//! Regenerates paper Table 1 (quality metrics, not a timing bench).
//! Set `BENCH_QUICK=1` for a 10-net-per-cell run.
use experiments::table1::{render, run, Table1Config};

fn main() {
    let config = Table1Config {
        nets: if bench::quick_mode() { 10 } else { 50 },
        ..Table1Config::default()
    };
    let sections = run(&config).expect("table 1 experiment failed");
    println!("{}", render(&sections));
}
