//! Per-worker snapshot cost: `Graph::clone` versus epoch-tagged
//! `GraphOverlay::bind` + `reset`.
//!
//! The speculative batched engine used to hand every worker a full
//! `Graph::clone` of the pass snapshot at the top of each wave; the
//! overlay engine binds a [`GraphOverlay`] over the shared snapshot
//! instead and resets it per net with a generation bump. This bench
//! times both mechanisms doing identical work — take a private view of
//! a routing-scale device graph, apply a bounded set of weight
//! mutations (what one net's masking/unmasking touches), observe a
//! result — and reports the per-wave cost of each. The overlay must
//! win: its cost is O(touched), the clone's is O(|V| + |E|).
//!
//! Emits one human table plus a machine-readable `{"bench":"snapshot",
//! ...}` JSON line; `BENCH_QUICK=1` shrinks the device and wave count
//! for CI smoke runs.

use std::hint::black_box;
use std::time::Instant;

use fpga_device::{ArchSpec, Device};
use route_graph::{EdgeId, GraphOverlay, GraphView, GraphViewMut, OverlayArena, Weight};

fn main() {
    // Full mode matches the Table 5 device scale; quick mode keeps the
    // shape but fits in a CI smoke budget.
    let (rows, cols, width, waves, touched) = if bench::quick_mode() {
        (8usize, 8usize, 8usize, 64usize, 64usize)
    } else {
        (20, 20, 12, 512, 256)
    };
    let device = Device::new(ArchSpec::xilinx4000(rows, cols, width)).expect("valid arch");
    let snapshot = device.graph();
    let nodes = snapshot.live_node_count();
    let edge_total = snapshot.edge_count();

    // A deterministic spread of edges standing in for the reads/writes
    // one speculative net performs against its view.
    let stride = (edge_total / touched).max(1);
    let edges: Vec<EdgeId> = (0..edge_total)
        .step_by(stride)
        .take(touched)
        .map(EdgeId::from_index)
        .collect();

    // Before: one full graph clone per worker per wave.
    let start = Instant::now();
    for _ in 0..waves {
        let mut g = snapshot.clone();
        for &e in &edges {
            g.add_weight(e, Weight::UNIT).expect("live edge");
        }
        black_box(g.weight(edges[0]).expect("live edge"));
    }
    let clone_us = start.elapsed().as_secs_f64() * 1e6 / waves as f64;

    // After: bind an overlay over the shared snapshot, mutate, and let
    // the next bind's generation bump discard the dirt in O(1).
    let mut arena = OverlayArena::new();
    let start = Instant::now();
    for _ in 0..waves {
        let mut g = GraphOverlay::bind(snapshot, &mut arena);
        for &e in &edges {
            g.add_weight(e, Weight::UNIT).expect("live edge");
        }
        black_box(g.weight(edges[0]).expect("live edge"));
        g.reset();
    }
    let overlay_us = start.elapsed().as_secs_f64() * 1e6 / waves as f64;

    let speedup = clone_us / overlay_us;
    println!("## per-worker snapshot cost ({rows}x{cols} xc4000, W = {width})");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>14} {:>8}",
        "nodes", "edges", "touched", "clone us/wave", "overlay us/wave", "speedup"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>14.2} {:>14.2} {:>7.1}x",
        nodes, edge_total, touched, clone_us, overlay_us, speedup
    );
    println!(
        "{{\"bench\":\"snapshot\",\"nodes\":{nodes},\"edges\":{edge_total},\
         \"touched_edges\":{touched},\"waves\":{waves},\
         \"clone_us_per_wave\":{clone_us:.2},\
         \"overlay_us_per_wave\":{overlay_us:.2},\"speedup\":{speedup:.2}}}"
    );
    assert!(
        overlay_us <= clone_us,
        "overlay snapshot ({overlay_us:.2} us/wave) must not cost more \
         than a full clone ({clone_us:.2} us/wave)"
    );
}
