//! Regenerates paper Table 3 (Xilinx 4000-series channel widths).
use experiments::table3::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let mut config = WidthExperimentConfig::default();
    if bench::quick_mode() {
        config.max_passes = 5;
    }
    let rows = run(&config).expect("table 3 experiment failed");
    println!("{}", render(&rows));
}
