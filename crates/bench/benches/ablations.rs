//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. IGMST candidate pool (all nodes vs near-net vs none);
//! 2. batched vs one-at-a-time Steiner-point acceptance;
//! 3. switch-block flexibility `F_s` (3 / 4 / 6);
//! 4. congestion pressure `α`;
//! 5. move-to-front net ordering vs static order.

use std::time::Instant;



use experiments::table::TextTable;
use fpga_device::synth::{synthesize, CircuitProfile};
use fpga_device::width::{minimum_channel_width, WidthSearch};
use fpga_device::{ArchSpec, FpgaError, Router, RouterConfig};
use route_graph::{GridGraph, Weight};
use steiner_route::{CandidatePool, Iterated, IteratedConfig, Kmb, Net, SteinerHeuristic};

fn ablation_profile() -> CircuitProfile {
    CircuitProfile {
        name: "ablate",
        rows: 8,
        cols: 8,
        nets_2_3: 24,
        nets_4_10: 8,
        nets_over_10: 2,
    }
}

/// Candidate pool & batching ablation on Table 1 style grid workloads.
fn ablate_igmst(nets: usize) {
    let configs: Vec<(&str, IteratedConfig)> = vec![
        ("all+batched (default)", IteratedConfig::default()),
        (
            "all+one-at-a-time",
            IteratedConfig {
                batched: false,
                ..IteratedConfig::default()
            },
        ),
        (
            "near-net slack 0",
            IteratedConfig {
                pool: CandidatePool::NearNet {
                    slack: Weight::ZERO,
                },
                ..IteratedConfig::default()
            },
        ),
        (
            "near-net slack 2",
            IteratedConfig {
                pool: CandidatePool::NearNet {
                    slack: Weight::from_units(2),
                },
                ..IteratedConfig::default()
            },
        ),
        (
            "no candidates (=KMB)",
            IteratedConfig {
                pool: CandidatePool::Explicit(vec![]),
                ..IteratedConfig::default()
            },
        ),
        (
            "screened ranking",
            IteratedConfig {
                screened: true,
                ..IteratedConfig::default()
            },
        ),
    ];
    let mut t = TextTable::new(
        format!("Ablation 1+2: IGMST candidate pool and batching ({nets} nets, 20x20 grid)"),
        &["configuration", "avg wire vs KMB %", "avg rounds", "time/net"],
    );
    for (label, config) in configs {
        let heuristic = Iterated::with_config(Kmb::new(), config);
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(2024);
        let mut wire_pct = 0.0;
        let mut rounds = 0usize;
        let start = Instant::now();
        for _ in 0..nets {
            let grid = GridGraph::new(20, 20, Weight::UNIT).expect("valid grid");
            let pins =
                route_graph::random::random_net(grid.graph(), 6, &mut rng).expect("enough nodes");
            let net = Net::from_terminals(pins).expect("distinct pins");
            let kmb = Kmb::new().construct(grid.graph(), &net).expect("routable");
            let outcome = heuristic
                .construct_traced(grid.graph(), &net)
                .expect("routable");
            wire_pct += (outcome.tree.cost().as_f64() / kmb.cost().as_f64() - 1.0) * 100.0;
            rounds += outcome.rounds;
        }
        let elapsed = start.elapsed();
        t.push_row(vec![
            label.to_string(),
            format!("{:+.2}", wire_pct / nets as f64),
            format!("{:.1}", rounds as f64 / nets as f64),
            format!("{:.1?}", elapsed / nets as u32),
        ]);
    }
    println!("{}", t.render());
}

/// Switch-block flexibility ablation: minimum channel width as `F_s` grows.
fn ablate_switchbox(max_passes: usize) {
    let profile = ablation_profile();
    let circuit = synthesize(&profile, 2, 11).expect("synthesizable");
    let mut t = TextTable::new(
        "Ablation 3: switch-block flexibility Fs vs minimum channel width",
        &["Fs", "min W (IKMB)", "wirelength"],
    );
    for fs in [3usize, 4, 6] {
        let mut base = ArchSpec::xilinx4000(profile.rows, profile.cols, 4);
        base.fs = fs;
        let found = minimum_channel_width(base, 3..=20, WidthSearch::Binary, |device| {
            Router::new(
                device,
                RouterConfig {
                    max_passes,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
        })
        .expect("routable in range");
        t.push_row(vec![
            fs.to_string(),
            found.channel_width.to_string(),
            format!("{:.0}", found.outcome.total_wirelength.as_f64()),
        ]);
    }
    println!("{}", t.render());
}

/// Congestion pressure ablation at a fixed tight width.
fn ablate_congestion(max_passes: usize) {
    let profile = ablation_profile();
    let circuit = synthesize(&profile, 2, 11).expect("synthesizable");
    let mut t = TextTable::new(
        "Ablation 4: congestion pressure alpha (fixed W)",
        &["alpha (milli)", "min W (IKMB)", "passes at min W"],
    );
    for alpha in [0u64, 500, 1500, 4000] {
        let base = ArchSpec::xilinx4000(profile.rows, profile.cols, 4);
        let found = minimum_channel_width(base, 3..=20, WidthSearch::Binary, |device| {
            Router::new(
                device,
                RouterConfig {
                    max_passes,
                    congestion_alpha_milli: alpha,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
        })
        .expect("routable in range");
        t.push_row(vec![
            alpha.to_string(),
            found.channel_width.to_string(),
            found.outcome.passes.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Net-ordering ablation: move-to-front vs static order.
fn ablate_ordering(max_passes: usize) {
    let profile = ablation_profile();
    let circuit = synthesize(&profile, 2, 11).expect("synthesizable");
    let mut t = TextTable::new(
        "Ablation 5: move-to-front ordering vs static order",
        &["ordering", "min W (IKMB)"],
    );
    for (label, mtf) in [("move-to-front", true), ("static", false)] {
        let base = ArchSpec::xilinx4000(profile.rows, profile.cols, 4);
        let result = minimum_channel_width(base, 3..=20, WidthSearch::Binary, |device| {
            Router::new(
                device,
                RouterConfig {
                    max_passes,
                    move_to_front: mtf,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
        });
        let cell = match result {
            Ok(found) => found.channel_width.to_string(),
            Err(FpgaError::Unroutable { .. }) => "unroutable <= 20".into(),
            Err(e) => panic!("{e}"),
        };
        t.push_row(vec![label.to_string(), cell]);
    }
    println!("{}", t.render());
}

fn main() {
    let quick = bench::quick_mode();
    let nets = if quick { 6 } else { 25 };
    let passes = if quick { 5 } else { 10 };
    ablate_igmst(nets);
    ablate_switchbox(passes);
    ablate_congestion(passes);
    ablate_ordering(passes);
}
