//! Regenerates paper Table 2 (Xilinx 3000-series channel widths).
use experiments::table2::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let mut config = WidthExperimentConfig::default();
    if bench::quick_mode() {
        config.max_passes = 5;
    }
    let rows = run(&config).expect("table 2 experiment failed");
    println!("{}", render(&rows));
}
