//! Timing benches — the paper's §5 CPU-time claims.
//!
//! "CPU times for IKMB, PFA and IDOM on random graphs with |V| = 50,
//! |E| = 1000 and |N| = 5 are in the range of several dozen milliseconds
//! on a Sun/4 workstation." Absolute numbers on this machine will be far
//! faster; the *relative* ordering across algorithms is the comparable
//! signal.
//!
//! Harness-free (`std::time::Instant`) so the workspace carries no
//! external bench dependencies; medians over repeated runs are reported.

use std::time::Instant;

use fpga_device::synth::{synthesize, CircuitProfile};
use fpga_device::{ArchSpec, Device, RouteAlgorithm, Router, RouterConfig};
use route_graph::random::{random_connected_graph, random_net};
use route_graph::Graph;
use steiner_route::{idom, ikmb, izel, Djka, Dom, Kmb, Net, Pfa, SteinerHeuristic, Zel};

fn paper_graph() -> (Graph, Vec<Net>) {
    let mut rng = route_graph::rng::SplitMix64::seed_from_u64(1995);
    let g = random_connected_graph(50, 1000, 1..10, &mut rng).expect("valid shape");
    let nets = (0..8)
        .map(|_| {
            Net::from_terminals(random_net(&g, 5, &mut rng).expect("enough nodes"))
                .expect("distinct pins")
        })
        .collect();
    (g, nets)
}

fn roster() -> Vec<(&'static str, Box<dyn SteinerHeuristic>)> {
    vec![
        ("KMB", Box::new(Kmb::new())),
        ("ZEL", Box::new(Zel::new())),
        ("IKMB", Box::new(ikmb())),
        ("IZEL", Box::new(izel())),
        ("DJKA", Box::new(Djka::new())),
        ("DOM", Box::new(Dom::new())),
        ("PFA", Box::new(Pfa::new())),
        ("IDOM", Box::new(idom())),
    ]
}

/// Runs `f` `runs` times and returns the median duration in microseconds.
fn median_micros(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<u128> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// One construction per algorithm on the paper's timing graph.
fn bench_constructions(runs: usize) {
    let (g, nets) = paper_graph();
    println!("## construct_v50_e1000_n5 (median of {runs} runs, per net)");
    for (name, algo) in roster() {
        let mut i = 0usize;
        let us = median_micros(runs, || {
            let net = &nets[i % nets.len()];
            i += 1;
            algo.construct(&g, net).expect("routable");
        });
        println!("{name:>6}: {us:>10.0} us");
    }
}

/// Whole-circuit routing time on a small real device.
fn bench_circuit_routing(runs: usize) {
    let profile = CircuitProfile {
        name: "bench",
        rows: 8,
        cols: 8,
        nets_2_3: 20,
        nets_4_10: 6,
        nets_over_10: 1,
    };
    let circuit = synthesize(&profile, 2, 7).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(8, 8, 9)).expect("valid arch");
    println!("## route_8x8_circuit (median of {runs} runs)");
    for algo in [
        RouteAlgorithm::Ikmb,
        RouteAlgorithm::Pfa,
        RouteAlgorithm::Idom,
    ] {
        let us = median_micros(runs, || {
            Router::new(&device, RouterConfig::with_algorithm(algo))
                .route(&circuit)
                .expect("routable at W=9");
        });
        println!("{:>6}: {us:>10.0} us", algo.label());
    }
}

/// Substrate primitives: Dijkstra and the distance graph.
fn bench_substrate(runs: usize) {
    let (g, nets) = paper_graph();
    println!("## substrate (median of {runs} runs)");
    let src = nets[0].source();
    let us = median_micros(runs, || {
        route_graph::ShortestPaths::run(&g, src).expect("live source");
    });
    println!("dijkstra_v50_e1000    : {us:>10.0} us");
    let us = median_micros(runs, || {
        route_graph::TerminalDistances::compute(&g, nets[0].terminals())
            .expect("valid terminals");
    });
    println!("terminal_distances_n5 : {us:>10.0} us");
}

fn main() {
    let runs = if bench::quick_mode() { 3 } else { 15 };
    bench_constructions(runs);
    bench_circuit_routing(runs);
    bench_substrate(runs);
}
