//! Criterion timing benches — the paper's §5 CPU-time claims.
//!
//! "CPU times for IKMB, PFA and IDOM on random graphs with |V| = 50,
//! |E| = 1000 and |N| = 5 are in the range of several dozen milliseconds
//! on a Sun/4 workstation." Absolute numbers on this machine will be far
//! faster; the *relative* ordering across algorithms is the comparable
//! signal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use fpga_device::synth::{synthesize, CircuitProfile};
use fpga_device::{ArchSpec, Device, RouteAlgorithm, Router, RouterConfig};
use route_graph::random::{random_connected_graph, random_net};
use route_graph::Graph;
use steiner_route::{idom, ikmb, izel, Djka, Dom, Kmb, Net, Pfa, SteinerHeuristic, Zel};

fn paper_graph() -> (Graph, Vec<Net>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1995);
    let g = random_connected_graph(50, 1000, 1..10, &mut rng).expect("valid shape");
    let nets = (0..8)
        .map(|_| {
            Net::from_terminals(random_net(&g, 5, &mut rng).expect("enough nodes"))
                .expect("distinct pins")
        })
        .collect();
    (g, nets)
}

fn roster() -> Vec<(&'static str, Box<dyn SteinerHeuristic>)> {
    vec![
        ("KMB", Box::new(Kmb::new())),
        ("ZEL", Box::new(Zel::new())),
        ("IKMB", Box::new(ikmb())),
        ("IZEL", Box::new(izel())),
        ("DJKA", Box::new(Djka::new())),
        ("DOM", Box::new(Dom::new())),
        ("PFA", Box::new(Pfa::new())),
        ("IDOM", Box::new(idom())),
    ]
}

/// One construction per algorithm on the paper's timing graph.
fn bench_constructions(c: &mut Criterion) {
    let (g, nets) = paper_graph();
    let mut group = c.benchmark_group("construct_v50_e1000_n5");
    for (name, algo) in roster() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &nets, |b, nets| {
            let mut i = 0usize;
            b.iter(|| {
                let net = &nets[i % nets.len()];
                i += 1;
                algo.construct(&g, net).expect("routable")
            });
        });
    }
    group.finish();
}

/// Whole-circuit routing time on a small real device.
fn bench_circuit_routing(c: &mut Criterion) {
    let profile = CircuitProfile {
        name: "bench",
        rows: 8,
        cols: 8,
        nets_2_3: 20,
        nets_4_10: 6,
        nets_over_10: 1,
    };
    let circuit = synthesize(&profile, 2, 7).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(8, 8, 9)).expect("valid arch");
    let mut group = c.benchmark_group("route_8x8_circuit");
    group.sample_size(10);
    for algo in [
        RouteAlgorithm::Ikmb,
        RouteAlgorithm::Pfa,
        RouteAlgorithm::Idom,
    ] {
        group.bench_function(BenchmarkId::from_parameter(algo.label()), |b| {
            b.iter(|| {
                Router::new(&device, RouterConfig::with_algorithm(algo))
                    .route(&circuit)
                    .expect("routable at W=9")
            });
        });
    }
    group.finish();
}

/// Substrate primitives: Dijkstra and the distance graph.
fn bench_substrate(c: &mut Criterion) {
    let (g, nets) = paper_graph();
    c.bench_function("dijkstra_v50_e1000", |b| {
        let src = nets[0].source();
        b.iter(|| route_graph::ShortestPaths::run(&g, src).expect("live source"));
    });
    c.bench_function("terminal_distances_n5", |b| {
        b.iter(|| {
            route_graph::TerminalDistances::compute(&g, nets[0].terminals())
                .expect("valid terminals")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_constructions, bench_circuit_routing, bench_substrate
}
criterion_main!(benches);
