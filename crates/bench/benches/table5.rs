//! Regenerates paper Table 5 (wirelength/pathlength tradeoff).
use experiments::table5::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let mut config = WidthExperimentConfig::default();
    if bench::quick_mode() {
        config.max_passes = 5;
    }
    let rows = run(&config).expect("table 5 experiment failed");
    println!("{}", render(&rows));
}
