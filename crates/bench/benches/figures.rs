//! Regenerates paper Figures 4, 10, 11, 14, and 16.
use experiments::table::TextTable;
use experiments::widths::WidthExperimentConfig;
use experiments::{fig16, fig4, worst_case};

fn main() {
    let quick = bench::quick_mode();

    let f4 = fig4::run(if quick { 100 } else { 500 }).expect("figure 4 failed");
    println!("{}", fig4::render(&f4));
    let out = experiments::artifact_dir();
    std::fs::create_dir_all(&out).expect("artifact dir");
    let fig4_svg = out.join("fig4_panels.svg");
    std::fs::write(&fig4_svg, fig4::render_svg(&f4).expect("SVG render failed"))
        .expect("write SVG");
    println!("Figure 4 four-panel SVG written to {}\n", fig4_svg.display());

    println!(
        "{}",
        experiments::figs_exec::render(
            &experiments::figs_exec::run_fig6().expect("figure 6 trace failed")
        )
    );
    println!(
        "{}",
        experiments::figs_exec::render(
            &experiments::figs_exec::run_fig13().expect("figure 13 trace failed")
        )
    );

    let sizes10: &[usize] = if quick { &[2, 4, 8] } else { &[2, 4, 8, 16, 32] };
    let fig10 = worst_case::run_fig10(sizes10).expect("figure 10 failed");
    let mut t = TextTable::new(
        "Figure 10: PFA worst case on weighted graphs (ratio vs optimal)",
        &["clusters", "sinks", "PFA/opt", "IDOM/opt"],
    );
    for p in &fig10 {
        t.push_row(vec![
            p.clusters.to_string(),
            (2 * p.clusters).to_string(),
            format!("{:.3}", p.pfa_ratio),
            format!("{:.3}", p.idom_ratio),
        ]);
    }
    println!("{}", t.render());

    let sizes11: &[usize] = if quick { &[2, 4, 7] } else { &[2, 3, 5, 7, 9, 12] };
    let fig11 = worst_case::run_fig11(sizes11).expect("figure 11 failed");
    let mut t = TextTable::new(
        "Figure 11: PFA on the grid staircase (tight bound 2)",
        &["k", "PFA cost", "Steiner opt (lower bound)", "ratio"],
    );
    for p in &fig11 {
        t.push_row(vec![
            p.k.to_string(),
            format!("{:.0}", p.pfa_cost),
            p.steiner_opt.map_or("-".into(), |o| format!("{o:.0}")),
            p.ratio_vs_steiner.map_or("-".into(), |r| format!("{r:.3}")),
        ]);
    }
    println!("{}", t.render());

    let sizes14: &[usize] = if quick { &[2, 4] } else { &[2, 3, 4, 5, 6, 7] };
    let fig14 = worst_case::run_fig14(sizes14).expect("figure 14 failed");
    let mut t = TextTable::new(
        "Figure 14: IDOM on the set-cover gadget (Omega(log N) lower bound)",
        &["m", "sinks", "IDOM/opt", "(m+2)/2"],
    );
    for p in &fig14 {
        t.push_row(vec![
            p.m.to_string(),
            p.sinks.to_string(),
            format!("{:.3}", p.idom_ratio),
            format!("{:.3}", (p.m as f64 + 2.0) / 2.0),
        ]);
    }
    println!("{}", t.render());

    let mut config = WidthExperimentConfig::default();
    if quick {
        config.max_passes = 5;
    }
    let out = experiments::artifact_dir();
    let f16 = fig16::run(&config, &out).expect("figure 16 failed");
    println!(
        "Figure 16: busc routed at W = {} (total wirelength {:.0}); SVG at {}",
        f16.channel_width,
        f16.total_wirelength,
        f16.svg_path.display()
    );
    println!("{}", f16.ascii);
}
