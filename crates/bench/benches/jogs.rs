//! Regenerates the multi-weighted jog-minimization sweep.
use experiments::jogs::{render, run, JogsConfig};

fn main() {
    let config = JogsConfig {
        nets: if bench::quick_mode() { 8 } else { 20 },
        ..JogsConfig::default()
    };
    let points = run(&config).expect("jogs experiment failed");
    println!("{}", render(&points, &config));
}
