//! Sequential-versus-parallel routing speedup on the Table 5 circuits.
//!
//! Routes each circuit once with the strictly-sequential engine
//! (`threads = 1`) and once with the speculative batched engine, at the
//! same channel width, and reports per-pass wall-clock times from the
//! router's [`PassTelemetry`](fpga_device::PassTelemetry) records
//! alongside batching statistics. Both runs produce identical trees by
//! construction, so the comparison is purely about time.

use fpga_device::synth::{synthesize, xc4000_profiles, CircuitProfile};
use fpga_device::{ArchSpec, Device, PassTelemetry, RouteOutcome, Router, RouterConfig};

/// Generous channel width: keeps every circuit routable in few passes so
/// the comparison measures routing throughput, not width-search luck.
const WIDTH: usize = 14;

fn route(circuit_profile: &CircuitProfile, threads: usize) -> RouteOutcome {
    let circuit = synthesize(circuit_profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(
        circuit_profile.rows,
        circuit_profile.cols,
        WIDTH,
    ))
    .expect("valid arch");
    Router::new(
        &device,
        RouterConfig {
            threads,
            ..RouterConfig::default()
        },
    )
    .route(&circuit)
    .unwrap_or_else(|e| panic!("{} at W={WIDTH}: {e}", circuit_profile.name))
}

fn total_micros(passes: &[PassTelemetry]) -> f64 {
    passes.iter().map(|t| t.elapsed.as_micros() as f64).sum()
}

fn main() {
    // Floor at 2 so the speculative engine engages even on one core
    // (there the interesting numbers are the batching counters, not the
    // speedup); cap at 8 where extra workers stop paying for themselves.
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .clamp(2, 8);
    let profiles = xc4000_profiles();
    let profiles: Vec<_> = if bench::quick_mode() {
        profiles
            .into_iter()
            .filter(|p| matches!(p.name, "9symml" | "term1"))
            .collect()
    } else {
        profiles
    };
    println!("## sequential vs parallel routing (threads = {threads}, W = {WIDTH})");
    println!(
        "{:>10} {:>7} {:>12} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "circuit", "passes", "seq us", "par us", "speedup", "batches", "spec", "accept%"
    );
    for profile in &profiles {
        let sequential = route(profile, 1);
        let parallel = route(profile, threads);
        assert_eq!(
            sequential.trees, parallel.trees,
            "{}: engines must agree",
            profile.name
        );
        let seq_us = total_micros(&sequential.telemetry.passes);
        let par_us = total_micros(&parallel.telemetry.passes);
        let batches: usize = parallel.telemetry.passes.iter().map(|t| t.batches).sum();
        let speculated: usize = parallel.telemetry.passes.iter().map(|t| t.speculated).sum();
        let accepted: usize = parallel.telemetry.passes.iter().map(|t| t.accepted).sum();
        let accept = if speculated == 0 {
            100.0
        } else {
            100.0 * accepted as f64 / speculated as f64
        };
        println!(
            "{:>10} {:>7} {:>12.0} {:>12.0} {:>8.2} {:>8} {:>9} {:>9.1}",
            profile.name,
            parallel.passes,
            seq_us,
            par_us,
            seq_us / par_us.max(1.0),
            batches,
            speculated,
            accept
        );
    }
}
