//! Wavefront-versus-batch scheduler comparison on the Table 5 circuits.
//!
//! Routes each circuit at the same channel width three ways — strictly
//! sequential (`threads = 1`), the lockstep batch engine, and the
//! dependency-DAG wavefront scheduler — and reports per-pass wall-clock
//! times from the router's [`PassTelemetry`](fpga_device::PassTelemetry)
//! records alongside the wavefront's steal/stall/respeculation counters.
//! All three runs produce identical trees by construction, so the
//! comparison is purely about time: the wavefront column shows what the
//! commit/speculation overlap buys over the batch engine's barriers.

use fpga_device::synth::{synthesize, xc4000_profiles, CircuitProfile};
use fpga_device::{ArchSpec, Device, PassTelemetry, RouteOutcome, Router, RouterConfig, SchedulerKind};

/// Generous channel width: keeps every circuit routable in few passes so
/// the comparison measures routing throughput, not width-search luck.
const WIDTH: usize = 14;

/// Worker count for both parallel engines. Fixed (rather than derived
/// from the host) so the batch and wavefront columns are always an
/// apples-to-apples comparison at the thread count the acceptance
/// criterion names.
const THREADS: usize = 4;

fn route(circuit_profile: &CircuitProfile, threads: usize, scheduler: SchedulerKind) -> RouteOutcome {
    let circuit = synthesize(circuit_profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(
        circuit_profile.rows,
        circuit_profile.cols,
        WIDTH,
    ))
    .expect("valid arch");
    Router::new(
        &device,
        RouterConfig {
            threads,
            scheduler,
            ..RouterConfig::default()
        },
    )
    .route(&circuit)
    .unwrap_or_else(|e| panic!("{} at W={WIDTH}: {e}", circuit_profile.name))
}

fn total_micros(passes: &[PassTelemetry]) -> f64 {
    passes.iter().map(|t| t.elapsed.as_micros() as f64).sum()
}

/// Best-of-N wall-clock: reroutes `reps` times and keeps the run with
/// the smallest total pass time, so a single scheduler hiccup doesn't
/// decide the comparison. Trees are checked identical across reps.
fn best_of(
    reps: usize,
    circuit_profile: &CircuitProfile,
    threads: usize,
    scheduler: SchedulerKind,
) -> (RouteOutcome, f64) {
    let mut best: Option<(RouteOutcome, f64)> = None;
    for _ in 0..reps {
        let outcome = route(circuit_profile, threads, scheduler);
        let us = total_micros(&outcome.telemetry.passes);
        match &best {
            Some((kept, kept_us)) => {
                assert_eq!(kept.trees, outcome.trees, "{}: reps must agree", circuit_profile.name);
                if us < *kept_us {
                    best = Some((outcome, us));
                }
            }
            None => best = Some((outcome, us)),
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let quick = bench::quick_mode();
    let reps = if quick { 1 } else { 3 };
    let profiles = xc4000_profiles();
    let profiles: Vec<_> = if quick {
        profiles
            .into_iter()
            .filter(|p| matches!(p.name, "9symml" | "term1"))
            .collect()
    } else {
        profiles
    };
    println!("## batch vs wavefront scheduler (threads = {THREADS}, W = {WIDTH}, best of {reps})");
    println!(
        "{:>10} {:>7} {:>12} {:>12} {:>12} {:>8} {:>7} {:>7} {:>7} {:>9}",
        "circuit", "passes", "seq us", "batch us", "wave us", "speedup", "steals", "stalls", "respec", "accept%"
    );
    for profile in &profiles {
        let (sequential, seq_us) = best_of(reps, profile, 1, SchedulerKind::Wavefront);
        let (batch, batch_us) = best_of(reps, profile, THREADS, SchedulerKind::Batch);
        let (wave, wave_us) = best_of(reps, profile, THREADS, SchedulerKind::Wavefront);
        assert_eq!(
            sequential.trees, batch.trees,
            "{}: batch engine must match sequential",
            profile.name
        );
        assert_eq!(
            sequential.trees, wave.trees,
            "{}: wavefront scheduler must match sequential",
            profile.name
        );
        let steals: usize = wave.telemetry.passes.iter().map(|t| t.steals).sum();
        let stalls: usize = wave.telemetry.passes.iter().map(|t| t.stalls).sum();
        let respec: usize = wave.telemetry.passes.iter().map(|t| t.respeculated).sum();
        let speculated: usize = wave.telemetry.passes.iter().map(|t| t.speculated).sum();
        let accepted: usize = wave.telemetry.passes.iter().map(|t| t.accepted).sum();
        let accept = if speculated == 0 {
            100.0
        } else {
            100.0 * accepted as f64 / speculated as f64
        };
        println!(
            "{:>10} {:>7} {:>12.0} {:>12.0} {:>12.0} {:>8.2} {:>7} {:>7} {:>7} {:>9.1}",
            profile.name,
            wave.passes,
            seq_us,
            batch_us,
            wave_us,
            batch_us / wave_us.max(1.0),
            steals,
            stalls,
            respec,
            accept
        );
    }
}
