//! Regenerates the §2 radius-cost tradeoff comparison (BRBC/AHHK sweep).
use experiments::tradeoff::{render, run, TradeoffConfig};

fn main() {
    let config = TradeoffConfig {
        nets: if bench::quick_mode() { 8 } else { 30 },
        ..TradeoffConfig::default()
    };
    let points = run(&config).expect("tradeoff experiment failed");
    println!("{}", render(&points, &config));
}
