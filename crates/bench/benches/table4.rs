//! Regenerates paper Table 4 (channel width: IKMB vs PFA vs IDOM).
use experiments::table4::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let mut config = WidthExperimentConfig::default();
    if bench::quick_mode() {
        config.max_passes = 5;
    }
    let rows = run(&config).expect("table 4 experiment failed");
    println!("{}", render(&rows));
}
