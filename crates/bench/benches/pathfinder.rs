//! Rip-up versus negotiated-congestion (PathFinder) comparison on the
//! Table 5 circuits, plus full-reroute versus selective (dirty-net)
//! negotiation.
//!
//! For each circuit, finds the minimum rip-up channel width by binary
//! search, then walks the negotiated router *down* from that width until
//! its first failure — every pathfinder iteration routes all nets, so
//! failing probes cost the full iteration budget and the descent pays
//! for exactly one of them (successes at generous widths converge in a
//! handful of iterations). Starting at the rip-up width makes the
//! "never wider than rip-up" assertion hold by construction or fail on
//! the very first probe. Each circuit is then rerouted at its own
//! minimum and wall-clock totals reported from the per-pass telemetry.
//! The pathfinder run is repeated at 1 and 4 threads and its trees
//! asserted bit-identical — the route phase is a pure function of the
//! priced snapshot, so the partition must not matter.
//!
//! Selective mode then repeats the descent starting from the full
//! reroute's width, asserting *before any timing* that it never needs a
//! wider channel, and the aggregate wall-clock of the selective runs is
//! asserted at least 1.5x faster than full reroute — the whole point of
//! only rerouting dirty nets is that iteration cost tracks remaining
//! congestion, not circuit size.
//!
//! Results are written to `BENCH_pathfinder.json` at the repository
//! root (overwritten each run; quick runs cover a 2-circuit subset and
//! say so in the config block).

use fpga_device::synth::{synthesize, xc4000_profiles, CircuitProfile};
use fpga_device::width::{minimum_channel_width, WidthSearch};
use fpga_device::{
    ArchSpec, Circuit, Device, PassTelemetry, RouteMode, RouteOutcome, Router, RouterConfig,
};

/// Worker count for the parallel pathfinder runs; fixed so results are
/// comparable across hosts.
const THREADS: usize = 4;

/// Width-search range shared by both strategies.
const MIN_W: usize = 3;
const MAX_W: usize = 24;

/// Output path, relative to this crate's manifest.
const OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pathfinder.json");

/// Probe budgets, matching `WidthExperimentConfig`'s 10-pass discipline
/// rather than the router's 20-pass default: failing probes dominate a
/// width search's wall-clock, and a width that needs more than this
/// budget is not a width the experiments would report either.
const MAX_PASSES: usize = 10;
const PF_ITERATIONS: usize = 30;

fn config_for(mode: RouteMode, threads: usize) -> RouterConfig {
    RouterConfig {
        mode,
        threads,
        max_passes: MAX_PASSES,
        pf_max_iterations: PF_ITERATIONS,
        ..RouterConfig::default()
    }
}

fn selective_config(threads: usize) -> RouterConfig {
    RouterConfig {
        pf_selective: true,
        ..config_for(RouteMode::Pathfinder, threads)
    }
}

fn find_width(
    profile: &CircuitProfile,
    circuit: &Circuit,
    mode: RouteMode,
    threads: usize,
) -> (usize, usize) {
    let base = ArchSpec::xilinx4000(profile.rows, profile.cols, MIN_W);
    let found = minimum_channel_width(base, MIN_W..=MAX_W, WidthSearch::Binary, |device| {
        Router::new(device, config_for(mode, threads)).route(circuit)
    })
    .unwrap_or_else(|e| panic!("{} ({}): width search failed: {e}", profile.name, mode.name()));
    println!(
        "   .. {} {}: W = {} in {} attempts",
        profile.name,
        mode.name(),
        found.channel_width,
        found.attempts
    );
    (found.channel_width, found.attempts)
}

/// Minimum negotiated-congestion width, by descent from the rip-up
/// width: route at `ripup_w`, `ripup_w - 1`, … until the first failure,
/// returning the last routable width. Results are thread-count
/// independent, so the probes run sequentially (this is also the
/// fastest configuration on a small host). Panics if even `ripup_w`
/// fails — that would mean negotiation needs a wider channel than
/// rip-up, which the bench exists to refute.
fn find_pf_width(profile: &CircuitProfile, circuit: &Circuit, ripup_w: usize) -> (usize, usize) {
    let mut attempts = 0usize;
    let mut best = None;
    for w in (MIN_W..=ripup_w).rev() {
        attempts += 1;
        let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, w))
            .expect("valid arch");
        match Router::new(&device, config_for(RouteMode::Pathfinder, 1)).route(circuit) {
            Ok(_) => best = Some(w),
            Err(_) => break,
        }
    }
    let Some(w) = best else {
        panic!(
            "{}: pathfinder failed at the rip-up width W={ripup_w}",
            profile.name
        );
    };
    println!(
        "   .. {} pathfinder: W = {} in {} attempts (descent from {})",
        profile.name, w, attempts, ripup_w
    );
    (w, attempts)
}

/// Minimum selective-mode width, by descent from the full reroute's
/// width. Panics if selective mode fails where full reroute succeeded —
/// skipping clean nets must never cost routability.
fn find_selective_width(profile: &CircuitProfile, circuit: &Circuit, pf_w: usize) -> (usize, usize) {
    let mut attempts = 0usize;
    let mut best = None;
    for w in (MIN_W..=pf_w).rev() {
        attempts += 1;
        let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, w))
            .expect("valid arch");
        match Router::new(&device, selective_config(1)).route(circuit) {
            Ok(_) => best = Some(w),
            Err(_) => break,
        }
    }
    let Some(w) = best else {
        panic!(
            "{}: selective pathfinder failed at the full-reroute width W={pf_w}",
            profile.name
        );
    };
    println!(
        "   .. {} selective: W = {} in {} attempts (descent from {})",
        profile.name, w, attempts, pf_w
    );
    (w, attempts)
}

fn route_with(
    profile: &CircuitProfile,
    circuit: &Circuit,
    width: usize,
    config: RouterConfig,
    label: &str,
) -> RouteOutcome {
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, width))
        .expect("valid arch");
    Router::new(&device, config)
        .route(circuit)
        .unwrap_or_else(|e| panic!("{} ({label}) at W={width}: {e}", profile.name))
}

fn route_at(
    profile: &CircuitProfile,
    circuit: &Circuit,
    width: usize,
    mode: RouteMode,
    threads: usize,
) -> RouteOutcome {
    route_with(profile, circuit, width, config_for(mode, threads), mode.name())
}

fn total_micros(passes: &[PassTelemetry]) -> f64 {
    passes.iter().map(|t| t.elapsed.as_micros() as f64).sum()
}

fn total_rerouted(passes: &[PassTelemetry]) -> usize {
    passes.iter().map(|t| t.nets_rerouted).sum()
}

fn total_repriced(passes: &[PassTelemetry]) -> usize {
    passes.iter().map(|t| t.repriced_edges).sum()
}

struct Row {
    name: &'static str,
    ripup_w: usize,
    pf_w: usize,
    sel_w: usize,
    ripup_passes: usize,
    pf_iterations: usize,
    sel_iterations: usize,
    ripup_us: f64,
    pf_us: f64,
    sel_us: f64,
    overcap_peak: usize,
    pf_rerouted_total: usize,
    pf_repriced_total: usize,
    sel_rerouted_total: usize,
    sel_repriced_total: usize,
}

fn main() {
    let quick = bench::quick_mode();
    let profiles = xc4000_profiles();
    let profiles: Vec<_> = if quick {
        profiles
            .into_iter()
            .filter(|p| matches!(p.name, "9symml" | "term1"))
            .collect()
    } else {
        profiles
    };
    println!("## rip-up vs negotiated congestion (threads = {THREADS}, W in {MIN_W}..={MAX_W})");
    println!(
        "{:>10} {:>8} {:>6} {:>6} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "circuit", "ripup W", "pf W", "sel W", "passes", "pf iter", "sel iter", "ripup us",
        "pf us", "sel us", "speedup"
    );
    let mut rows = Vec::new();
    for profile in &profiles {
        let circuit = synthesize(profile, 2, 1995).expect("synthesizable");
        let (ripup_w, _) = find_width(profile, &circuit, RouteMode::RipUp, 1);
        let (pf_w, _) = find_pf_width(profile, &circuit, ripup_w);
        assert!(
            pf_w <= ripup_w,
            "{}: pathfinder needed W={pf_w}, rip-up W={ripup_w}",
            profile.name
        );
        // Selective width first, asserted before any timing runs: the
        // speedup claim below is only meaningful at an equal-or-narrower
        // channel.
        let (sel_w, _) = find_selective_width(profile, &circuit, pf_w);
        assert!(
            sel_w <= pf_w,
            "{}: selective needed W={sel_w}, full reroute W={pf_w}",
            profile.name
        );
        let ripup = route_at(profile, &circuit, ripup_w, RouteMode::RipUp, 1);
        let pf = route_at(profile, &circuit, pf_w, RouteMode::Pathfinder, THREADS);
        let pf_seq = route_at(profile, &circuit, pf_w, RouteMode::Pathfinder, 1);
        assert_eq!(
            pf.trees, pf_seq.trees,
            "{}: pathfinder trees must be thread-count independent",
            profile.name
        );
        assert_eq!(pf.passes, pf_seq.passes, "{}: iteration counts differ", profile.name);
        let sel = route_with(profile, &circuit, sel_w, selective_config(THREADS), "selective");
        let sel_seq = route_with(profile, &circuit, sel_w, selective_config(1), "selective");
        assert_eq!(
            sel.trees, sel_seq.trees,
            "{}: selective trees must be thread-count independent",
            profile.name
        );
        assert_eq!(
            sel.passes, sel_seq.passes,
            "{}: selective iteration counts differ",
            profile.name
        );
        let row = Row {
            name: profile.name,
            ripup_w,
            pf_w,
            sel_w,
            ripup_passes: ripup.passes,
            pf_iterations: pf.passes,
            sel_iterations: sel.passes,
            ripup_us: total_micros(&ripup.telemetry.passes),
            pf_us: total_micros(&pf.telemetry.passes),
            sel_us: total_micros(&sel.telemetry.passes),
            overcap_peak: pf
                .telemetry
                .passes
                .iter()
                .map(|t| t.overcapacity)
                .max()
                .unwrap_or(0),
            pf_rerouted_total: total_rerouted(&pf.telemetry.passes),
            pf_repriced_total: total_repriced(&pf.telemetry.passes),
            sel_rerouted_total: total_rerouted(&sel.telemetry.passes),
            sel_repriced_total: total_repriced(&sel.telemetry.passes),
        };
        println!(
            "{:>10} {:>8} {:>6} {:>6} {:>8} {:>8} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>8.2}",
            row.name,
            row.ripup_w,
            row.pf_w,
            row.sel_w,
            row.ripup_passes,
            row.pf_iterations,
            row.sel_iterations,
            row.ripup_us,
            row.pf_us,
            row.sel_us,
            row.pf_us / row.sel_us.max(1.0)
        );
        rows.push(row);
    }
    let full_total: f64 = rows.iter().map(|r| r.pf_us).sum();
    let sel_total: f64 = rows.iter().map(|r| r.sel_us).sum();
    let speedup = full_total / sel_total.max(1.0);
    println!(
        "aggregate: full reroute {full_total:.0} us, selective {sel_total:.0} us ({speedup:.2}x)"
    );
    assert!(
        speedup >= 1.5,
        "selective negotiation must be at least 1.5x faster than full reroute in aggregate, \
         measured {speedup:.2}x ({full_total:.0} us vs {sel_total:.0} us)"
    );
    write_json(&rows, quick, speedup);
    println!("results written to {OUT}");
}

fn write_json(rows: &[Row], quick: bool, selective_speedup: f64) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"benchmark\": \"rip-up vs negotiated congestion (crates/bench/benches/pathfinder.rs)\",\n",
    );
    out.push_str(&format!(
        "  \"config\": {{ \"threads\": {THREADS}, \"width_range\": [{MIN_W}, {MAX_W}], \"max_passes\": {MAX_PASSES}, \"pf_iterations\": {PF_ITERATIONS}, \"quick\": {quick} }},\n"
    ));
    out.push_str("  \"before\": {\n");
    out.push_str("    \"mechanism\": \"rip-up: sequential passes; each failed net is torn up, promoted to the front of the order, and rerouted against live congestion\",\n");
    out.push_str("    \"cost_model\": \"pass count scales with conflict chains; later nets route against whatever the earlier ones left behind\"\n");
    out.push_str("  },\n");
    out.push_str("  \"after\": {\n");
    out.push_str("    \"mechanism\": \"pathfinder: every iteration routes ALL nets in parallel against one immutable priced snapshot, then a single writer tallies usage, accumulates history on over-capacity nodes, and reprices\",\n");
    out.push_str("    \"cost_model\": \"iterations scale with congestion depth, not conflict order; the route phase is a pure function of the snapshot, so trees are bit-identical across thread counts\"\n");
    out.push_str("  },\n");
    out.push_str("  \"selective\": {\n");
    out.push_str("    \"mechanism\": \"dirty-net negotiation: after the cost update only nets touching an over-capacity node (plus staleness-flagged ones) reroute, most-congested first; skipped nets keep their trees in the usage tally and the cost update reprices only edges whose endpoint pressure changed\",\n");
    out.push_str("    \"cost_model\": \"iteration cost tracks the remaining congestion, not circuit size; with decay off the trajectory is bit-identical across thread counts, same as full reroute\"\n");
    out.push_str("  },\n");
    out.push_str("  \"circuits\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"ripup_width\": {}, \"pathfinder_width\": {}, \"selective_width\": {}, \"ripup_passes\": {}, \"pathfinder_iterations\": {}, \"selective_iterations\": {}, \"ripup_us\": {:.0}, \"pathfinder_us\": {:.0}, \"selective_us\": {:.0}, \"peak_overcapacity_nodes\": {}, \"nets_rerouted_total\": {}, \"repriced_edges_total\": {}, \"selective_nets_rerouted_total\": {}, \"selective_repriced_edges_total\": {} }}{}\n",
            r.name,
            r.ripup_w,
            r.pf_w,
            r.sel_w,
            r.ripup_passes,
            r.pf_iterations,
            r.sel_iterations,
            r.ripup_us,
            r.pf_us,
            r.sel_us,
            r.overcap_peak,
            r.pf_rerouted_total,
            r.pf_repriced_total,
            r.sel_rerouted_total,
            r.sel_repriced_total,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"aggregate\": {{ \"selective_speedup\": {selective_speedup:.2} }},\n"
    ));
    out.push_str("  \"notes\": [\n");
    out.push_str("    \"pathfinder_width <= ripup_width and selective_width <= pathfinder_width are asserted per circuit before any timing; pathfinder and selective trees are asserted bit-identical between 1 and 4 threads.\",\n");
    out.push_str("    \"rip-up widths come from the library binary search; pathfinder widths from a descent starting at the rip-up width (first failure stops the walk), because a failing negotiated probe costs the full iteration budget and the descent pays for exactly one; selective widths descend from the pathfinder width the same way.\",\n");
    out.push_str("    \"ripup runs sequentially (threads = 1) because that is its fastest configuration for these circuit sizes; pathfinder and selective run their route phases on 4 workers against the shared priced snapshot.\",\n");
    out.push_str("    \"aggregate.selective_speedup is sum(pathfinder_us) / sum(selective_us) and is asserted >= 1.5 by the bench itself.\",\n");
    out.push_str("    \"nets_rerouted_total / repriced_edges_total sum per-iteration telemetry across the run; the selective_ variants show how much work dirty-net selection and delta repricing avoid.\",\n");
    out.push_str("    \"quick = true means the 2-circuit CI subset (9symml, term1); regenerate without BENCH_QUICK for the full nine-circuit table.\"\n");
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(OUT, out).expect("write BENCH_pathfinder.json");
}
