//! Regenerates the §6 3D-FPGA folding comparison.
use experiments::three_d::{render, run, ThreeDConfig};

fn main() {
    let config = ThreeDConfig {
        nets: if bench::quick_mode() { 8 } else { 25 },
        ..ThreeDConfig::default()
    };
    let result = run(&config).expect("3D experiment failed");
    println!("{}", render(&result, &config));
}
