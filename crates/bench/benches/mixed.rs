//! Regenerates the mixed critical/non-critical routing comparison.
use experiments::mixed::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let mut config = WidthExperimentConfig::default();
    if bench::quick_mode() {
        config.max_passes = 5;
    }
    for (circuit, width) in [("term1", 10), ("9symml", 9), ("apex7", 10)] {
        let rows = run(&config, circuit, width, 0.15).expect("mixed experiment failed");
        println!("{}", render(&rows, circuit, width));
    }
}
