//! Telemetry archiving for experiment regeneration runs.
//!
//! Every table binary wraps its experiment in [`with_archived_telemetry`]
//! so a regeneration run leaves the routing trace (spans, counters,
//! congestion snapshots, histograms, profile, convergence, timelines)
//! next to the rendered table, in the same JSONL format the CLI's
//! `--trace` flag emits — plus a rendered `<name>.report.txt` produced
//! by the same engine as `fpga_route trace-report`. That makes a
//! published table auditable after the fact: the archived trace says how
//! many passes each width probe took, how much Dijkstra/Steiner work was
//! spent, and how congestion evolved — without re-running anything.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use route_trace::{Collector, JsonlSink, Trace, TraceSink};

/// Runs `experiment` under a freshly installed trace collector and
/// archives the captured telemetry as JSONL at
/// `artifact_dir()/telemetry/<name>.jsonl`, with the rendered
/// trace-report alongside as `<name>.report.txt`.
///
/// Returns the experiment's result, the archive path, and the trace's
/// human-readable summary (suitable for printing after the table).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the archive files.
pub fn with_archived_telemetry<T>(
    name: &str,
    experiment: impl FnOnce() -> T,
) -> io::Result<(T, PathBuf, String)> {
    let collector = Collector::install();
    let result = experiment();
    let trace = collector.finish();
    let dir = crate::artifact_dir().join("telemetry");
    let path = archive_trace(&dir, name, &trace)?;
    Ok((result, path, trace.summary()))
}

/// Writes `trace` as `<dir>/<name>.jsonl` plus the rendered report as
/// `<dir>/<name>.report.txt`, creating `dir` as needed.
fn archive_trace(dir: &Path, name: &str, trace: &Trace) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut jsonl = Vec::new();
    JsonlSink.emit(trace, &mut jsonl)?;
    fs::write(&path, &jsonl)?;
    let jsonl = String::from_utf8(jsonl).map_err(io::Error::other)?;
    let report = route_trace::report::render_report(&jsonl).map_err(io::Error::other)?;
    fs::write(dir.join(format!("{name}.report.txt")), report)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_device::{
        ArchSpec, BlockPin, Circuit, CircuitNet, Device, Router, RouterConfig, Side,
    };

    #[test]
    fn archives_valid_jsonl_with_routing_activity() {
        let net = CircuitNet {
            pins: vec![
                BlockPin {
                    row: 0,
                    col: 0,
                    side: Side::East,
                    slot: 0,
                },
                BlockPin {
                    row: 3,
                    col: 3,
                    side: Side::West,
                    slot: 0,
                },
            ],
        };
        let circuit = Circuit::new("telemetry-unit", 4, 4, vec![net]).unwrap();
        let device = Device::new(ArchSpec::xilinx4000(4, 4, 6)).unwrap();

        let collector = Collector::install();
        let outcome = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        let trace = collector.finish();
        assert!(!outcome.trees.is_empty());

        let dir = std::env::temp_dir().join(format!(
            "route_telemetry_test_{}",
            std::process::id()
        ));
        let path = archive_trace(&dir, "unit", &trace).unwrap();
        let contents = fs::read_to_string(&path).unwrap();
        let report = fs::read_to_string(dir.join("unit.report.txt")).unwrap();
        fs::remove_dir_all(&dir).ok();

        assert!(
            report.starts_with("trace report"),
            "rendered report archived next to the JSONL, got: {report}"
        );

        assert!(
            contents.lines().count() > 1,
            "expected spans/counters beyond the meta header"
        );
        for line in contents.lines() {
            route_trace::json::validate(line).unwrap();
        }
        assert!(contents.contains("dijkstra_runs"));
        assert!(trace.summary().contains("telemetry summary"));
    }
}
