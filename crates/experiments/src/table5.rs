//! **Table 5** — wirelength increase and maximum-pathlength decrease of
//! PFA and IDOM with respect to IKMB, at a *common* channel width per
//! circuit.
//!
//! "Here the algorithms operate on FPGAs with the same channel width
//! (i.e., the smallest channel width that results in a successful routing
//! for all algorithms)… By comparing the various algorithms using the same
//! channel width, the wirelength usage is not unduly biased by the more
//! circuitous routes which may be required with small channel widths."
//! Paper averages: PFA +18.2% wire, −9.5% max path; IDOM +12.8% wire,
//! −10.2% max path.

use fpga_device::synth::xc4000_profiles;
use fpga_device::{ArchSpec, Device, FpgaError, RouteAlgorithm, Router, RouterConfig};

use crate::table::{pct, TextTable};
use crate::widths::{circuit_for, WidthExperimentConfig};

/// Published Table 5 rows `(circuit, width, PFA wire%, IDOM wire%, PFA
/// path%, IDOM path%)`.
pub const PUBLISHED: [(&str, usize, f64, f64, f64, f64); 9] = [
    ("alu4", 14, 20.9, 15.8, -15.2, -16.9),
    ("apex7", 11, 15.3, 9.2, -4.2, -6.8),
    ("term1", 9, 11.4, 12.0, -6.2, -2.0),
    ("example2", 13, 13.1, 8.1, -4.6, -5.6),
    ("too_large", 12, 17.9, 15.2, -9.7, -9.4),
    ("k2", 17, 24.5, 17.6, -7.1, -7.2),
    ("vda", 14, 18.7, 11.9, -9.9, -11.5),
    ("9symml", 9, 18.3, 11.4, -14.0, -14.4),
    ("alu2", 11, 23.9, 14.1, -14.7, -18.0),
];

/// One circuit's comparison.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Circuit name.
    pub name: &'static str,
    /// Common channel width used.
    pub channel_width: usize,
    /// PFA wirelength % increase vs IKMB.
    pub pfa_wire_pct: f64,
    /// IDOM wirelength % increase vs IKMB.
    pub idom_wire_pct: f64,
    /// PFA total max-pathlength % change vs IKMB (negative = improvement).
    pub pfa_path_pct: f64,
    /// IDOM total max-pathlength % change vs IKMB.
    pub idom_path_pct: f64,
}

/// Runs the Table 5 experiment. For each circuit the common width starts
/// at the paper's published Table 5 width scaled to our devices: we search
/// upward from `width_range.0` until IKMB, PFA and IDOM all route.
///
/// # Errors
///
/// Propagates routing errors; a circuit none of the widths can host is an
/// [`FpgaError::Unroutable`].
pub fn run(config: &WidthExperimentConfig) -> Result<Vec<Table5Row>, FpgaError> {
    let mut rows = Vec::new();
    for profile in xc4000_profiles() {
        let circuit = circuit_for(&profile, config)?;
        let algorithms = [
            RouteAlgorithm::Ikmb,
            RouteAlgorithm::Pfa,
            RouteAlgorithm::Idom,
        ];
        let mut found: Option<(usize, Vec<fpga_device::RouteOutcome>)> = None;
        'width: for w in config.width_range.0..=config.width_range.1 {
            let mut arch = ArchSpec::xilinx4000(profile.rows, profile.cols, w);
            arch.pins_per_side = config.pins_per_side;
            let device = Device::new(arch)?;
            let mut outcomes = Vec::with_capacity(algorithms.len());
            for algorithm in algorithms {
                let router = Router::new(
                    &device,
                    RouterConfig {
                        algorithm,
                        max_passes: config.max_passes,
                        mode: config.mode,
                        ..RouterConfig::default()
                    },
                );
                match router.route(&circuit) {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(FpgaError::Unroutable { .. }) => continue 'width,
                    Err(e) => return Err(e),
                }
            }
            found = Some((w, outcomes));
            break;
        }
        let Some((w, outcomes)) = found else {
            return Err(FpgaError::Unroutable {
                channel_width: config.width_range.1,
                passes: config.max_passes,
                failed_net: 0,
                overcapacity: Vec::new(),
            });
        };
        let wire = |i: usize| outcomes[i].total_wirelength.as_f64();
        let path = |i: usize| outcomes[i].total_max_pathlength().as_f64();
        rows.push(Table5Row {
            name: profile.name,
            channel_width: w,
            pfa_wire_pct: (wire(1) / wire(0) - 1.0) * 100.0,
            idom_wire_pct: (wire(2) / wire(0) - 1.0) * 100.0,
            pfa_path_pct: (path(1) / path(0) - 1.0) * 100.0,
            idom_path_pct: (path(2) / path(0) - 1.0) * 100.0,
        });
    }
    Ok(rows)
}

/// Renders the result next to the published numbers.
#[must_use]
pub fn render(rows: &[Table5Row]) -> String {
    let mut t = TextTable::new(
        "Table 5: Wirelength increase / max-pathlength decrease of PFA and IDOM vs IKMB (common width)",
        &[
            "Circuit",
            "W",
            "PFA Wire%",
            "IDOM Wire%",
            "PFA Path%",
            "IDOM Path%",
            "paper PFA/IDOM Wire%",
            "paper PFA/IDOM Path%",
        ],
    );
    let mut sums = [0.0f64; 4];
    for row in rows {
        let published = PUBLISHED.iter().find(|p| p.0 == row.name);
        t.push_row(vec![
            row.name.to_string(),
            row.channel_width.to_string(),
            pct(row.pfa_wire_pct),
            pct(row.idom_wire_pct),
            pct(row.pfa_path_pct),
            pct(row.idom_path_pct),
            published.map_or(String::new(), |p| format!("{:+.1}/{:+.1}", p.2, p.3)),
            published.map_or(String::new(), |p| format!("{:+.1}/{:+.1}", p.4, p.5)),
        ]);
        sums[0] += row.pfa_wire_pct;
        sums[1] += row.idom_wire_pct;
        sums[2] += row.pfa_path_pct;
        sums[3] += row.idom_path_pct;
    }
    let n = rows.len().max(1) as f64;
    t.push_separator();
    t.push_row(vec![
        "Averages".into(),
        String::new(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        "+18.2/+12.8".into(),
        "-9.5/-10.2".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A published row: `(circuit, width, PFA wire%, IDOM wire%, PFA
    /// path%, IDOM path%)`.
    type PublishedRow = (&'static str, usize, f64, f64, f64, f64);

    #[test]
    fn published_averages_match_the_paper() {
        let n = PUBLISHED.len() as f64;
        let avg =
            |f: fn(&PublishedRow) -> f64| PUBLISHED.iter().map(f).sum::<f64>() / n;
        assert!((avg(|p| p.2) - 18.2).abs() < 0.15);
        assert!((avg(|p| p.3) - 12.8).abs() < 0.15);
        assert!((avg(|p| p.4) + 9.5).abs() < 0.15);
        assert!((avg(|p| p.5) + 10.2).abs() < 0.15);
    }
}
