//! **Figures 6 and 13** — execution traces of IKMB and IDOM.
//!
//! Figure 6 walks IKMB from an initial KMB cost of 7 through Steiner
//! points S2 and S3 to the optimal cost 5; Figure 13 walks IDOM from an
//! initial DOM distance-graph cost of 8 through S3 and S2 to cost 5. This
//! experiment replays the same shapes on equivalent instances and prints
//! the cost after each accepted Steiner point.

use route_graph::{Graph, NodeId, TerminalDistances, Weight};
use steiner_route::heuristic::IteratedBase;
use steiner_route::{idom, ikmb, Dom, Kmb, Net, SteinerError, SteinerHeuristic};

use crate::table::TextTable;

/// The trace of one iterated run: costs before/after each acceptance.
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// Figure label.
    pub figure: &'static str,
    /// Base heuristic cost before any Steiner point.
    pub initial_cost: Weight,
    /// Cost after each accepted Steiner point, in acceptance order.
    pub after_each: Vec<Weight>,
    /// Final tree cost.
    pub final_cost: Weight,
}

/// The Figure 6 style instance: terminals A–D, hubs s2/s3 forming the
/// optimal cost-5 star, direct edges that bait KMB to 6.7.
fn figure6_instance() -> Result<(Graph, Net), SteinerError> {
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
    let (a, b, c, d, s2, s3) = (nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], nodes[5]);
    let u = Weight::from_units;
    let m = Weight::from_milli;
    g.add_edge(a, s2, u(1))?;
    g.add_edge(b, s2, u(1))?;
    g.add_edge(s2, s3, u(1))?;
    g.add_edge(c, s3, u(1))?;
    g.add_edge(d, s3, u(1))?;
    g.add_edge(a, b, m(1900))?;
    g.add_edge(c, d, m(1900))?;
    g.add_edge(b, c, m(2900))?;
    Ok((g, Net::new(a, vec![b, c, d])?))
}

/// The Figure 13 style instance: source A, sinks B–D on the spine
/// A—s2—s3; DOM's distance-graph cost starts at 8.
fn figure13_instance() -> Result<(Graph, Net), SteinerError> {
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
    let (a, b, c, d, s2, s3) = (nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], nodes[5]);
    let u = Weight::from_units;
    g.add_edge(a, s2, u(1))?;
    g.add_edge(s2, b, u(1))?;
    g.add_edge(s2, s3, u(1))?;
    g.add_edge(s3, c, u(1))?;
    g.add_edge(s3, d, u(1))?;
    Ok((g, Net::new(a, vec![b, c, d])?))
}

/// Replays IKMB on the Figure 6 instance.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run_fig6() -> Result<ExecTrace, SteinerError> {
    let (g, net) = figure6_instance()?;
    let kmb = Kmb::new();
    let initial = kmb.construct(&g, &net)?.cost();
    let outcome = ikmb().construct_traced(&g, &net)?;
    // Replay costs by re-evaluating KMB over the accepted prefixes.
    let mut td = TerminalDistances::compute(&g, net.terminals())?;
    let mut after_each = Vec::new();
    for &s in &outcome.steiner_points {
        td.push_terminal(&g, s)?;
        after_each.push(kmb.cost_with(&g, &td, None)?);
    }
    Ok(ExecTrace {
        figure: "Figure 6 (IKMB)",
        initial_cost: initial,
        after_each,
        final_cost: outcome.tree.cost(),
    })
}

/// Replays IDOM on the Figure 13 instance.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run_fig13() -> Result<ExecTrace, SteinerError> {
    let (g, net) = figure13_instance()?;
    let dom = Dom::new();
    let td0 = TerminalDistances::compute(&g, net.terminals())?;
    let initial = dom.cost_with(&g, &td0, None)?;
    let outcome = idom().construct_traced(&g, &net)?;
    let mut td = TerminalDistances::compute(&g, net.terminals())?;
    let mut after_each = Vec::new();
    for &s in &outcome.steiner_points {
        td.push_terminal(&g, s)?;
        after_each.push(dom.cost_with(&g, &td, None)?);
    }
    Ok(ExecTrace {
        figure: "Figure 13 (IDOM)",
        initial_cost: initial,
        after_each,
        final_cost: outcome.tree.cost(),
    })
}

/// Renders one trace.
#[must_use]
pub fn render(trace: &ExecTrace) -> String {
    let mut t = TextTable::new(
        format!("{} execution trace", trace.figure),
        &["step", "cost"],
    );
    t.push_row(vec!["initial (no Steiner points)".into(), trace.initial_cost.to_string()]);
    for (i, c) in trace.after_each.iter().enumerate() {
        t.push_row(vec![format!("after Steiner point #{}", i + 1), c.to_string()]);
    }
    t.push_separator();
    t.push_row(vec!["final tree".into(), trace.final_cost.to_string()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_trace_descends_to_five() {
        let trace = run_fig6().unwrap();
        // Paper: initial KMB 7, final 5. Our instance: initial 6.7
        // (DESIGN.md §3), monotone descent to exactly 5.
        assert_eq!(trace.initial_cost, Weight::from_milli(6700));
        assert_eq!(trace.final_cost, Weight::from_units(5));
        assert!(!trace.after_each.is_empty());
        let mut prev = trace.initial_cost;
        for &c in &trace.after_each {
            assert!(c < prev, "cost must strictly decrease");
            prev = c;
        }
    }

    #[test]
    fn fig13_trace_descends_from_eight_to_five() {
        let trace = run_fig13().unwrap();
        // Paper: initial DOM 8, after S3 → 6, after S2 → 5 — identical.
        assert_eq!(trace.initial_cost, Weight::from_units(8));
        assert_eq!(trace.after_each.len(), 2);
        assert_eq!(trace.after_each[0], Weight::from_units(6));
        assert_eq!(trace.after_each[1], Weight::from_units(5));
        assert_eq!(trace.final_cost, Weight::from_units(5));
    }

    #[test]
    fn renders_human_readable_tables() {
        let rendered = render(&run_fig13().unwrap());
        assert!(rendered.contains("Figure 13"));
        assert!(rendered.contains("final tree"));
    }
}
