//! **Table 3** — minimum channel width on Xilinx 4000-series parts
//! (`F_s = 3`, `F_c = W`): SEGA and GBP versus our router (IKMB).
//!
//! SEGA and GBP are closed-source; the two-pin-decomposition baseline
//! stands in for both. Published widths printed alongside: SEGA and GBP
//! needed on average 26% and 17% more channel width than the paper's
//! router.

use fpga_device::synth::xc4000_profiles;
use fpga_device::{ArchSpec, FpgaError, RouteAlgorithm};

use crate::table::TextTable;
use crate::widths::{
    run_width_table, totals_and_ratios, CircuitWidths, Contender, WidthExperimentConfig,
};

/// Published Table 3 widths `(circuit, SEGA, GBP, our router)`, in profile
/// order.
pub const PUBLISHED: [(&str, usize, usize, usize); 9] = [
    ("alu4", 15, 14, 11),
    ("apex7", 13, 11, 10),
    ("term1", 10, 10, 8),
    ("example2", 17, 13, 11),
    ("too_large", 12, 12, 10),
    ("k2", 17, 17, 15),
    ("vda", 13, 13, 12),
    ("9symml", 10, 9, 8),
    ("alu2", 11, 11, 9),
];

/// Runs the Table 3 experiment.
///
/// # Errors
///
/// Propagates routing errors.
pub fn run(config: &WidthExperimentConfig) -> Result<Vec<CircuitWidths>, FpgaError> {
    run_width_table(
        &xc4000_profiles(),
        ArchSpec::xilinx4000,
        &[
            Contender::Baseline,
            Contender::Steiner(RouteAlgorithm::Ikmb),
        ],
        config,
    )
}

/// Renders the result next to the published numbers.
#[must_use]
pub fn render(rows: &[CircuitWidths]) -> String {
    let mut t = TextTable::new(
        "Table 3: Minimum channel width, Xilinx 4000-series (Fs=3, Fc=W)",
        &[
            "Circuit",
            "FPGA",
            "#nets",
            "2PIN (SEGA/GBP stand-in)",
            "IKMB (ours)",
            "paper SEGA",
            "paper GBP",
            "paper ours",
        ],
    );
    for (row, published) in rows.iter().zip(PUBLISHED.iter()) {
        t.push_row(vec![
            row.profile.name.to_string(),
            format!("{}x{}", row.profile.rows, row.profile.cols),
            row.profile.net_count().to_string(),
            row.widths[0].1.to_string(),
            row.widths[1].1.to_string(),
            published.1.to_string(),
            published.2.to_string(),
            published.3.to_string(),
        ]);
    }
    let (totals, ratios) = totals_and_ratios(rows);
    let paper: (usize, usize, usize) = PUBLISHED
        .iter()
        .fold((0, 0, 0), |acc, p| (acc.0 + p.1, acc.1 + p.2, acc.2 + p.3));
    t.push_separator();
    t.push_row(vec![
        "Totals".into(),
        String::new(),
        String::new(),
        totals[0].to_string(),
        totals[1].to_string(),
        paper.0.to_string(),
        paper.1.to_string(),
        paper.2.to_string(),
    ]);
    t.push_row(vec![
        "Ratios".into(),
        String::new(),
        String::new(),
        format!("{:.2}", ratios[0]),
        format!("{:.2}", ratios[1]),
        format!("{:.2}", paper.0 as f64 / paper.2 as f64),
        format!("{:.2}", paper.1 as f64 / paper.2 as f64),
        "1.00".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_totals_match_the_paper() {
        let sega: usize = PUBLISHED.iter().map(|p| p.1).sum();
        let gbp: usize = PUBLISHED.iter().map(|p| p.2).sum();
        let ours: usize = PUBLISHED.iter().map(|p| p.3).sum();
        assert_eq!(sega, 118);
        assert_eq!(gbp, 110);
        assert_eq!(ours, 94);
        assert!((sega as f64 / ours as f64 - 1.26).abs() < 0.01);
        assert!((gbp as f64 / ours as f64 - 1.17).abs() < 0.01);
    }
}
