//! **Table 4** — minimum channel width of IKMB vs PFA vs IDOM on the
//! 4000-series circuits.
//!
//! PFA and IDOM optimize maximum pathlength *and* wirelength; the paper
//! shows they pay a modest width premium over IKMB (ratios 1.17 and 1.13)
//! but stay no worse than SEGA/GBP, which optimize wirelength only.

use fpga_device::synth::xc4000_profiles;
use fpga_device::{ArchSpec, FpgaError, RouteAlgorithm};

use crate::table::TextTable;
use crate::widths::{
    run_width_table, totals_and_ratios, CircuitWidths, Contender, WidthExperimentConfig,
};

/// Published Table 4 widths `(circuit, IKMB, PFA, IDOM)`, in profile order.
pub const PUBLISHED: [(&str, usize, usize, usize); 9] = [
    ("alu4", 11, 14, 13),
    ("apex7", 10, 11, 11),
    ("term1", 8, 9, 9),
    ("example2", 11, 13, 13),
    ("too_large", 10, 12, 12),
    ("k2", 15, 17, 17),
    ("vda", 12, 14, 13),
    ("9symml", 8, 9, 8),
    ("alu2", 9, 11, 10),
];

/// Runs the Table 4 experiment.
///
/// # Errors
///
/// Propagates routing errors.
pub fn run(config: &WidthExperimentConfig) -> Result<Vec<CircuitWidths>, FpgaError> {
    run_width_table(
        &xc4000_profiles(),
        ArchSpec::xilinx4000,
        &[
            Contender::Steiner(RouteAlgorithm::Pfa),
            Contender::Steiner(RouteAlgorithm::Idom),
            Contender::Steiner(RouteAlgorithm::Ikmb),
        ],
        config,
    )
}

/// Renders the result next to the published numbers.
#[must_use]
pub fn render(rows: &[CircuitWidths]) -> String {
    let mut t = TextTable::new(
        "Table 4: Minimum channel width by algorithm, Xilinx 4000-series",
        &[
            "Circuit",
            "PFA",
            "IDOM",
            "IKMB",
            "paper PFA",
            "paper IDOM",
            "paper IKMB",
        ],
    );
    for (row, published) in rows.iter().zip(PUBLISHED.iter()) {
        t.push_row(vec![
            row.profile.name.to_string(),
            row.widths[0].1.to_string(),
            row.widths[1].1.to_string(),
            row.widths[2].1.to_string(),
            published.2.to_string(),
            published.3.to_string(),
            published.1.to_string(),
        ]);
    }
    let (totals, ratios) = totals_and_ratios(rows);
    let paper: (usize, usize, usize) = PUBLISHED
        .iter()
        .fold((0, 0, 0), |acc, p| (acc.0 + p.1, acc.1 + p.2, acc.2 + p.3));
    t.push_separator();
    t.push_row(vec![
        "Totals".into(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        paper.1.to_string(),
        paper.2.to_string(),
        paper.0.to_string(),
    ]);
    t.push_row(vec![
        "Ratios".into(),
        format!("{:.2}", ratios[0]),
        format!("{:.2}", ratios[1]),
        format!("{:.2}", ratios[2]),
        format!("{:.2}", paper.1 as f64 / paper.0 as f64),
        format!("{:.2}", paper.2 as f64 / paper.0 as f64),
        "1.00".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_totals_match_the_paper() {
        let ikmb: usize = PUBLISHED.iter().map(|p| p.1).sum();
        let pfa: usize = PUBLISHED.iter().map(|p| p.2).sum();
        let idom: usize = PUBLISHED.iter().map(|p| p.3).sum();
        assert_eq!(ikmb, 94);
        assert_eq!(pfa, 110);
        assert_eq!(idom, 106);
        assert!((pfa as f64 / ikmb as f64 - 1.17).abs() < 0.01);
        assert!((idom as f64 / ikmb as f64 - 1.13).abs() < 0.01);
    }
}
