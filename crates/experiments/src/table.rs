//! Minimal fixed-width text tables for experiment output.

/// A simple text table: a title, a header row, and data rows, rendered
/// with column-aligned monospace formatting.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a visual separator row.
    pub fn push_separator(&mut self) {
        self.rows.push(vec!["---".into()]);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len().max(
            self.rows.iter().map(Vec::len).max().unwrap_or(0),
        );
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            if row.len() == 1 && row[0] == "---" {
                continue;
            }
            measure(&mut widths, row);
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * cols.saturating_sub(1);
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&"=".repeat(self.title.chars().count().max(total)));
        out.push('\n');
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.len() == 1 && row[0] == "---" {
                out.push_str(&"-".repeat(total));
            } else {
                out.push_str(&fmt_row(row, &widths));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a signed percentage the way the paper's tables do.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:+.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Algo", "Wire", "Path"]);
        t.push_row(vec!["KMB".into(), "0.00".into(), "23.51".into()]);
        t.push_separator();
        t.push_row(vec!["IDOM".into(), "-5.59".into(), "0.00".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("KMB"));
        assert!(s.contains("IDOM"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 6);
    }

    #[test]
    fn pct_formats_signs() {
        assert_eq!(pct(5.5), "+5.50");
        assert_eq!(pct(-3.25), "-3.25");
        assert_eq!(pct(0.0), "+0.00");
    }
}
