//! **Figure 4** — four routing solutions for one 4-pin net.
//!
//! The paper's example shows, on a small grid: (a) a suboptimal KMB tree,
//! (b) the optimal Steiner tree found by IGMST, (c) a suboptimal DJKA
//! arborescence, and (d) the optimal arborescence found by IDOM — with KMB
//! using 12.5% more wirelength than IGMST/IDOM and max-pathlength
//! improvements of 25% (IGMST) and 50% (IDOM) over KMB.
//!
//! The figure's exact pin placement is not recoverable from the scan, so
//! this experiment *searches* seeded random 4-pin nets on small unit grids
//! for the instance that best exhibits the same phenomenon: IKMB reaching
//! the exact Steiner optimum below KMB's cost, and IDOM reaching the
//! optimal radius below KMB's.



use route_graph::{GridGraph, Weight};
use steiner_route::metrics::{measure, optimal_max_pathlength};
use steiner_route::{exact, idom, ikmb, Djka, Kmb, Net, SteinerError, SteinerHeuristic};

use crate::table::TextTable;

/// One algorithm's numbers on the found instance.
#[derive(Debug, Clone)]
pub struct Fig4Line {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Tree wirelength.
    pub wirelength: Weight,
    /// Maximum source-sink pathlength.
    pub max_pathlength: Weight,
}

/// The found instance and its four solutions.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Seed of the found instance.
    pub seed: u64,
    /// Terminals (source first) as `(row, col)` grid positions.
    pub pins: Vec<(usize, usize)>,
    /// Exact optimal Steiner tree cost.
    pub optimal_wire: Weight,
    /// Optimal radius (`max minpath`).
    pub optimal_path: Weight,
    /// Lines for KMB, IKMB, DJKA, IDOM.
    pub lines: Vec<Fig4Line>,
}

/// Searches seeds for the clearest Figure 4 style instance.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run(max_seeds: u64) -> Result<Fig4Result, SteinerError> {
    let mut best: Option<(u64, Fig4Result)> = None;
    for seed in 0..max_seeds {
        let grid = GridGraph::new(4, 4, Weight::UNIT).expect("valid grid");
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(seed);
        let pins = route_graph::random::random_net(grid.graph(), 4, &mut rng)?;
        let net = Net::from_terminals(pins)?;
        let result = evaluate(&grid, &net, seed)?;
        let kmb = &result.lines[0];
        let ikmb_line = &result.lines[1];
        let idom_line = &result.lines[3];
        // Want: IKMB at the exact optimum, strictly below KMB; IDOM at the
        // optimal radius, strictly below KMB's radius.
        if ikmb_line.wirelength != result.optimal_wire
            || idom_line.max_pathlength != result.optimal_path
            || kmb.wirelength <= ikmb_line.wirelength
            || kmb.max_pathlength <= idom_line.max_pathlength
        {
            continue;
        }
        let gap = kmb.wirelength.as_milli() - ikmb_line.wirelength.as_milli();
        let path_gap = kmb.max_pathlength.as_milli() - idom_line.max_pathlength.as_milli();
        let score = gap + path_gap;
        if best
            .as_ref()
            .is_none_or(|(best_score, _)| score > *best_score)
        {
            best = Some((score, result));
        }
    }
    best.map(|(_, r)| r).ok_or(SteinerError::EmptyNet)
}

fn evaluate(grid: &GridGraph, net: &Net, seed: u64) -> Result<Fig4Result, SteinerError> {
    let g = grid.graph();
    let algorithms: Vec<(&'static str, Box<dyn SteinerHeuristic>)> = vec![
        ("KMB", Box::new(Kmb::new())),
        ("IKMB", Box::new(ikmb())),
        ("DJKA", Box::new(Djka::new())),
        ("IDOM", Box::new(idom())),
    ];
    let mut lines = Vec::new();
    for (name, algo) in &algorithms {
        let tree = algo.construct(g, net)?;
        let m = measure(&tree, net)?;
        lines.push(Fig4Line {
            algorithm: name,
            wirelength: m.wirelength,
            max_pathlength: m.max_pathlength,
        });
    }
    Ok(Fig4Result {
        seed,
        pins: net
            .terminals()
            .iter()
            .map(|&v| grid.position(v).expect("grid node"))
            .collect(),
        optimal_wire: exact::steiner_cost_for_net(g, net)?,
        optimal_path: optimal_max_pathlength(g, net)?,
        lines,
    })
}

/// Renders the found instance as a four-panel SVG in the layout of the
/// paper's Figure 4 (trees are reconstructed deterministically from the
/// recorded pins).
///
/// # Errors
///
/// Propagates construction errors.
pub fn render_svg(result: &Fig4Result) -> Result<String, SteinerError> {
    let grid = GridGraph::new(4, 4, Weight::UNIT).expect("valid grid");
    let terminals = result
        .pins
        .iter()
        .map(|&(r, c)| grid.node_at(r, c).map_err(SteinerError::Graph))
        .collect::<Result<Vec<_>, _>>()?;
    let net = Net::from_terminals(terminals)?;
    let g = grid.graph();
    let kmb = Kmb::new().construct(g, &net)?;
    let ikmb_tree = ikmb().construct(g, &net)?;
    let djka = Djka::new().construct(g, &net)?;
    let idom_tree = idom().construct(g, &net)?;
    let caption = |label: &str, tree: &steiner_route::RoutingTree| -> String {
        format!(
            "({label}) cost {} / path {}",
            tree.cost(),
            tree.max_pathlength(&net).expect("tree spans")
        )
    };
    Ok(crate::gridviz::render_grid_panels(
        &grid,
        &net,
        &[
            crate::gridviz::GridPanel {
                caption: caption("a KMB", &kmb),
                tree: &kmb,
            },
            crate::gridviz::GridPanel {
                caption: caption("b IKMB", &ikmb_tree),
                tree: &ikmb_tree,
            },
            crate::gridviz::GridPanel {
                caption: caption("c DJKA", &djka),
                tree: &djka,
            },
            crate::gridviz::GridPanel {
                caption: caption("d IDOM", &idom_tree),
                tree: &idom_tree,
            },
        ],
    ))
}

/// Renders the found instance.
#[must_use]
pub fn render(result: &Fig4Result) -> String {
    let mut t = TextTable::new(
        format!(
            "Figure 4: four solutions for the 4-pin net {:?} on a 4x4 grid (seed {})",
            result.pins, result.seed
        ),
        &["Algorithm", "Wirelength", "vs opt", "MaxPath", "vs opt"],
    );
    for line in &result.lines {
        t.push_row(vec![
            line.algorithm.to_string(),
            line.wirelength.to_string(),
            format!(
                "{:+.1}%",
                (line.wirelength.as_f64() / result.optimal_wire.as_f64() - 1.0) * 100.0
            ),
            line.max_pathlength.to_string(),
            format!(
                "{:+.1}%",
                (line.max_pathlength.as_f64() / result.optimal_path.as_f64() - 1.0) * 100.0
            ),
        ]);
    }
    t.push_separator();
    t.push_row(vec![
        "OPT".into(),
        result.optimal_wire.to_string(),
        "+0.0%".into(),
        result.optimal_path.to_string(),
        "+0.0%".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_figure4_style_instance() {
        let r = run(200).unwrap();
        let kmb = &r.lines[0];
        let ikmb_line = &r.lines[1];
        let idom_line = &r.lines[3];
        assert_eq!(ikmb_line.wirelength, r.optimal_wire);
        assert_eq!(idom_line.max_pathlength, r.optimal_path);
        assert!(kmb.wirelength > ikmb_line.wirelength);
        assert!(kmb.max_pathlength > idom_line.max_pathlength);
        let rendered = render(&r);
        assert!(rendered.contains("KMB"));
        assert!(rendered.contains("OPT"));
    }
}
