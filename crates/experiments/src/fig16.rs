//! **Figure 16** — rendering of the routed `busc` circuit.

use std::path::{Path, PathBuf};

use fpga_device::synth::xc3000_profiles;
use fpga_device::width::{minimum_channel_width, WidthSearch};
use fpga_device::{viz, ArchSpec, Device, FpgaError, Router, RouterConfig};

use crate::widths::{circuit_for, WidthExperimentConfig};

/// The artifacts produced by the Figure 16 experiment.
#[derive(Debug, Clone)]
pub struct Fig16Result {
    /// Channel width the rendering used (the minimum found for IKMB).
    pub channel_width: usize,
    /// Total wirelength of the rendered routing.
    pub total_wirelength: f64,
    /// Path the SVG was written to.
    pub svg_path: PathBuf,
    /// ASCII occupancy art.
    pub ascii: String,
}

/// Routes the synthetic `busc` on a 3000-series part at its minimum
/// channel width and renders the solution.
///
/// # Errors
///
/// Propagates routing and file-system errors (I/O failures are wrapped in
/// [`FpgaError::InvalidArchitecture`] for lack of a better variant).
pub fn run(config: &WidthExperimentConfig, out_dir: &Path) -> Result<Fig16Result, FpgaError> {
    let profile = xc3000_profiles()[0]; // busc
    let circuit = circuit_for(&profile, config)?;
    let mut base = ArchSpec::xilinx3000(profile.rows, profile.cols, config.width_range.0);
    base.pins_per_side = config.pins_per_side;
    let found = minimum_channel_width(
        base,
        config.width_range.0..=config.width_range.1,
        WidthSearch::Binary,
        |device| {
            Router::new(
                device,
                RouterConfig {
                    max_passes: config.max_passes,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
        },
    )?;
    let device = Device::new(base.with_channel_width(found.channel_width))?;
    let svg = viz::render_svg(&device, &circuit, &found.outcome)?;
    let ascii = viz::render_ascii_occupancy(&device, &found.outcome)?;
    std::fs::create_dir_all(out_dir)
        .map_err(|e| FpgaError::InvalidArchitecture(format!("cannot create {out_dir:?}: {e}")))?;
    let svg_path = out_dir.join("fig16_busc.svg");
    std::fs::write(&svg_path, svg)
        .map_err(|e| FpgaError::InvalidArchitecture(format!("cannot write SVG: {e}")))?;
    Ok(Fig16Result {
        channel_width: found.channel_width,
        total_wirelength: found.outcome.total_wirelength.as_f64(),
        svg_path,
        ascii,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uses a downsized stand-in profile so the test stays fast; the full
    /// busc rendering is exercised by the bench target.
    #[test]
    fn renders_a_small_circuit_to_svg() {
        let config = WidthExperimentConfig {
            seed: 5,
            max_passes: 5,
            width_range: (3, 14),
            pins_per_side: 2,
            ..WidthExperimentConfig::default()
        };
        let dir = std::env::temp_dir().join("fpga_route_fig16_test");
        // Run against the real busc profile but with a reduced pass budget;
        // busc is the smallest 3000-series circuit.
        let result = run(&config, &dir).unwrap();
        assert!(result.channel_width >= 3);
        assert!(result.total_wirelength > 0.0);
        let svg = std::fs::read_to_string(&result.svg_path).unwrap();
        assert!(svg.contains("busc"));
        assert!(!result.ascii.is_empty());
    }
}
