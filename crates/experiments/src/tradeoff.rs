//! The radius–cost tradeoff comparison of paper §2.
//!
//! The paper dismisses BRBC and AHHK because, even tuned fully towards
//! pathlength, they "produce the same shortest-paths tree as would
//! Dijkstra's algorithm" rather than a minimum-wirelength arborescence.
//! This experiment sweeps both baselines' parameters on Table-1-style
//! workloads and plots PFA/IDOM as single points: optimal radius at a
//! wirelength the sweeps cannot reach simultaneously.



use steiner_route::congestion::{table1_grid, CongestionLevel};
use steiner_route::metrics::{measure, optimal_max_pathlength, percent_vs};
use steiner_route::{idom, ikmb, Brbc, Kmb, Net, Pfa, PrimDijkstra, SteinerError, SteinerHeuristic};

use crate::table::{pct, TextTable};

/// One point on the tradeoff curve.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Algorithm + parameter label.
    pub label: String,
    /// Average wirelength % versus KMB.
    pub wire_pct: f64,
    /// Average maximum pathlength % versus optimal.
    pub path_pct: f64,
    /// Fraction of nets achieving the exact optimal radius.
    pub optimal_radius_share: f64,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct TradeoffConfig {
    /// Number of nets to average over.
    pub nets: usize,
    /// Pins per net.
    pub pins: usize,
    /// Workload seed.
    pub seed: u64,
    /// Congestion level of the grids.
    pub level: CongestionLevel,
}

impl Default for TradeoffConfig {
    fn default() -> TradeoffConfig {
        TradeoffConfig {
            nets: 30,
            pins: 6,
            seed: 1995,
            level: CongestionLevel::Low,
        }
    }
}

/// Runs the sweep.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run(config: &TradeoffConfig) -> Result<Vec<TradeoffPoint>, SteinerError> {
    let mut contenders: Vec<(String, Box<dyn SteinerHeuristic>)> = Vec::new();
    for c in [0u64, 250, 500, 750, 1000] {
        contenders.push((
            format!("AHHK c={:.2}", c as f64 / 1000.0),
            Box::new(PrimDijkstra::new(c)),
        ));
    }
    for eps in [0u64, 250, 500, 1000, 2000, 8000] {
        contenders.push((
            format!("BRBC eps={:.2}", eps as f64 / 1000.0),
            Box::new(Brbc::new(eps)),
        ));
    }
    contenders.push(("IKMB".into(), Box::new(ikmb())));
    contenders.push(("PFA".into(), Box::new(Pfa::new())));
    contenders.push(("IDOM".into(), Box::new(idom())));

    let mut wire = vec![0.0f64; contenders.len()];
    let mut path = vec![0.0f64; contenders.len()];
    let mut optimal_hits = vec![0usize; contenders.len()];
    let mut rng = route_graph::rng::SplitMix64::seed_from_u64(config.seed);
    for _ in 0..config.nets {
        let grid = table1_grid(config.level, &mut rng)?;
        let pins = route_graph::random::random_net(grid.graph(), config.pins, &mut rng)?;
        let net = Net::from_terminals(pins)?;
        let kmb_cost = Kmb::new().construct(grid.graph(), &net)?.cost();
        let opt_radius = optimal_max_pathlength(grid.graph(), &net)?;
        for (i, (_, algo)) in contenders.iter().enumerate() {
            let tree = algo.construct(grid.graph(), &net)?;
            let m = measure(&tree, &net)?;
            wire[i] += percent_vs(m.wirelength, kmb_cost);
            path[i] += percent_vs(m.max_pathlength, opt_radius);
            if m.max_pathlength == opt_radius {
                optimal_hits[i] += 1;
            }
        }
    }
    let n = config.nets as f64;
    Ok(contenders
        .into_iter()
        .enumerate()
        .map(|(i, (label, _))| TradeoffPoint {
            label,
            wire_pct: wire[i] / n,
            path_pct: path[i] / n,
            optimal_radius_share: optimal_hits[i] as f64 / n,
        })
        .collect())
}

/// Renders the sweep as a table.
#[must_use]
pub fn render(points: &[TradeoffPoint], config: &TradeoffConfig) -> String {
    let mut t = TextTable::new(
        format!(
            "Radius-cost tradeoff (paper §2): {} nets of {} pins, {}",
            config.nets,
            config.pins,
            config.level.label()
        ),
        &[
            "algorithm",
            "wire % vs KMB",
            "max path % vs opt",
            "optimal-radius nets",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.label.clone(),
            pct(p.wire_pct),
            pct(p.path_pct),
            format!("{:.0}%", p.optimal_radius_share * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_matches_the_papers_argument() {
        let config = TradeoffConfig {
            nets: 6,
            ..TradeoffConfig::default()
        };
        let points = run(&config).unwrap();
        let by = |label: &str| points.iter().find(|p| p.label == label).unwrap();
        // Fully delay-tuned baselines reach the optimal radius…
        assert!((by("AHHK c=1.00").path_pct).abs() < 1e-9);
        assert!((by("BRBC eps=0.00").path_pct).abs() < 1e-9);
        // …but so do PFA/IDOM, at no worse wirelength than the delay-tuned
        // AHHK (the paper's point: a *Steiner* arborescence dominates a
        // spanning shortest-paths tree).
        assert!((by("IDOM").path_pct).abs() < 1e-9);
        assert!(by("IDOM").wire_pct <= by("AHHK c=1.00").wire_pct + 1e-9);
        assert!(by("PFA").wire_pct <= by("AHHK c=1.00").wire_pct + 1e-9);
        // The cost-tuned ends do not guarantee the optimal radius on every
        // net (they hit it sometimes by luck, never by construction).
        assert!(by("IDOM").optimal_radius_share > 0.99);
        let rendered = render(&points, &config);
        assert!(rendered.contains("AHHK"));
        assert!(rendered.contains("BRBC"));
    }
}
