//! 3D FPGA folding — the paper's §6 future-work direction, measured.
//!
//! The 3D-FPGA studies the conclusion cites (\[1, 2\]) motivate stacking:
//! folding a wide 2D array into layers shortens interconnect. This
//! experiment routes the *same* logical nets on (a) a flat `R × 2C` array
//! and (b) a two-layer `R × C` stack (mirror-folded so logical adjacency
//! survives), using the unchanged graph-based constructions, and reports
//! the wirelength and radius savings.

use route_graph::rng::Rng;

use fpga_device::three_d::{Arch3d, Device3d};
use fpga_device::{ArchSpec, Device, FpgaError, Side};
use route_graph::Weight;
use steiner_route::{idom, ikmb, Net, SteinerError, SteinerHeuristic};

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ThreeDConfig {
    /// Logical array rows.
    pub rows: usize,
    /// Logical array columns (must be even; the fold splits them).
    pub cols: usize,
    /// Channel width of both devices.
    pub channel_width: usize,
    /// Nets to route.
    pub nets: usize,
    /// Pins per net.
    pub pins: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ThreeDConfig {
    fn default() -> ThreeDConfig {
        ThreeDConfig {
            rows: 10,
            cols: 16,
            channel_width: 6,
            nets: 25,
            pins: 5,
            seed: 1995,
        }
    }
}

/// Aggregate comparison of the two mappings.
#[derive(Debug, Clone, Copy)]
pub struct ThreeDResult {
    /// Mean IKMB wirelength on the flat device.
    pub flat_wirelength: f64,
    /// Mean IKMB wirelength on the folded 2-layer device.
    pub folded_wirelength: f64,
    /// Mean optimal radius (IDOM max pathlength) on the flat device.
    pub flat_radius: f64,
    /// Mean optimal radius on the folded device.
    pub folded_radius: f64,
}

/// A logical pin: block position plus side/slot.
#[derive(Debug, Clone, Copy)]
struct LogicalPin {
    row: usize,
    col: usize,
    side: Side,
    slot: usize,
}

/// Runs the folding comparison.
///
/// # Errors
///
/// Propagates device and routing errors.
pub fn run(config: &ThreeDConfig) -> Result<ThreeDResult, FpgaError> {
    assert!(config.cols.is_multiple_of(2), "fold needs an even column count");
    let flat = Device::new(ArchSpec::xilinx4000(
        config.rows,
        config.cols,
        config.channel_width,
    ))?;
    let folded = Device3d::new(Arch3d::new(
        ArchSpec::xilinx4000(config.rows, config.cols / 2, config.channel_width),
        2,
        1,
    ))?;
    let mut rng = route_graph::rng::SplitMix64::seed_from_u64(config.seed);
    let half = config.cols / 2;
    let steiner = ikmb();
    let arbor = idom();
    let mut result = ThreeDResult {
        flat_wirelength: 0.0,
        folded_wirelength: 0.0,
        flat_radius: 0.0,
        folded_radius: 0.0,
    };
    for _ in 0..config.nets {
        // Distinct logical blocks, random side/slot.
        let mut pins: Vec<LogicalPin> = Vec::new();
        while pins.len() < config.pins {
            let p = LogicalPin {
                row: rng.gen_range(0..config.rows),
                col: rng.gen_range(0..config.cols),
                side: Side::ALL[rng.gen_range(0..4usize)],
                slot: rng.gen_range(0..2usize),
            };
            if !pins.iter().any(|q| q.row == p.row && q.col == p.col) {
                pins.push(p);
            }
        }
        // Flat mapping.
        let flat_terminals: Vec<_> = pins
            .iter()
            .map(|p| flat.pin_node(p.row, p.col, p.side, p.slot))
            .collect::<Result<_, _>>()?;
        // Mirror fold: the right half flips onto layer 1.
        let folded_terminals: Vec<_> = pins
            .iter()
            .map(|p| {
                let (layer, col) = if p.col < half {
                    (0, p.col)
                } else {
                    (1, config.cols - 1 - p.col)
                };
                folded.pin_node(layer, p.row, col, p.side, p.slot)
            })
            .collect::<Result<_, _>>()?;
        let flat_net = Net::from_terminals(flat_terminals).map_err(FpgaError::Steiner)?;
        let folded_net =
            Net::from_terminals(folded_terminals).map_err(FpgaError::Steiner)?;
        result.flat_wirelength += cost(&steiner, flat.graph(), &flat_net)?.as_f64();
        result.folded_wirelength += cost(&steiner, folded.graph(), &folded_net)?.as_f64();
        result.flat_radius += radius(&arbor, flat.graph(), &flat_net)?.as_f64();
        result.folded_radius += radius(&arbor, folded.graph(), &folded_net)?.as_f64();
    }
    let n = config.nets as f64;
    result.flat_wirelength /= n;
    result.folded_wirelength /= n;
    result.flat_radius /= n;
    result.folded_radius /= n;
    Ok(result)
}

fn cost(
    algo: &impl SteinerHeuristic,
    g: &route_graph::Graph,
    net: &Net,
) -> Result<Weight, SteinerError> {
    Ok(algo.construct(g, net)?.cost())
}

fn radius(
    algo: &impl SteinerHeuristic,
    g: &route_graph::Graph,
    net: &Net,
) -> Result<Weight, SteinerError> {
    algo.construct(g, net)?.max_pathlength(net)
}

/// Renders the comparison.
#[must_use]
pub fn render(result: &ThreeDResult, config: &ThreeDConfig) -> String {
    let mut t = TextTable::new(
        format!(
            "3D folding (§6): {}x{} flat vs 2 layers of {}x{}, {} nets of {} pins",
            config.rows,
            config.cols,
            config.rows,
            config.cols / 2,
            config.nets,
            config.pins
        ),
        &["mapping", "mean IKMB wirelength", "mean IDOM radius"],
    );
    t.push_row(vec![
        "flat 2D".into(),
        format!("{:.1}", result.flat_wirelength),
        format!("{:.1}", result.flat_radius),
    ]);
    t.push_row(vec![
        "folded 3D".into(),
        format!("{:.1}", result.folded_wirelength),
        format!("{:.1}", result.folded_radius),
    ]);
    t.push_separator();
    t.push_row(vec![
        "savings".into(),
        format!(
            "{:.1}%",
            (1.0 - result.folded_wirelength / result.flat_wirelength) * 100.0
        ),
        format!(
            "{:.1}%",
            (1.0 - result.folded_radius / result.flat_radius) * 100.0
        ),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_reduces_wire_and_radius() {
        let config = ThreeDConfig {
            rows: 6,
            cols: 12,
            channel_width: 5,
            nets: 8,
            pins: 4,
            seed: 3,
        };
        let result = run(&config).unwrap();
        assert!(
            result.folded_wirelength < result.flat_wirelength,
            "wire {} vs {}",
            result.folded_wirelength,
            result.flat_wirelength
        );
        assert!(result.folded_radius <= result.flat_radius);
        let rendered = render(&result, &config);
        assert!(rendered.contains("folded 3D"));
    }
}
