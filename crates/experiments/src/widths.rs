//! Shared runner for the channel-width experiments (Tables 2, 3, 4).

use fpga_device::synth::{synthesize, CircuitProfile};
use fpga_device::width::{minimum_channel_width, WidthOutcome, WidthSearch};
use fpga_device::{
    ArchSpec, BaselineConfig, BaselineRouter, Circuit, FpgaError, RouteAlgorithm, RouteMode,
    Router, RouterConfig,
};

/// A router under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// The paper's router with a given per-net construction.
    Steiner(RouteAlgorithm),
    /// The two-pin-decomposition baseline (CGE/SEGA/GBP stand-in).
    Baseline,
}

impl Contender {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Contender::Steiner(a) => a.label(),
            Contender::Baseline => "2PIN",
        }
    }
}

/// Parameters shared by the width experiments.
#[derive(Debug, Clone, Copy)]
pub struct WidthExperimentConfig {
    /// Synthesis seed.
    pub seed: u64,
    /// Router pass budget per width probe.
    pub max_passes: usize,
    /// Width search range.
    pub width_range: (usize, usize),
    /// Netlist pins per block side.
    pub pins_per_side: usize,
    /// Congestion strategy for the Steiner contenders (the 2PIN
    /// baseline always rips up; it predates negotiation).
    pub mode: RouteMode,
}

impl Default for WidthExperimentConfig {
    fn default() -> WidthExperimentConfig {
        WidthExperimentConfig {
            seed: 1995,
            max_passes: 10,
            width_range: (3, 24),
            pins_per_side: 2,
            mode: RouteMode::RipUp,
        }
    }
}

/// Parses an optional `--mode {ripup,pathfinder}` pair from a binary's
/// argument list, defaulting to rip-up. Unknown values abort with a
/// message naming the accepted modes — the experiment binaries share
/// this so Tables 2 and 5 accept the same flag as `fpga-route`.
///
/// # Errors
///
/// Returns a description when `--mode` is missing its value or names an
/// unknown mode.
pub fn mode_from_args<S: AsRef<str>>(args: &[S]) -> Result<RouteMode, String> {
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        if arg != "--mode" {
            continue;
        }
        return match it.next() {
            Some("ripup") => Ok(RouteMode::RipUp),
            Some("pathfinder") => Ok(RouteMode::Pathfinder),
            Some(other) => Err(format!("unknown mode `{other}` (use ripup or pathfinder)")),
            None => Err("--mode needs a value (ripup or pathfinder)".to_string()),
        };
    }
    Ok(RouteMode::RipUp)
}

/// Minimum widths found for one circuit, one entry per contender.
#[derive(Debug, Clone)]
pub struct CircuitWidths {
    /// The circuit's published profile.
    pub profile: CircuitProfile,
    /// `(contender label, minimum channel width)` in contender order.
    pub widths: Vec<(&'static str, usize)>,
}

/// Synthesizes the profile's circuit deterministically.
///
/// # Errors
///
/// Propagates synthesis errors.
pub fn circuit_for(
    profile: &CircuitProfile,
    config: &WidthExperimentConfig,
) -> Result<Circuit, FpgaError> {
    synthesize(profile, config.pins_per_side, config.seed)
}

/// Finds the minimum channel width for one contender on one circuit.
///
/// # Errors
///
/// Propagates routing errors; [`FpgaError::Unroutable`] means even the top
/// of the width range failed.
pub fn find_width(
    profile: &CircuitProfile,
    circuit: &Circuit,
    arch: impl Fn(usize, usize, usize) -> ArchSpec,
    contender: Contender,
    config: &WidthExperimentConfig,
) -> Result<WidthOutcome, FpgaError> {
    let mut base = arch(profile.rows, profile.cols, config.width_range.0);
    base.pins_per_side = config.pins_per_side;
    minimum_channel_width(
        base,
        config.width_range.0..=config.width_range.1,
        WidthSearch::Binary,
        |device| match contender {
            Contender::Steiner(algorithm) => Router::new(
                device,
                RouterConfig {
                    algorithm,
                    max_passes: config.max_passes,
                    mode: config.mode,
                    ..RouterConfig::default()
                },
            )
            .route(circuit),
            Contender::Baseline => BaselineRouter::new(
                device,
                BaselineConfig {
                    max_passes: config.max_passes,
                    ..BaselineConfig::default()
                },
            )
            .route(circuit),
        },
    )
}

/// Runs the width comparison across profiles and contenders.
///
/// # Errors
///
/// Propagates routing errors.
pub fn run_width_table(
    profiles: &[CircuitProfile],
    arch: impl Fn(usize, usize, usize) -> ArchSpec + Copy,
    contenders: &[Contender],
    config: &WidthExperimentConfig,
) -> Result<Vec<CircuitWidths>, FpgaError> {
    let mut out = Vec::with_capacity(profiles.len());
    for profile in profiles {
        let circuit = circuit_for(profile, config)?;
        let mut widths = Vec::with_capacity(contenders.len());
        for &c in contenders {
            let found = find_width(profile, &circuit, arch, c, config)?;
            widths.push((c.label(), found.channel_width));
        }
        out.push(CircuitWidths {
            profile: *profile,
            widths,
        });
    }
    Ok(out)
}

/// Column totals across circuits for each contender, plus ratios to the
/// last contender (the paper normalizes to "Our Router").
#[must_use]
pub fn totals_and_ratios(rows: &[CircuitWidths]) -> (Vec<usize>, Vec<f64>) {
    let contenders = rows.first().map_or(0, |r| r.widths.len());
    let mut totals = vec![0usize; contenders];
    for row in rows {
        for (i, &(_, w)) in row.widths.iter().enumerate() {
            totals[i] += w;
        }
    }
    let reference = *totals.last().unwrap_or(&1) as f64;
    let ratios = totals.iter().map(|&t| t as f64 / reference).collect();
    (totals, ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic profile so tests stay fast.
    fn tiny_profile() -> CircuitProfile {
        CircuitProfile {
            name: "tiny",
            rows: 4,
            cols: 4,
            nets_2_3: 6,
            nets_4_10: 2,
            nets_over_10: 0,
        }
    }

    #[test]
    fn steiner_router_beats_or_ties_baseline_width() {
        let config = WidthExperimentConfig {
            seed: 3,
            max_passes: 5,
            width_range: (2, 16),
            pins_per_side: 2,
            ..WidthExperimentConfig::default()
        };
        let profiles = [tiny_profile()];
        let rows = run_width_table(
            &profiles,
            ArchSpec::xilinx4000,
            &[Contender::Baseline, Contender::Steiner(RouteAlgorithm::Ikmb)],
            &config,
        )
        .unwrap();
        let base_w = rows[0].widths[0].1;
        let our_w = rows[0].widths[1].1;
        assert!(
            our_w <= base_w,
            "IKMB needed W={our_w}, baseline W={base_w}"
        );
        let (totals, ratios) = totals_and_ratios(&rows);
        assert_eq!(totals.len(), 2);
        assert!(ratios[0] >= 1.0);
        assert!((ratios[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_flag_parses_with_ripup_default() {
        assert_eq!(mode_from_args::<&str>(&[]).unwrap(), RouteMode::RipUp);
        assert_eq!(mode_from_args(&["--mode", "ripup"]).unwrap(), RouteMode::RipUp);
        assert_eq!(
            mode_from_args(&["--seed", "7", "--mode", "pathfinder"]).unwrap(),
            RouteMode::Pathfinder
        );
        assert!(mode_from_args(&["--mode", "bogus"]).is_err());
        assert!(mode_from_args(&["--mode"]).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(Contender::Baseline.label(), "2PIN");
        assert_eq!(Contender::Steiner(RouteAlgorithm::Pfa).label(), "PFA");
    }
}
