//! Regenerates Table 1. `--quick` runs 10 nets per cell instead of 50.

#![forbid(unsafe_code)]

use experiments::table1::{render, run, Table1Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = Table1Config {
        nets: if quick { 10 } else { 50 },
        ..Table1Config::default()
    };
    let sections = run(&config).expect("table 1 experiment failed");
    println!("{}", render(&sections));
}
