//! Regenerates Table 5 (wirelength/pathlength tradeoff at common width).

#![forbid(unsafe_code)]

use experiments::table5::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let rows = run(&WidthExperimentConfig::default()).expect("table 5 experiment failed");
    println!("{}", render(&rows));
}
