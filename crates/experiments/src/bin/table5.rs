//! Regenerates Table 5 (wirelength/pathlength tradeoff at common width).

#![forbid(unsafe_code)]

use experiments::table5::{render, run};
use experiments::telemetry::with_archived_telemetry;
use experiments::widths::{mode_from_args, WidthExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = mode_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let config = WidthExperimentConfig {
        mode,
        ..WidthExperimentConfig::default()
    };
    let (rows, archive, summary) = with_archived_telemetry("table5", || {
        run(&config).expect("table 5 experiment failed")
    })
    .expect("archiving table 5 telemetry failed");
    println!("{}", render(&rows));
    println!("{summary}");
    println!("telemetry archived to {}", archive.display());
}
