//! Regenerates Table 2 (Xilinx 3000-series channel widths).

#![forbid(unsafe_code)]

use experiments::table2::{render, run};
use experiments::telemetry::with_archived_telemetry;
use experiments::widths::{mode_from_args, WidthExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = mode_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let config = WidthExperimentConfig {
        mode,
        ..WidthExperimentConfig::default()
    };
    let (rows, archive, summary) = with_archived_telemetry("table2", || {
        run(&config).expect("table 2 experiment failed")
    })
    .expect("archiving table 2 telemetry failed");
    println!("{}", render(&rows));
    println!("{summary}");
    println!("telemetry archived to {}", archive.display());
}
