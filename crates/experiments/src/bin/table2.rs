//! Regenerates Table 2 (Xilinx 3000-series channel widths).
use experiments::table2::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let rows = run(&WidthExperimentConfig::default()).expect("table 2 experiment failed");
    println!("{}", render(&rows));
}
