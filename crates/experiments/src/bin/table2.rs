//! Regenerates Table 2 (Xilinx 3000-series channel widths).

#![forbid(unsafe_code)]

use experiments::table2::{render, run};
use experiments::telemetry::with_archived_telemetry;
use experiments::widths::WidthExperimentConfig;

fn main() {
    let (rows, archive, summary) = with_archived_telemetry("table2", || {
        run(&WidthExperimentConfig::default()).expect("table 2 experiment failed")
    })
    .expect("archiving table 2 telemetry failed");
    println!("{}", render(&rows));
    println!("{summary}");
    println!("telemetry archived to {}", archive.display());
}
