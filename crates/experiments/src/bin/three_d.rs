//! Regenerates the §6 3D-FPGA folding comparison.

#![forbid(unsafe_code)]

use experiments::three_d::{render, run, ThreeDConfig};

fn main() {
    let config = ThreeDConfig::default();
    let result = run(&config).expect("3D experiment failed");
    println!("{}", render(&result, &config));
}
