//! Regenerates the multi-weighted jog-minimization sweep.

#![forbid(unsafe_code)]

use experiments::jogs::{render, run, JogsConfig};

fn main() {
    let config = JogsConfig::default();
    let points = run(&config).expect("jogs experiment failed");
    println!("{}", render(&points, &config));
}
