//! Regenerates Figure 4 (four solutions for one 4-pin net) as a table and
//! a four-panel SVG.

#![forbid(unsafe_code)]

use experiments::fig4::{render, render_svg, run};

fn main() {
    let result = run(500).expect("figure 4 search failed");
    println!("{}", render(&result));
    let out = experiments::artifact_dir();
    std::fs::create_dir_all(&out).expect("artifact dir");
    let path = out.join("fig4_panels.svg");
    std::fs::write(&path, render_svg(&result).expect("SVG render failed")).expect("write SVG");
    println!("four-panel SVG written to {}", path.display());
}
