//! Regenerates Table 4 (channel width: IKMB vs PFA vs IDOM).
use experiments::table4::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let rows = run(&WidthExperimentConfig::default()).expect("table 4 experiment failed");
    println!("{}", render(&rows));
}
