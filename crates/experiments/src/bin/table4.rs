//! Regenerates Table 4 (channel width: IKMB vs PFA vs IDOM).

#![forbid(unsafe_code)]

use experiments::table4::{render, run};
use experiments::telemetry::with_archived_telemetry;
use experiments::widths::WidthExperimentConfig;

fn main() {
    let (rows, archive, summary) = with_archived_telemetry("table4", || {
        run(&WidthExperimentConfig::default()).expect("table 4 experiment failed")
    })
    .expect("archiving table 4 telemetry failed");
    println!("{}", render(&rows));
    println!("{summary}");
    println!("telemetry archived to {}", archive.display());
}
