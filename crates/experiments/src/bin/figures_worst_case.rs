//! Regenerates Figures 10, 11 and 14 (worst-case families).

#![forbid(unsafe_code)]

use experiments::table::TextTable;
use experiments::worst_case::{run_fig10, run_fig11, run_fig14};

fn main() {
    let fig10 = run_fig10(&[2, 4, 8, 16, 32]).expect("figure 10 failed");
    let mut t = TextTable::new(
        "Figure 10: PFA worst case on weighted graphs (ratio vs optimal)",
        &["clusters", "sinks", "PFA/opt", "IDOM/opt"],
    );
    for p in &fig10 {
        t.push_row(vec![
            p.clusters.to_string(),
            (2 * p.clusters).to_string(),
            format!("{:.3}", p.pfa_ratio),
            format!("{:.3}", p.idom_ratio),
        ]);
    }
    println!("{}", t.render());

    let fig11 = run_fig11(&[2, 3, 5, 7, 9, 12]).expect("figure 11 failed");
    let mut t = TextTable::new(
        "Figure 11: PFA on the grid staircase (tight bound 2)",
        &["k", "PFA cost", "Steiner opt (lower bound)", "ratio"],
    );
    for p in &fig11 {
        t.push_row(vec![
            p.k.to_string(),
            format!("{:.0}", p.pfa_cost),
            p.steiner_opt.map_or("-".into(), |o| format!("{o:.0}")),
            p.ratio_vs_steiner.map_or("-".into(), |r| format!("{r:.3}")),
        ]);
    }
    println!("{}", t.render());

    let fig14 = run_fig14(&[2, 3, 4, 5, 6, 7]).expect("figure 14 failed");
    let mut t = TextTable::new(
        "Figure 14: IDOM on the set-cover gadget (Ω(log N) lower bound)",
        &["m", "sinks", "IDOM/opt", "(m+2)/2"],
    );
    for p in &fig14 {
        t.push_row(vec![
            p.m.to_string(),
            p.sinks.to_string(),
            format!("{:.3}", p.idom_ratio),
            format!("{:.3}", (p.m as f64 + 2.0) / 2.0),
        ]);
    }
    println!("{}", t.render());
}
