//! Regenerates Table 3 (Xilinx 4000-series channel widths).
use experiments::table3::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let rows = run(&WidthExperimentConfig::default()).expect("table 3 experiment failed");
    println!("{}", render(&rows));
}
