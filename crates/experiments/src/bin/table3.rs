//! Regenerates Table 3 (Xilinx 4000-series channel widths).

#![forbid(unsafe_code)]

use experiments::table3::{render, run};
use experiments::telemetry::with_archived_telemetry;
use experiments::widths::WidthExperimentConfig;

fn main() {
    let (rows, archive, summary) = with_archived_telemetry("table3", || {
        run(&WidthExperimentConfig::default()).expect("table 3 experiment failed")
    })
    .expect("archiving table 3 telemetry failed");
    println!("{}", render(&rows));
    println!("{summary}");
    println!("telemetry archived to {}", archive.display());
}
