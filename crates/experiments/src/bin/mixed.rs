//! Regenerates the mixed critical/non-critical routing comparison.

#![forbid(unsafe_code)]

use experiments::mixed::{render, run};
use experiments::widths::WidthExperimentConfig;

fn main() {
    let config = WidthExperimentConfig::default();
    let rows = run(&config, "term1", 10, 0.15).expect("mixed experiment failed");
    println!("{}", render(&rows, "term1", 10));
}
