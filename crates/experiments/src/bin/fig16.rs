//! Regenerates Figure 16 (rendered busc routing, SVG + ASCII).

#![forbid(unsafe_code)]

use experiments::fig16::run;
use experiments::widths::WidthExperimentConfig;

fn main() {
    let out = experiments::artifact_dir();
    let result = run(&WidthExperimentConfig::default(), &out).expect("figure 16 failed");
    println!(
        "busc routed at W = {} (total wirelength {:.0}); SVG written to {}",
        result.channel_width,
        result.total_wirelength,
        result.svg_path.display()
    );
    println!("{}", result.ascii);
}
