//! Regenerates the §2 radius-cost tradeoff comparison.

#![forbid(unsafe_code)]

use experiments::tradeoff::{render, run, TradeoffConfig};

fn main() {
    let config = TradeoffConfig::default();
    let points = run(&config).expect("tradeoff experiment failed");
    println!("{}", render(&points, &config));
}
