//! Regenerates the Figure 6 / Figure 13 execution traces.

#![forbid(unsafe_code)]

use experiments::figs_exec::{render, run_fig13, run_fig6};

fn main() {
    println!("{}", render(&run_fig6().expect("figure 6 trace failed")));
    println!("{}", render(&run_fig13().expect("figure 13 trace failed")));
}
