//! SVG rendering of routing trees on grid graphs (Figure 4 style).

use std::fmt::Write as _;

use route_graph::{GridGraph, NodeId};
use steiner_route::{Net, RoutingTree};

/// One labelled panel of a grid figure.
#[derive(Debug, Clone)]
pub struct GridPanel<'a> {
    /// Caption under the panel (e.g. `"(a) KMB — cost 9"`).
    pub caption: String,
    /// The tree drawn in this panel.
    pub tree: &'a RoutingTree,
}

/// Renders a row of panels, each showing the same net and grid with a
/// different routing tree — the layout of the paper's Figure 4.
///
/// The source pin is drawn as a light square, sinks as dark squares, tree
/// edges as thick lines, and unused grid edges as a faint lattice.
#[must_use]
pub fn render_grid_panels(grid: &GridGraph, net: &Net, panels: &[GridPanel<'_>]) -> String {
    const CELL: f64 = 28.0;
    const MARGIN: f64 = 22.0;
    const GAP: f64 = 30.0;
    let rows = grid.rows() as f64;
    let cols = grid.cols() as f64;
    let panel_w = (cols - 1.0) * CELL + 2.0 * MARGIN;
    let panel_h = (rows - 1.0) * CELL + 2.0 * MARGIN + 18.0;
    let width = panel_w * panels.len() as f64 + GAP * (panels.len().saturating_sub(1)) as f64;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{panel_h}" viewBox="0 0 {width} {panel_h}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{width}" height="{panel_h}" fill="white"/>"#
    );
    let pos = |v: NodeId, ox: f64| -> (f64, f64) {
        let (r, c) = grid.position(v).expect("tree nodes live on the grid");
        (ox + MARGIN + c as f64 * CELL, MARGIN + r as f64 * CELL)
    };
    for (pi, panel) in panels.iter().enumerate() {
        let ox = pi as f64 * (panel_w + GAP);
        // Faint lattice.
        for e in grid.graph().edge_ids() {
            let (a, b) = grid.graph().endpoints(e).expect("usable edge");
            let (x1, y1) = pos(a, ox);
            let (x2, y2) = pos(b, ox);
            let _ = writeln!(
                svg,
                r##"<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" stroke="#dddddd" stroke-width="1"/>"##
            );
        }
        // Tree edges.
        for &e in panel.tree.edges() {
            let (a, b) = grid.graph().endpoints(e).expect("usable edge");
            let (x1, y1) = pos(a, ox);
            let (x2, y2) = pos(b, ox);
            let _ = writeln!(
                svg,
                r##"<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" stroke="#1f6f43" stroke-width="3.2" stroke-linecap="round"/>"##
            );
        }
        // Steiner nodes of the tree (non-terminals of degree ≥ 3).
        for v in panel.tree.nodes() {
            if !net.contains(v) && panel.tree.degree(v) >= 3 {
                let (x, y) = pos(v, ox);
                let _ = writeln!(
                    svg,
                    r##"<circle cx="{x}" cy="{y}" r="4" fill="white" stroke="#1f6f43" stroke-width="1.6"/>"##
                );
            }
        }
        // Pins: source light, sinks dark.
        for (i, &t) in net.terminals().iter().enumerate() {
            let (x, y) = pos(t, ox);
            let fill = if i == 0 { "#f2c14e" } else { "#333333" };
            let _ = writeln!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="11" height="11" fill="{fill}" stroke="#111"/>"##,
                x - 5.5,
                y - 5.5
            );
        }
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" fill="#222">{}</text>"##,
            ox + panel_w / 2.0,
            panel_h - 6.0,
            panel.caption
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::Weight;
    use steiner_route::{ikmb, Kmb, SteinerHeuristic};

    #[test]
    fn renders_panels_for_each_tree() {
        let grid = GridGraph::new(4, 4, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(3, 1).unwrap(), grid.node_at(1, 3).unwrap()],
        )
        .unwrap();
        let a = Kmb::new().construct(grid.graph(), &net).unwrap();
        let b = ikmb().construct(grid.graph(), &net).unwrap();
        let svg = render_grid_panels(
            &grid,
            &net,
            &[
                GridPanel {
                    caption: "(a) KMB".into(),
                    tree: &a,
                },
                GridPanel {
                    caption: "(b) IKMB".into(),
                    tree: &b,
                },
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("text-anchor").count(), 2);
        // 3 pins per panel.
        assert_eq!(svg.matches("height=\"11\"").count(), 6);
    }
}
