//! Regeneration harness for every table and figure in the evaluation
//! section of *New Performance-Driven FPGA Routing Algorithms* (Alexander
//! & Robins, DAC 1995).
//!
//! Each module regenerates one artifact and has a matching binary in
//! `src/bin/` plus a `harness = false` bench target in the `bench` crate,
//! so `cargo bench --workspace` reproduces the full evaluation:
//!
//! | Module | Artifact |
//! |---|---|
//! | [`table1`] | Table 1 — algorithm quality on congested grids |
//! | [`table2`] | Table 2 — channel width, Xilinx 3000-series |
//! | [`table3`] | Table 3 — channel width, Xilinx 4000-series |
//! | [`table4`] | Table 4 — channel width: IKMB vs PFA vs IDOM |
//! | [`table5`] | Table 5 — wirelength/pathlength tradeoff at common width |
//! | [`fig4`] | Figure 4 — four solutions for one 4-pin net (incl. SVG) |
//! | [`figs_exec`] | Figures 6 & 13 — IKMB/IDOM execution traces |
//! | [`worst_case`] | Figures 10, 11, 14 — worst-case families |
//! | [`fig16`] | Figure 16 — rendered busc routing |
//! | [`tradeoff`] | §2's BRBC/AHHK radius-cost sweep vs PFA/IDOM |
//! | [`mixed`] | §1's mixed critical/non-critical routing policy |
//! | [`three_d`] | §6's 3D-FPGA folding comparison |
//! | [`jogs`] | §2's multi-weighted jog-minimization sweep |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig16;
pub mod fig4;
pub mod figs_exec;
pub mod gridviz;
pub mod jogs;
pub mod mixed;
pub mod table;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod telemetry;
pub mod three_d;
pub mod tradeoff;
pub mod widths;
pub mod worst_case;

/// Directory experiment binaries write artifacts (SVGs, raw dumps) into:
/// `$EXPERIMENTS_OUT` when set, else `experiments_out/` at the workspace
/// root (anchored at compile time, so `cargo bench` and `cargo run` agree
/// regardless of their working directories).
#[must_use]
pub fn artifact_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("EXPERIMENTS_OUT") {
        return std::path::PathBuf::from(dir);
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("experiments_out")
}
