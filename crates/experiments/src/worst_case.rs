//! Worst-case families — **Figures 10, 11, and 14**.
//!
//! * Figure 10: a weighted-graph family on which PFA is `Ω(N)` times
//!   optimal while IDOM solves it (nearly) optimally.
//! * Figure 11: the grid-graph staircase on which PFA's ratio drifts
//!   toward its tight bound of 2.
//! * Figure 14: the set-cover gadget forcing IDOM into an `Ω(log N)`
//!   ratio — matched by the inapproximability of the GSA problem.

use route_graph::{Graph, GridGraph, NodeId, Weight};
use steiner_route::{
    exact, idom_with_config, CandidatePool, IteratedConfig, Net, Pfa, SteinerError,
    SteinerHeuristic,
};

/// Small positive weight used to stagger shortest paths without changing
/// their structure (1/1000 unit).
const EPS: Weight = Weight::from_milli(1);

/// The Figure 10 gadget: `clusters` sink pairs, each with a private deep
/// merge node `m_i` (which PFA greedily folds at, killing global sharing)
/// and a shared shallow spine `B` (which the optimum and IDOM use).
///
/// Returns the graph, the net, and the optimal arborescence cost.
///
/// Construction (all shortest paths exact by fixed-point arithmetic):
///
/// * `n0 —1— B`, `B —ε— u_i`, `u_i —ε— p_i`, `u_i —ε— q_i`;
/// * `n0 —(1+ε)— m_i`, `m_i —ε— p_i`, `m_i —ε— q_i`.
///
/// Both routes give `d0(p_i) = 1 + 2ε`; `m_i` and `u_i` tie at `1 + ε`,
/// and `MaxDom`'s deterministic tie-break (lower node index) picks the
/// adversarial `m_i`. The optimum shares the spine: `1 + 3·clusters·ε`.
///
/// # Errors
///
/// Propagates construction errors (none occur for `clusters ≥ 1`).
pub fn pfa_weighted_gadget(clusters: usize) -> Result<(Graph, Net, Weight), SteinerError> {
    let mut g = Graph::new();
    let n0 = g.add_node();
    let b = g.add_node();
    let m: Vec<NodeId> = (0..clusters).map(|_| g.add_node()).collect();
    let u: Vec<NodeId> = (0..clusters).map(|_| g.add_node()).collect();
    let mut sinks = Vec::with_capacity(2 * clusters);
    for i in 0..clusters {
        let p = g.add_node();
        let q = g.add_node();
        g.add_edge(n0, m[i], Weight::UNIT.saturating_add(EPS)).map_err(SteinerError::Graph)?;
        g.add_edge(m[i], p, EPS).map_err(SteinerError::Graph)?;
        g.add_edge(m[i], q, EPS).map_err(SteinerError::Graph)?;
        g.add_edge(b, u[i], EPS).map_err(SteinerError::Graph)?;
        g.add_edge(u[i], p, EPS).map_err(SteinerError::Graph)?;
        g.add_edge(u[i], q, EPS).map_err(SteinerError::Graph)?;
        sinks.push(p);
        sinks.push(q);
    }
    g.add_edge(n0, b, Weight::UNIT).map_err(SteinerError::Graph)?;
    let net = Net::new(n0, sinks)?;
    let optimal = Weight::UNIT.saturating_add(EPS.scale(3 * clusters as u64));
    Ok((g, net, optimal))
}

/// Figure 10 measurements for one size.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Point {
    /// Number of sink pairs.
    pub clusters: usize,
    /// PFA cost / optimal cost.
    pub pfa_ratio: f64,
    /// IDOM cost / optimal cost.
    pub idom_ratio: f64,
}

/// Runs Figure 10 across gadget sizes.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run_fig10(sizes: &[usize]) -> Result<Vec<Fig10Point>, SteinerError> {
    let mut out = Vec::new();
    for &clusters in sizes {
        let (g, net, optimal) = pfa_weighted_gadget(clusters)?;
        let pfa = Pfa::new().construct(&g, &net)?;
        let idom_tree = idom_with_config(IteratedConfig {
            batched: false,
            ..IteratedConfig::default()
        })
        .construct(&g, &net)?;
        assert!(pfa.is_shortest_paths_tree(&g, &net)?);
        assert!(idom_tree.is_shortest_paths_tree(&g, &net)?);
        out.push(Fig10Point {
            clusters,
            pfa_ratio: pfa.cost().as_f64() / optimal.as_f64(),
            idom_ratio: idom_tree.cost().as_f64() / optimal.as_f64(),
        });
    }
    Ok(out)
}

/// The Figure 11 staircase pointset on a unit grid: source at `(0, 0)`,
/// sinks at `(2i, k − i)` for `i = 0..=k` — horizontal interpoint spacing
/// one unit, vertical spacing two, pairwise non-dominating.
///
/// # Errors
///
/// Propagates construction errors.
pub fn pfa_staircase(k: usize) -> Result<(GridGraph, Net), SteinerError> {
    let grid = GridGraph::new(2 * k + 1, k + 1, Weight::UNIT).map_err(SteinerError::Graph)?;
    let source = grid.node_at(0, 0).map_err(SteinerError::Graph)?;
    let sinks = (0..=k)
        .map(|i| grid.node_at(2 * i, k - i).map_err(SteinerError::Graph))
        .collect::<Result<Vec<_>, _>>()?;
    let net = Net::new(source, sinks)?;
    Ok((grid, net))
}

/// Figure 11 measurements for one size.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Point {
    /// Staircase parameter `k` (`k + 1` sinks).
    pub k: usize,
    /// PFA cost in units.
    pub pfa_cost: f64,
    /// Exact optimal Steiner *tree* cost (a lower bound on the optimal
    /// arborescence), where tractable.
    pub steiner_opt: Option<f64>,
    /// PFA cost / Steiner lower bound.
    pub ratio_vs_steiner: Option<f64>,
}

/// Runs Figure 11 across staircase sizes.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run_fig11(sizes: &[usize]) -> Result<Vec<Fig11Point>, SteinerError> {
    let mut out = Vec::new();
    for &k in sizes {
        let (grid, net) = pfa_staircase(k)?;
        let pfa = Pfa::new().construct(grid.graph(), &net)?;
        assert!(pfa.is_shortest_paths_tree(grid.graph(), &net)?);
        let steiner_opt = if net.pin_count() <= exact::MAX_EXACT_TERMINALS {
            Some(exact::steiner_cost_for_net(grid.graph(), &net)?.as_f64())
        } else {
            None
        };
        out.push(Fig11Point {
            k,
            pfa_cost: pfa.cost().as_f64(),
            steiner_opt,
            ratio_vs_steiner: steiner_opt.map(|o| pfa.cost().as_f64() / o),
        });
    }
    Ok(out)
}

/// The Figure 14 set-cover gadget: `2 × 2^m` sinks in two rows, "box"
/// hubs at unit distance from the source with ε edges to their covered
/// sinks. The two row hubs cover everything (optimal ≈ 2), while the trap
/// hubs — geometrically shrinking column blocks covering both rows, with
/// lower node indices — bait greedy ΔDOM into `Ω(log N)` selections.
///
/// Returns the graph, the net, the optimal cost, and the hub ids
/// `(traps, rows)`.
///
/// # Errors
///
/// Propagates construction errors.
#[allow(clippy::type_complexity, clippy::needless_range_loop)]
pub fn idom_setcover_gadget(
    m: usize,
) -> Result<(Graph, Net, Weight, (Vec<NodeId>, Vec<NodeId>)), SteinerError> {
    let cols = 1usize << m;
    let mut g = Graph::new();
    let n0 = g.add_node();
    // Trap hubs first: lower node indices win ΔDOM ties.
    let traps: Vec<NodeId> = (0..m).map(|_| g.add_node()).collect();
    let rows: Vec<NodeId> = (0..2).map(|_| g.add_node()).collect();
    for &hub in traps.iter().chain(rows.iter()) {
        g.add_edge(n0, hub, Weight::UNIT).map_err(SteinerError::Graph)?;
    }
    let mut sinks = Vec::with_capacity(2 * cols);
    let mut sink_at = vec![vec![NodeId::from_index(0); cols]; 2];
    for r in 0..2 {
        for c in 0..cols {
            let s = g.add_node();
            sink_at[r][c] = s;
            sinks.push(s);
            g.add_edge(rows[r], s, EPS).map_err(SteinerError::Graph)?;
        }
    }
    // Trap k covers the next block of 2^(m-1-k) columns, both rows.
    let mut start = 0usize;
    for (k, &trap) in traps.iter().enumerate() {
        let len = 1usize << (m - 1 - k);
        for c in start..start + len {
            for r in 0..2 {
                g.add_edge(trap, sink_at[r][c], EPS).map_err(SteinerError::Graph)?;
            }
        }
        start += len;
    }
    let net = Net::new(n0, sinks)?;
    // Optimal: the two row hubs (2 units) plus one ε edge per sink.
    let optimal = Weight::from_units(2).saturating_add(EPS.scale(2 * cols as u64));
    Ok((g, net, optimal, (traps, rows)))
}

/// Figure 14 measurements for one size.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Point {
    /// Gadget parameter `m` (`N = 2^(m+1)` sinks).
    pub m: usize,
    /// Number of sinks.
    pub sinks: usize,
    /// IDOM cost / optimal cost.
    pub idom_ratio: f64,
}

/// Runs Figure 14 across gadget sizes with the non-batched (purely greedy)
/// IDOM — the configuration the lower bound targets.
///
/// # Errors
///
/// Propagates construction errors.
pub fn run_fig14(sizes: &[usize]) -> Result<Vec<Fig14Point>, SteinerError> {
    let mut out = Vec::new();
    for &m in sizes {
        let (g, net, optimal, _) = idom_setcover_gadget(m)?;
        let idom_tree = idom_with_config(IteratedConfig {
            batched: false,
            pool: CandidatePool::All,
            ..IteratedConfig::default()
        })
        .construct(&g, &net)?;
        assert!(idom_tree.is_shortest_paths_tree(&g, &net)?);
        out.push(Fig14Point {
            m,
            sinks: net.pin_count() - 1,
            idom_ratio: idom_tree.cost().as_f64() / optimal.as_f64(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_ratio_grows_linearly_and_idom_escapes() {
        let points = run_fig10(&[2, 4, 8]).unwrap();
        // PFA ratio ≈ clusters (within rounding of the ε terms).
        for p in &points {
            assert!(
                (p.pfa_ratio - p.clusters as f64).abs() < 0.2,
                "clusters {} ratio {}",
                p.clusters,
                p.pfa_ratio
            );
            // IDOM solves these instances near-optimally (paper §4.2).
            assert!(p.idom_ratio < 1.05, "idom ratio {}", p.idom_ratio);
        }
        assert!(points[2].pfa_ratio > points[0].pfa_ratio * 2.0);
    }

    #[test]
    fn fig11_staircase_ratio_exceeds_one_and_grows() {
        let points = run_fig11(&[2, 4, 7]).unwrap();
        let r2 = points[0].ratio_vs_steiner.unwrap();
        let r7 = points[2].ratio_vs_steiner.unwrap();
        assert!(r2 >= 1.0);
        assert!(r7 > r2, "ratio did not grow: {r2} -> {r7}");
        assert!(r7 <= 2.0 + 1e-9, "PFA exceeded its grid bound: {r7}");
    }

    #[test]
    fn fig14_ratio_grows_logarithmically() {
        let points = run_fig14(&[2, 4, 6]).unwrap();
        for p in &points {
            let expected = (p.m as f64 + 2.0) / 2.0;
            assert!(
                (p.idom_ratio - expected).abs() < 0.35,
                "m = {}: ratio {} vs expected ≈ {}",
                p.m,
                p.idom_ratio,
                expected
            );
        }
        assert!(points[2].idom_ratio > points[0].idom_ratio);
    }

    #[test]
    fn gadget_shapes() {
        let (g, net, _, (traps, rows)) = idom_setcover_gadget(3).unwrap();
        assert_eq!(net.pin_count() - 1, 16); // 2 × 2^3 sinks
        assert_eq!(traps.len(), 3);
        assert_eq!(rows.len(), 2);
        assert!(g.node_count() > 20);
        let (g10, net10, opt) = pfa_weighted_gadget(3).unwrap();
        assert_eq!(net10.pin_count() - 1, 6);
        assert!(opt > Weight::UNIT);
        assert!(g10.node_count() == 2 + 3 * 4);
    }
}
