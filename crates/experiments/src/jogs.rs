//! Jog minimization through multi-weighted routing (paper §2, refs \[4, 7\]).
//!
//! The paper's companion framework routes on graphs whose edge weights
//! combine "congestion, wirelength, and jog minimization" objectives.
//! Here we attach a jog penalty to every direction-changing switch of a
//! real device, sweep the penalty coefficient, and measure the tradeoff:
//! bends drop as the coefficient grows, at a modest wirelength premium.

use route_graph::rng::Rng;

use fpga_device::{ArchSpec, Device, EdgeKind, FpgaError, Side};
use route_graph::multiweight::{Functional, MultiWeightedGraph};
use route_graph::Weight;
use steiner_route::{ikmb, Net, SteinerHeuristic};

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct JogsConfig {
    /// Device rows/cols.
    pub rows: usize,
    /// Device columns.
    pub cols: usize,
    /// Channel width.
    pub channel_width: usize,
    /// Nets to average over.
    pub nets: usize,
    /// Pins per net.
    pub pins: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for JogsConfig {
    fn default() -> JogsConfig {
        JogsConfig {
            rows: 8,
            cols: 8,
            channel_width: 6,
            nets: 20,
            pins: 4,
            seed: 1995,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct JogsPoint {
    /// Jog coefficient in milli (1000 = a bend costs one extra unit).
    pub jog_coeff_milli: u64,
    /// Mean bends (turn switches) per routed net.
    pub mean_jogs: f64,
    /// Mean physical wirelength per routed net (length component only).
    pub mean_wirelength: f64,
}

/// Runs the jog-penalty sweep.
///
/// # Errors
///
/// Propagates device and routing errors.
pub fn run(config: &JogsConfig) -> Result<Vec<JogsPoint>, FpgaError> {
    let device = Device::new(ArchSpec::xilinx4000(
        config.rows,
        config.cols,
        config.channel_width,
    ))?;
    // Criteria: every switch edge carries its unit length; turn edges
    // additionally carry one unit of jog.
    let mut mw = MultiWeightedGraph::from_graph(device.working_graph());
    for e in device.graph().edge_ids() {
        if device.edge_kind(e)? == EdgeKind::Turn {
            let mut c = mw.criteria(e)?;
            c.jogs = Weight::UNIT;
            mw.set_criteria(e, c)?;
        }
    }
    // A fixed workload of random nets over the device's pins.
    let mut rng = route_graph::rng::SplitMix64::seed_from_u64(config.seed);
    let mut nets = Vec::with_capacity(config.nets);
    while nets.len() < config.nets {
        let mut pins = Vec::new();
        while pins.len() < config.pins {
            let pin = device.pin_node(
                rng.gen_range(0..config.rows),
                rng.gen_range(0..config.cols),
                Side::ALL[rng.gen_range(0..4usize)],
                0,
            )?;
            if !pins.contains(&pin) {
                pins.push(pin);
            }
        }
        nets.push(Net::from_terminals(pins).map_err(FpgaError::Steiner)?);
    }
    let heuristic = ikmb();
    let mut out = Vec::new();
    for jog_coeff_milli in [0u64, 500, 1000, 2000, 4000] {
        mw.set_functional(Functional {
            length_milli: 1000,
            congestion_milli: 0,
            jogs_milli: jog_coeff_milli,
        })?;
        let mut jogs = 0.0;
        let mut wire = 0.0;
        for net in &nets {
            let tree = heuristic
                .construct(mw.graph(), net)
                .map_err(FpgaError::Steiner)?;
            jogs += mw
                .component_total(tree.edges(), |c| c.jogs)?
                .as_f64();
            wire += mw
                .component_total(tree.edges(), |c| c.length)?
                .as_f64();
        }
        out.push(JogsPoint {
            jog_coeff_milli,
            mean_jogs: jogs / config.nets as f64,
            mean_wirelength: wire / config.nets as f64,
        });
    }
    Ok(out)
}

/// Renders the sweep.
#[must_use]
pub fn render(points: &[JogsPoint], config: &JogsConfig) -> String {
    let mut t = TextTable::new(
        format!(
            "Jog minimization via multi-weighted routing ({} nets, {}x{} device, W={})",
            config.nets, config.rows, config.cols, config.channel_width
        ),
        &["jog coefficient", "mean bends/net", "mean wirelength/net"],
    );
    for p in points {
        t.push_row(vec![
            format!("{:.1}", p.jog_coeff_milli as f64 / 1000.0),
            format!("{:.2}", p.mean_jogs),
            format!("{:.2}", p.mean_wirelength),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jog_penalty_reduces_bends_and_costs_some_wire() {
        let config = JogsConfig {
            rows: 6,
            cols: 6,
            channel_width: 5,
            nets: 8,
            pins: 3,
            seed: 2,
        };
        let points = run(&config).unwrap();
        let free = points.first().unwrap();
        let heavy = points.last().unwrap();
        assert!(
            heavy.mean_jogs < free.mean_jogs,
            "bends did not drop: {} -> {}",
            free.mean_jogs,
            heavy.mean_jogs
        );
        assert!(heavy.mean_wirelength >= free.mean_wirelength);
        // Monotone-ish along the sweep (allow tiny heuristic noise).
        for w in points.windows(2) {
            assert!(w[1].mean_jogs <= w[0].mean_jogs + 0.51);
        }
        let rendered = render(&points, &config);
        assert!(rendered.contains("bends"));
    }
}
