//! Mixed critical/non-critical routing — the paper's intended deployment.
//!
//! §1's two-pronged motivation: route non-critical nets for resource usage
//! (Steiner) and critical nets for delay (arborescence). This experiment
//! routes a 4000-series circuit three ways at the same channel width —
//! all-IKMB, all-IDOM, and the mixed policy (top-span nets via IDOM, the
//! rest via IKMB) — and reports the wirelength spent and the delay quality
//! *of the critical nets specifically*.

use fpga_device::classify::by_span;
use fpga_device::synth::xc4000_profiles;
use fpga_device::{ArchSpec, Device, FpgaError, RouteAlgorithm, Router, RouterConfig};
use route_graph::Weight;
use steiner_route::metrics::optimal_max_pathlength;
use steiner_route::Net;

use crate::table::TextTable;
use crate::widths::{circuit_for, WidthExperimentConfig};

/// One routing policy's results.
#[derive(Debug, Clone)]
pub struct MixedRow {
    /// Policy label.
    pub policy: String,
    /// Total wirelength.
    pub wirelength: f64,
    /// Sum of critical nets' max pathlengths.
    pub critical_pathlength: f64,
    /// Critical nets achieving the optimal radius on the virgin device.
    pub critical_optimal: usize,
    /// Number of critical nets.
    pub critical_count: usize,
}

/// Runs the mixed-criticality comparison on one circuit.
///
/// # Errors
///
/// Propagates routing errors; widths below feasibility are reported as
/// [`FpgaError::Unroutable`].
pub fn run(
    config: &WidthExperimentConfig,
    circuit_name: &str,
    channel_width: usize,
    critical_fraction: f64,
) -> Result<Vec<MixedRow>, FpgaError> {
    let profile = xc4000_profiles()
        .into_iter()
        .find(|p| p.name == circuit_name)
        .ok_or_else(|| {
            FpgaError::CircuitMismatch(format!("unknown circuit {circuit_name}"))
        })?;
    let circuit = circuit_for(&profile, config)?;
    let critical = by_span(&circuit, critical_fraction);
    let critical_count = critical.iter().filter(|&&c| c).count();
    let mut arch = ArchSpec::xilinx4000(profile.rows, profile.cols, channel_width);
    arch.pins_per_side = config.pins_per_side;
    let device = Device::new(arch)?;
    // Optimal radii on the virgin device (the lower bound any routing can
    // reach for each net before congestion commits resources).
    let mut optimal_radius = Vec::with_capacity(circuit.net_count());
    for ni in 0..circuit.net_count() {
        let net = Net::from_terminals(circuit.net_terminals(&device, ni)?)
            .map_err(FpgaError::Steiner)?;
        optimal_radius
            .push(optimal_max_pathlength(device.graph(), &net).map_err(FpgaError::Steiner)?);
    }
    let policies: Vec<(String, RouteAlgorithm, Option<RouteAlgorithm>)> = vec![
        ("all IKMB".into(), RouteAlgorithm::Ikmb, None),
        ("all IDOM".into(), RouteAlgorithm::Idom, None),
        (
            format!("mixed (top {:.0}% span via IDOM)", critical_fraction * 100.0),
            RouteAlgorithm::Ikmb,
            Some(RouteAlgorithm::Idom),
        ),
    ];
    let mut rows = Vec::new();
    for (policy, algorithm, critical_algorithm) in policies {
        let router = Router::new(
            &device,
            RouterConfig {
                algorithm,
                critical_algorithm,
                max_passes: config.max_passes,
                ..RouterConfig::default()
            },
        );
        let outcome = router.route_classified(&circuit, &critical)?;
        let mut critical_pathlength = Weight::ZERO;
        let mut critical_optimal = 0usize;
        for ni in 0..circuit.net_count() {
            if !critical[ni] {
                continue;
            }
            critical_pathlength = critical_pathlength.saturating_add(outcome.max_pathlengths[ni]);
            if outcome.max_pathlengths[ni] == optimal_radius[ni] {
                critical_optimal += 1;
            }
        }
        rows.push(MixedRow {
            policy,
            wirelength: outcome.total_wirelength.as_f64(),
            critical_pathlength: critical_pathlength.as_f64(),
            critical_optimal,
            critical_count,
        });
    }
    Ok(rows)
}

/// Renders the comparison.
#[must_use]
pub fn render(rows: &[MixedRow], circuit_name: &str, channel_width: usize) -> String {
    let mut t = TextTable::new(
        format!(
            "Mixed criticality routing: {circuit_name} at W = {channel_width}"
        ),
        &[
            "policy",
            "total wirelength",
            "critical path sum",
            "critical nets at virgin-optimal radius",
        ],
    );
    for row in rows {
        t.push_row(vec![
            row.policy.clone(),
            format!("{:.0}", row.wirelength),
            format!("{:.0}", row.critical_pathlength),
            format!("{}/{}", row.critical_optimal, row.critical_count),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_policy_sits_between_the_extremes() {
        let config = WidthExperimentConfig {
            max_passes: 6,
            ..WidthExperimentConfig::default()
        };
        let rows = run(&config, "term1", 10, 0.15).unwrap();
        assert_eq!(rows.len(), 3);
        let ikmb = &rows[0];
        let idom = &rows[1];
        let mixed = &rows[2];
        // Mixed wirelength should not exceed the all-arborescence policy's
        // by much, and its critical-path quality should match or beat the
        // all-Steiner policy.
        assert!(mixed.wirelength <= idom.wirelength * 1.05 + 1.0);
        assert!(mixed.critical_pathlength <= ikmb.critical_pathlength + 1e-9);
        let rendered = render(&rows, "term1", 10);
        assert!(rendered.contains("mixed"));
    }
}
