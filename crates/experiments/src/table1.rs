//! **Table 1** — average wirelength % (vs KMB) and maximum pathlength %
//! (vs optimal) for all eight algorithms on congested 20×20 grid graphs.
//!
//! Paper §5: "For each of these three congestion levels and net size (5
//! and 8 pins), 50 uniformly-distributed nets were routed on a congested
//! graph (newly-generated for each net), using all eight algorithms."



use route_graph::Weight;
use steiner_route::congestion::{table1_grid, CongestionLevel};
use steiner_route::metrics::{measure, optimal_max_pathlength, percent_vs};
use steiner_route::{
    idom, ikmb, izel, Djka, Dom, Kmb, Net, Pfa, SteinerError, SteinerHeuristic, Zel,
};

use crate::table::{pct, TextTable};

/// Net sizes evaluated by the paper's Table 1.
pub const NET_SIZES: [usize; 2] = [5, 8];

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// Nets per (congestion level, net size) cell; the paper uses 50.
    pub nets: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Table1Config {
        Table1Config { nets: 50, seed: 1995 }
    }
}

/// One algorithm's averages within a congestion section.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Per net size: average wirelength % w.r.t. KMB.
    pub wire_pct: Vec<f64>,
    /// Per net size: average max pathlength % w.r.t. optimal.
    pub path_pct: Vec<f64>,
}

/// One congestion level's block of the table.
#[derive(Debug, Clone)]
pub struct Table1Section {
    /// Congestion level.
    pub level: CongestionLevel,
    /// Observed mean routing-graph edge weight `w̄` (averaged over nets).
    pub mean_edge_weight: f64,
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// The algorithm roster in the paper's Table 1 order, in the
/// paper-faithful configuration (exhaustive Steiner candidates).
#[must_use]
pub fn roster() -> Vec<(&'static str, Box<dyn SteinerHeuristic>)> {
    vec![
        ("KMB", Box::new(Kmb::new())),
        ("ZEL", Box::new(Zel::new())),
        ("IKMB", Box::new(ikmb())),
        ("IZEL", Box::new(izel())),
        ("DJKA", Box::new(Djka::new())),
        ("DOM", Box::new(Dom::new())),
        ("PFA", Box::new(Pfa::new())),
        ("IDOM", Box::new(idom())),
    ]
}

/// Runs the full Table 1 experiment.
///
/// # Errors
///
/// Propagates construction errors (a connected grid never produces any).
pub fn run(config: &Table1Config) -> Result<Vec<Table1Section>, SteinerError> {
    let algorithms = roster();
    let mut sections = Vec::new();
    for level in CongestionLevel::all() {
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(config.seed ^ level.preroute_count() as u64);
        let mut wire_sum = vec![vec![0.0f64; NET_SIZES.len()]; algorithms.len()];
        let mut path_sum = vec![vec![0.0f64; NET_SIZES.len()]; algorithms.len()];
        let mut w_bar_sum = 0.0f64;
        let mut w_bar_count = 0usize;
        for (si, &size) in NET_SIZES.iter().enumerate() {
            for _ in 0..config.nets {
                // Fresh congested grid per net, as in the paper.
                let grid = table1_grid(level, &mut rng)?;
                w_bar_sum += grid.graph().mean_edge_weight().expect("grid has edges");
                w_bar_count += 1;
                let pins = route_graph::random::random_net(grid.graph(), size, &mut rng)?;
                let net = Net::from_terminals(pins)?;
                let opt_path = optimal_max_pathlength(grid.graph(), &net)?;
                let mut kmb_wire = Weight::ZERO;
                for (ai, (_, algo)) in algorithms.iter().enumerate() {
                    let tree = algo.construct(grid.graph(), &net)?;
                    let m = measure(&tree, &net)?;
                    if ai == 0 {
                        kmb_wire = m.wirelength;
                    }
                    wire_sum[ai][si] += percent_vs(m.wirelength, kmb_wire);
                    path_sum[ai][si] += percent_vs(m.max_pathlength, opt_path);
                }
            }
        }
        let n = config.nets as f64;
        let rows = algorithms
            .iter()
            .enumerate()
            .map(|(ai, (name, _))| Table1Row {
                algorithm: name,
                wire_pct: wire_sum[ai].iter().map(|s| s / n).collect(),
                path_pct: path_sum[ai].iter().map(|s| s / n).collect(),
            })
            .collect();
        sections.push(Table1Section {
            level,
            mean_edge_weight: w_bar_sum / w_bar_count as f64,
            rows,
        });
    }
    Ok(sections)
}

/// Renders the sections in the paper's layout.
#[must_use]
pub fn render(sections: &[Table1Section]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1: Average wirelength % (w.r.t. KMB) and max pathlength % (w.r.t. optimal)\n",
    );
    out.push_str("Grid: 20x20, 50 nets per cell, net sizes 5 and 8 pins\n\n");
    for section in sections {
        let title = format!(
            "{} (k = {} pre-routed nets, measured w̄ = {:.2})",
            section.level.label(),
            section.level.preroute_count(),
            section.mean_edge_weight
        );
        let mut t = TextTable::new(
            title,
            &[
                "Algorithm",
                "5-pin Wire%",
                "5-pin MaxPath%",
                "8-pin Wire%",
                "8-pin MaxPath%",
            ],
        );
        for row in &section.rows {
            t.push_row(vec![
                row.algorithm.to_string(),
                pct(row.wire_pct[0]),
                pct(row.path_pct[0]),
                pct(row.wire_pct[1]),
                pct(row.path_pct[1]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature Table 1 (3 nets per cell) checking the structural
    /// invariants the paper reports; the full run is the bench target.
    #[test]
    fn miniature_run_has_paper_invariants() {
        let sections = run(&Table1Config { nets: 3, seed: 7 }).unwrap();
        assert_eq!(sections.len(), 3);
        for section in &sections {
            assert_eq!(section.rows.len(), 8);
            let by_name = |n: &str| {
                section
                    .rows
                    .iter()
                    .find(|r| r.algorithm == n)
                    .unwrap()
                    .clone()
            };
            // KMB is its own reference.
            for v in &by_name("KMB").wire_pct {
                assert!(v.abs() < 1e-9);
            }
            // Arborescence algorithms achieve optimal max pathlength.
            for algo in ["DJKA", "DOM", "PFA", "IDOM"] {
                for v in &by_name(algo).path_pct {
                    assert!(v.abs() < 1e-9, "{algo} path% = {v}");
                }
            }
            // Iterated constructions never lose to their bases.
            for si in 0..NET_SIZES.len() {
                assert!(by_name("IKMB").wire_pct[si] <= by_name("KMB").wire_pct[si] + 1e-9);
                assert!(by_name("IZEL").wire_pct[si] <= by_name("ZEL").wire_pct[si] + 1e-9);
                assert!(by_name("IDOM").wire_pct[si] <= by_name("DOM").wire_pct[si] + 1e-9);
            }
        }
        let rendered = render(&sections);
        assert!(rendered.contains("No Congestion"));
        assert!(rendered.contains("IDOM"));
    }
}
