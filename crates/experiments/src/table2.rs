//! **Table 2** — minimum channel width on Xilinx 3000-series parts
//! (`F_s = 6`, `F_c = ⌈0.6W⌉`): the CGE router versus our router (IKMB).
//!
//! CGE is closed-source; the two-pin-decomposition baseline stands in for
//! it (see `DESIGN.md`). The paper's published widths are printed alongside
//! for shape comparison: CGE needed on average 22% more channel width than
//! the paper's router.

use fpga_device::synth::xc3000_profiles;
use fpga_device::{ArchSpec, FpgaError, RouteAlgorithm};

use crate::table::TextTable;
use crate::widths::{
    run_width_table, totals_and_ratios, CircuitWidths, Contender, WidthExperimentConfig,
};

/// Published Table 2 widths `(circuit, CGE, our router)`, in profile order.
pub const PUBLISHED: [(&str, usize, usize); 5] = [
    ("busc", 10, 7),
    ("dma", 10, 9),
    ("bnre", 12, 9),
    ("dfsm", 10, 9),
    ("z03", 13, 11),
];

/// Runs the Table 2 experiment.
///
/// # Errors
///
/// Propagates routing errors.
pub fn run(config: &WidthExperimentConfig) -> Result<Vec<CircuitWidths>, FpgaError> {
    run_width_table(
        &xc3000_profiles(),
        ArchSpec::xilinx3000,
        &[
            Contender::Baseline,
            Contender::Steiner(RouteAlgorithm::Ikmb),
        ],
        config,
    )
}

/// Renders the result next to the published numbers.
#[must_use]
pub fn render(rows: &[CircuitWidths]) -> String {
    let mut t = TextTable::new(
        "Table 2: Minimum channel width, Xilinx 3000-series (Fs=6, Fc=ceil(0.6W))",
        &[
            "Circuit",
            "FPGA",
            "#nets",
            "2PIN (CGE stand-in)",
            "IKMB (ours)",
            "paper CGE",
            "paper ours",
        ],
    );
    for (row, published) in rows.iter().zip(PUBLISHED.iter()) {
        t.push_row(vec![
            row.profile.name.to_string(),
            format!("{}x{}", row.profile.rows, row.profile.cols),
            row.profile.net_count().to_string(),
            row.widths[0].1.to_string(),
            row.widths[1].1.to_string(),
            published.1.to_string(),
            published.2.to_string(),
        ]);
    }
    let (totals, ratios) = totals_and_ratios(rows);
    let paper_totals: (usize, usize) = PUBLISHED
        .iter()
        .fold((0, 0), |acc, p| (acc.0 + p.1, acc.1 + p.2));
    t.push_separator();
    t.push_row(vec![
        "Totals".into(),
        String::new(),
        String::new(),
        totals[0].to_string(),
        totals[1].to_string(),
        paper_totals.0.to_string(),
        paper_totals.1.to_string(),
    ]);
    t.push_row(vec![
        "Ratios".into(),
        String::new(),
        String::new(),
        format!("{:.2}", ratios[0]),
        format!("{:.2}", ratios[1]),
        format!("{:.2}", paper_totals.0 as f64 / paper_totals.1 as f64),
        "1.00".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_totals_match_the_paper() {
        let cge: usize = PUBLISHED.iter().map(|p| p.1).sum();
        let ours: usize = PUBLISHED.iter().map(|p| p.2).sum();
        assert_eq!(cge, 55);
        assert_eq!(ours, 45);
        // Paper: "CGE requires 22% more channel width than our router."
        assert!((cge as f64 / ours as f64 - 1.22).abs() < 0.005);
    }
}
