//! Metrics registry: latency histograms and gauges beside the counters.
//!
//! Counters answer "how many"; the histograms here answer "how long" —
//! each [`Metric`] is a log2-bucketed nanosecond distribution with
//! enough resolution for p50/p95/p99/max — and [`Gauge`]s answer "how
//! big was it at its peak". Like [`Counter`](crate::Counter)s, workers
//! record into thread-local [`HistogramSet`]/[`GaugeSet`] buffers that
//! merge when a scope joins, so the parallel engines observe without
//! contention; both merge operations are commutative and associative,
//! so the merged result is independent of worker join order (see
//! DESIGN.md §5f for why that keeps traces deterministic).
//!
//! The module also defines the two rare-event record types the
//! observability suite streams straight to the shared collector:
//! [`ConvergenceRecord`] (one per PathFinder iteration) and
//! [`TimelineRecord`] (one per scheduler worker per pass).

/// A latency distribution tracked by the registry. Every variant's
/// emitted name is in the README metric glossary; `trace-check` rejects
/// histogram records naming anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Wall-clock of one whole-net route attempt (speculative or not).
    NetRouteNs,
    /// Wall-clock of one Dijkstra single-source run.
    DijkstraRunNs,
    /// Wall-clock of committing one routed net into the pass state.
    CommitApplyNs,
    /// Wall-clock of one full PathFinder route-all/reprice iteration.
    PfIterationNs,
    /// Wall-clock of one shortest-path kernel query (guided or plain,
    /// including scratch-arena `minpath` queries).
    KernelQueryNs,
}

impl Metric {
    /// Every variant, in declaration (= discriminant) order.
    pub const ALL: [Metric; 5] = [
        Metric::NetRouteNs,
        Metric::DijkstraRunNs,
        Metric::CommitApplyNs,
        Metric::PfIterationNs,
        Metric::KernelQueryNs,
    ];

    /// Stable snake_case name used in JSONL records and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::NetRouteNs => "net_route_ns",
            Metric::DijkstraRunNs => "dijkstra_run_ns",
            Metric::CommitApplyNs => "commit_apply_ns",
            Metric::PfIterationNs => "pf_iteration_ns",
            Metric::KernelQueryNs => "kernel_query_ns",
        }
    }
}

/// A point-in-time measurement merged across workers by maximum — the
/// only merge that is both order-independent and meaningful for the
/// "peak value" questions gauges exist to answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Peak over-capacity node count across PathFinder iterations.
    PeakOvercapacityNodes,
    /// Worker threads participating in the routing engine.
    SchedWorkers,
    /// Minimum routable channel width found by the width search.
    MinChannelWidth,
}

impl Gauge {
    /// Every variant, in declaration (= discriminant) order.
    pub const ALL: [Gauge; 3] = [
        Gauge::PeakOvercapacityNodes,
        Gauge::SchedWorkers,
        Gauge::MinChannelWidth,
    ];

    /// Stable snake_case name used in JSONL records and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::PeakOvercapacityNodes => "peak_overcapacity_nodes",
            Gauge::SchedWorkers => "sched_workers",
            Gauge::MinChannelWidth => "min_channel_width",
        }
    }
}

/// Number of log2 buckets — one per bit of a `u64`, so any nanosecond
/// value (including `u64::MAX`) lands in a bucket without clamping
/// logic at the call site.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed distribution of `u64` samples (nanoseconds, for the
/// latency metrics). Bucket `i` counts samples `v` with
/// `bucket_index(v) == i`, i.e. `v == 0` → bucket 0 and otherwise
/// `i == 64 - v.leading_zeros()` (so bucket `i ≥ 1` spans
/// `[2^(i-1), 2^i)`). Quantiles are estimated from the bucket
/// boundaries, which for a log2 layout means at most 2× relative error
/// — plenty for "where did the time go" questions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The bucket a sample falls into: 0 for 0, else the value's bit width
/// (`64 - leading_zeros`), capped to the last slot so `u64::MAX` and
/// `2^63` share bucket 63.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of `bucket` (the largest sample it can hold).
#[must_use]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] = self.buckets[bucket_index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Commutative and associative (slot-wise
    /// saturating adds plus a max), so worker join order cannot change
    /// the merged result.
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, v) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot = slot.saturating_add(*v);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated quantile `q` in [0, 1]: the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest sample, clamped to the observed
    /// max. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank ∈ [1, count]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

/// One histogram slot per [`Metric`], merged across workers like
/// [`CounterSet`](crate::CounterSet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSet {
    slots: Vec<Histogram>,
}

impl HistogramSet {
    /// A set with every metric's histogram empty. Allocation is lazy —
    /// the common disabled path never touches the heap.
    #[must_use]
    pub fn new() -> Self {
        HistogramSet::default()
    }

    fn ensure(&mut self) {
        if self.slots.is_empty() {
            self.slots = vec![Histogram::new(); Metric::ALL.len()];
        }
    }

    /// Records one sample for `metric`.
    pub fn record(&mut self, metric: Metric, value: u64) {
        self.ensure();
        self.slots[metric as usize].record(value);
    }

    /// The histogram for `metric` (empty if nothing was recorded).
    #[must_use]
    pub fn get(&self, metric: Metric) -> Histogram {
        self.slots
            .get(metric as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Folds `other` into `self`; order-independent (see [`Histogram::merge`]).
    pub fn merge(&mut self, other: &HistogramSet) {
        if other.slots.is_empty() {
            return;
        }
        self.ensure();
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            mine.merge(theirs);
        }
    }

    /// True when no metric has any samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Histogram::is_empty)
    }

    /// `(metric, histogram)` pairs with at least one sample, in
    /// declaration order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Metric, &Histogram)> + '_ {
        Metric::ALL
            .iter()
            .filter_map(move |&m| self.slots.get(m as usize).map(|h| (m, h)))
            .filter(|(_, h)| !h.is_empty())
    }
}

/// One `u64` slot per [`Gauge`]. `set` keeps the maximum of all values
/// offered, and `merge` is a slot-wise max, so the merged result is the
/// same no matter which worker observed the peak or when it joined.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaugeSet {
    slots: [Option<u64>; Gauge::ALL.len()],
}

impl GaugeSet {
    /// A set with every gauge unset.
    #[must_use]
    pub fn new() -> Self {
        GaugeSet::default()
    }

    /// Offers `value` for `gauge`; the slot keeps the maximum seen.
    pub fn set(&mut self, gauge: Gauge, value: u64) {
        let slot = &mut self.slots[gauge as usize];
        *slot = Some(slot.map_or(value, |prev| prev.max(value)));
    }

    /// The gauge's value, if it was ever set.
    #[must_use]
    pub fn get(&self, gauge: Gauge) -> Option<u64> {
        self.slots[gauge as usize]
    }

    /// Folds `other` into `self` (slot-wise max; order-independent).
    pub fn merge(&mut self, other: &GaugeSet) {
        for (mine, &theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            if let Some(v) = theirs {
                *mine = Some(mine.map_or(v, |prev| prev.max(v)));
            }
        }
    }

    /// True when no gauge was ever set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// `(gauge, value)` pairs for every set gauge, in declaration order.
    pub fn iter_set(&self) -> impl Iterator<Item = (Gauge, u64)> + '_ {
        Gauge::ALL
            .iter()
            .filter_map(move |&g| self.slots[g as usize].map(|v| (g, v)))
    }
}

/// One PathFinder iteration's convergence state — the trajectory the
/// negotiated-congestion literature tunes against (present-factor ramp
/// vs. over-capacity decay vs. churn).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConvergenceRecord {
    /// 1-based PathFinder iteration.
    pub iteration: usize,
    /// Nodes over capacity at the end of the iteration.
    pub overcapacity: usize,
    /// Total accumulated history cost across all nodes, in milli units.
    pub history_milli: u64,
    /// Nets whose route tree changed relative to the previous iteration.
    pub nets_rerouted: usize,
    /// Present-factor ramp value used by this iteration, in milli units.
    pub present_milli: u64,
    /// Nets the iteration actually routed: the dirty set in selective
    /// mode, every net in full-reroute mode.
    pub dirty_nets: usize,
}

/// One scheduler participant's occupancy for one pass: how much of its
/// wall-clock went to useful work vs. steal/stall churn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineRecord {
    /// 1-based pass (or PathFinder iteration) this timeline belongs to.
    pub pass: usize,
    /// Worker index within the pass (committer uses its own role).
    pub worker: usize,
    /// `"worker"` or `"committer"`.
    pub role: &'static str,
    /// Nanoseconds spent doing useful work (routing or committing).
    pub busy_ns: u64,
    /// Nets routed (workers) or committed (committer) by this participant.
    pub nets: usize,
    /// Ready nets this worker took from another worker's deque.
    pub steals: usize,
    /// Times this worker found no ready net and parked.
    pub stalls: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_and_gauge_names_are_unique_and_cover_all() {
        let metric_names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        let mut dedup = metric_names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Metric::ALL.len());
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "dense discriminants");
        }
        let gauge_names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        let mut dedup = gauge_names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Gauge::ALL.len());
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "dense discriminants");
        }
    }

    #[test]
    fn bucket_boundaries_split_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index((1u64 << 63) - 1), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_and_estimates_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 221);
        // p50 → 3rd smallest (3), bucket 2 upper bound = 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 → 5th smallest (1000), bucket 10 upper bound 1023 clamps
        // to the observed max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(0.0), 1, "q=0 still ranks the smallest sample");
    }

    #[test]
    fn histogram_saturates_at_extremes() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.iter_nonzero().collect::<Vec<_>>(), vec![(63, 2)]);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 50, 500] {
            a.record(v);
        }
        for v in [7u64, 70, u64::MAX] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.max(), u64::MAX);
    }

    #[test]
    fn histogram_set_merges_like_counters() {
        let mut a = HistogramSet::new();
        let mut b = HistogramSet::new();
        assert!(a.is_empty());
        a.record(Metric::NetRouteNs, 10);
        b.record(Metric::NetRouteNs, 20);
        b.record(Metric::DijkstraRunNs, 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Metric::NetRouteNs).count(), 2);
        assert_eq!(ab.get(Metric::DijkstraRunNs).count(), 1);
        assert_eq!(ab.get(Metric::CommitApplyNs).count(), 0);
        assert_eq!(ab.iter_nonzero().count(), 2);
    }

    #[test]
    fn gauge_set_keeps_the_peak_across_merges() {
        let mut a = GaugeSet::new();
        let mut b = GaugeSet::new();
        assert!(a.is_empty());
        assert_eq!(a.get(Gauge::SchedWorkers), None);
        a.set(Gauge::PeakOvercapacityNodes, 40);
        a.set(Gauge::PeakOvercapacityNodes, 12); // lower: slot keeps 40
        b.set(Gauge::PeakOvercapacityNodes, 55);
        b.set(Gauge::SchedWorkers, 4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Gauge::PeakOvercapacityNodes), Some(55));
        assert_eq!(ab.get(Gauge::SchedWorkers), Some(4));
        assert_eq!(ab.iter_set().count(), 2);
    }
}
