//! Zero-dependency routing telemetry.
//!
//! The routing pipeline is a hierarchy — a minimum-channel-width search
//! probes widths, each attempt runs passes, each pass routes nets, each
//! net runs a Steiner heuristic — and questions about its behaviour
//! ("why did width 9 fail?", "where do the relaxations go?") need
//! visibility at every level. This crate provides that visibility with
//! three primitives:
//!
//! * **Spans** ([`span`]): timed, nested intervals mirroring the
//!   hierarchy (`width_search > attempt > pass > net > phase`), safe to
//!   record from the parallel engine's worker threads.
//! * **Counters** ([`count`], [`Counter`]): dense tallies of algorithm
//!   events — Dijkstra relaxations, Steiner candidate evaluations,
//!   conflict-detector accepts — merged across threads.
//! * **Congestion snapshots** ([`record_snapshot`]): per-pass channel
//!   occupancy histograms.
//!
//! The observability suite layers four more on the same machinery:
//! latency **histograms** ([`record_duration`], [`Metric`]) and
//! **gauges** ([`set_gauge`], [`Gauge`]) merged per-worker exactly like
//! counters, per-iteration PathFinder **convergence records**
//! ([`record_convergence`]), per-worker scheduler **timelines**
//! ([`record_timeline`]), and a post-hoc **self-profiler**
//! ([`ProfileEntry`]) attributing wall-clock to the span hierarchy.
//! [`report`] renders all of it as text tables and diffs benchmark
//! result files.
//!
//! # Cost model
//!
//! With no collector installed every entry point is one relaxed atomic
//! load; instrumented hot loops keep local tallies and flush once, so
//! routing with tracing disabled measures within noise of untraced code.
//! With a collector installed, events buffer in thread-local storage
//! ([`flush_thread`] / thread exit merges them), so worker threads never
//! contend on a shared lock per event.
//!
//! # Usage
//!
//! ```
//! use route_trace::{Collector, Counter, JsonlSink, SpanKind, TraceSink};
//!
//! let collector = Collector::install();
//! {
//!     let _pass = route_trace::span(SpanKind::Pass, "pass", 1);
//!     route_trace::count(Counter::NetsRouted, 1);
//! }
//! let trace = collector.finish();
//! let mut jsonl = Vec::new();
//! JsonlSink.emit(&trace, &mut jsonl).unwrap();
//! assert!(std::str::from_utf8(&jsonl).unwrap().lines().count() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod collector;
mod congestion;
mod counter;
pub mod json;
mod metrics;
mod profile;
pub mod report;
mod sink;
mod span;

pub use collector::{
    adopt_parent, count, current_span, enabled, flush_thread, record_convergence, record_duration,
    record_snapshot, record_timeline, set_gauge, span, Collector, SpanGuard,
};
pub use congestion::CongestionSnapshot;
pub use counter::{Counter, CounterSet};
pub use metrics::{
    bucket_index, bucket_upper_bound, ConvergenceRecord, Gauge, GaugeSet, Histogram, HistogramSet,
    Metric, TimelineRecord, HISTOGRAM_BUCKETS,
};
pub use profile::{compute as compute_profile, ProfileEntry};
pub use sink::{JsonSink, JsonlSink, StreamingJsonlSink, Trace, TraceSink};
pub use span::{SpanId, SpanKind, SpanRecord};
