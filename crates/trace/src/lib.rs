//! Zero-dependency routing telemetry.
//!
//! The routing pipeline is a hierarchy — a minimum-channel-width search
//! probes widths, each attempt runs passes, each pass routes nets, each
//! net runs a Steiner heuristic — and questions about its behaviour
//! ("why did width 9 fail?", "where do the relaxations go?") need
//! visibility at every level. This crate provides that visibility with
//! three primitives:
//!
//! * **Spans** ([`span`]): timed, nested intervals mirroring the
//!   hierarchy (`width_search > attempt > pass > net > phase`), safe to
//!   record from the parallel engine's worker threads.
//! * **Counters** ([`count`], [`Counter`]): dense tallies of algorithm
//!   events — Dijkstra relaxations, Steiner candidate evaluations,
//!   conflict-detector accepts — merged across threads.
//! * **Congestion snapshots** ([`record_snapshot`]): per-pass channel
//!   occupancy histograms.
//!
//! # Cost model
//!
//! With no collector installed every entry point is one relaxed atomic
//! load; instrumented hot loops keep local tallies and flush once, so
//! routing with tracing disabled measures within noise of untraced code.
//! With a collector installed, events buffer in thread-local storage
//! ([`flush_thread`] / thread exit merges them), so worker threads never
//! contend on a shared lock per event.
//!
//! # Usage
//!
//! ```
//! use route_trace::{Collector, Counter, JsonlSink, SpanKind, TraceSink};
//!
//! let collector = Collector::install();
//! {
//!     let _pass = route_trace::span(SpanKind::Pass, "pass", 1);
//!     route_trace::count(Counter::NetsRouted, 1);
//! }
//! let trace = collector.finish();
//! let mut jsonl = Vec::new();
//! JsonlSink.emit(&trace, &mut jsonl).unwrap();
//! assert!(std::str::from_utf8(&jsonl).unwrap().lines().count() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod collector;
mod congestion;
mod counter;
pub mod json;
mod sink;
mod span;

pub use collector::{
    adopt_parent, count, current_span, enabled, flush_thread, record_snapshot, span, Collector,
    SpanGuard,
};
pub use congestion::CongestionSnapshot;
pub use counter::{Counter, CounterSet};
pub use sink::{JsonSink, JsonlSink, StreamingJsonlSink, Trace, TraceSink};
pub use span::{SpanId, SpanKind, SpanRecord};
