//! Hierarchical spans: named, timed intervals forming a tree.
//!
//! The routing pipeline nests naturally —
//! `width_search > attempt > pass > net > heuristic phase` — and spans
//! record that nesting explicitly: every span carries its parent's id, so
//! a flat JSONL stream reconstructs the full tree even when nets were
//! routed on worker threads. Timing is monotonic (`Instant`-based),
//! reported as nanoseconds since the collector's epoch.

/// The level of the routing hierarchy a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A whole minimum-channel-width search.
    WidthSearch,
    /// One routing attempt at a probed channel width.
    Attempt,
    /// One routing pass over the net order.
    Pass,
    /// One net's routing (speculative or sequential).
    Net,
    /// One heuristic construction phase within a net.
    Phase,
    /// The wavefront committer handling one net in order: the commit-lag
    /// window from "net is next to commit" to "commit applied", covering
    /// any wait for its speculation and any re-speculation rounds.
    Commit,
}

impl SpanKind {
    /// Stable snake_case name used in emitted JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::WidthSearch => "width_search",
            SpanKind::Attempt => "attempt",
            SpanKind::Pass => "pass",
            SpanKind::Net => "net",
            SpanKind::Phase => "phase",
            SpanKind::Commit => "commit",
        }
    }
}

/// Identifier of a recorded span; unique within one collector session.
///
/// Ids start at 1; `SpanId(0)` is never issued, so a parent id of 0 in
/// emitted JSON means "root".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A completed span, as stored by the collector and emitted by sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id (unique within the collector session).
    pub id: SpanId,
    /// The enclosing span, or `None` for roots.
    pub parent: Option<SpanId>,
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Human-readable label (e.g. the heuristic name for phases).
    pub label: &'static str,
    /// Free numeric payload: pass number for passes, net index for nets,
    /// probed channel width for attempts; 0 when unused.
    pub index: u64,
    /// Start, in nanoseconds since the collector epoch (monotonic).
    pub start_ns: u64,
    /// End, in nanoseconds since the collector epoch (monotonic).
    pub end_ns: u64,
    /// Collector-assigned id of the thread that recorded the span.
    pub thread: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SpanKind::WidthSearch.name(), "width_search");
        assert_eq!(SpanKind::Phase.name(), "phase");
    }

    #[test]
    fn duration_saturates() {
        let r = SpanRecord {
            id: SpanId(1),
            parent: None,
            kind: SpanKind::Pass,
            label: "pass",
            index: 1,
            start_ns: 10,
            end_ns: 4,
            thread: 0,
        };
        assert_eq!(r.duration_ns(), 0);
    }
}
