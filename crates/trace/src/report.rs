//! Text rendering of trace JSONL and `BENCH_*.json` perf diffs.
//!
//! Two consumers live here, both built on [`JsonValue`]:
//!
//! * [`render_report`] aggregates a trace JSONL file — the one
//!   `--trace` writes and [`JsonlSink`](crate::JsonlSink) emits — into
//!   the human-readable tables behind the CLI's `trace-report`
//!   subcommand: wall-clock profile by span kind, latency histograms
//!   with p50/p95/p99/max, the PathFinder convergence trajectory,
//!   per-worker scheduler timelines, counters, and gauges.
//! * [`bench_diff`] compares two benchmark result files
//!   (`BENCH_pathfinder.json` et al.) circuit by circuit and flags any
//!   timing field that regressed past a configurable threshold — the
//!   CI perf gate behind the `bench-diff` subcommand.

use std::fmt::Write as _;

use crate::json::JsonValue;

/// Renders a trace JSONL document as human-readable text tables.
///
/// Unknown record types are ignored (the validator, not the reporter,
/// polices the record surface), so reports stay renderable across
/// trace-format additions.
///
/// # Errors
///
/// Returns a message naming the first malformed line (1-based).
pub fn render_report(jsonl: &str) -> Result<String, String> {
    let mut profile: Vec<JsonValue> = Vec::new();
    let mut histograms: Vec<JsonValue> = Vec::new();
    let mut gauges: Vec<JsonValue> = Vec::new();
    let mut convergence: Vec<JsonValue> = Vec::new();
    let mut timelines: Vec<JsonValue> = Vec::new();
    let mut counters: Vec<JsonValue> = Vec::new();
    let mut spans = 0u64;
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = JsonValue::parse(line)
            .map_err(|e| format!("line {}: malformed JSON: {e}", idx + 1))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("profile") => profile.push(doc),
            Some("histogram") => histograms.push(doc),
            Some("gauge") => gauges.push(doc),
            Some("convergence") => convergence.push(doc),
            Some("timeline") => timelines.push(doc),
            Some("counter") => counters.push(doc),
            Some("span") => spans += 1,
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "trace report ({spans} spans)");
    if !profile.is_empty() {
        let _ = writeln!(out, "\nwall-clock profile (by span kind)");
        let _ = writeln!(
            out,
            "  {:<14} {:>8} {:>14} {:>14}",
            "kind", "count", "inclusive_ms", "exclusive_ms"
        );
        for p in &profile {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>14} {:>14}",
                get_str(p, "kind"),
                get_u64(p, "count"),
                ms(get_u64(p, "inclusive_ns")),
                ms(get_u64(p, "exclusive_ns")),
            );
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(out, "\nlatency histograms (ns)");
        let _ = writeln!(
            out,
            "  {:<18} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "metric", "count", "p50", "p95", "p99", "max"
        );
        for h in &histograms {
            let _ = writeln!(
                out,
                "  {:<18} {:>10} {:>12} {:>12} {:>12} {:>12}",
                get_str(h, "name"),
                get_u64(h, "count"),
                get_u64(h, "p50"),
                get_u64(h, "p95"),
                get_u64(h, "p99"),
                get_u64(h, "max"),
            );
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "\ngauges");
        for g in &gauges {
            let _ = writeln!(out, "  {:<26} {}", get_str(g, "name"), get_u64(g, "value"));
        }
    }
    if !convergence.is_empty() {
        let _ = writeln!(out, "\npathfinder convergence");
        let _ = writeln!(
            out,
            "  {:>9} {:>12} {:>7} {:>13} {:>13} {:>13}",
            "iteration", "overcap", "dirty", "rerouted", "history_milli", "present_milli"
        );
        for c in &convergence {
            let _ = writeln!(
                out,
                "  {:>9} {:>12} {:>7} {:>13} {:>13} {:>13}",
                get_u64(c, "iteration"),
                get_u64(c, "overcapacity"),
                get_u64(c, "dirty_nets"),
                get_u64(c, "nets_rerouted"),
                get_u64(c, "history_milli"),
                get_u64(c, "present_milli"),
            );
        }
    }
    if !timelines.is_empty() {
        let _ = writeln!(out, "\nscheduler timelines");
        let _ = writeln!(
            out,
            "  {:>5} {:<10} {:>6} {:>12} {:>6} {:>7} {:>7}",
            "pass", "role", "worker", "busy_ms", "nets", "steals", "stalls"
        );
        for t in &timelines {
            let _ = writeln!(
                out,
                "  {:>5} {:<10} {:>6} {:>12} {:>6} {:>7} {:>7}",
                get_u64(t, "pass"),
                get_str(t, "role"),
                get_u64(t, "worker"),
                ms(get_u64(t, "busy_ns")),
                get_u64(t, "nets"),
                get_u64(t, "steals"),
                get_u64(t, "stalls"),
            );
        }
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "\ncounters");
        for c in &counters {
            let _ = writeln!(out, "  {:<34} {}", get_str(c, "name"), get_u64(c, "value"));
        }
    }
    Ok(out)
}

/// One field-level finding from [`bench_diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Circuit name the field belongs to.
    pub circuit: String,
    /// The compared field (e.g. `pathfinder_us`).
    pub field: String,
    /// Value in the "before" file.
    pub before: f64,
    /// Value in the "after" file.
    pub after: f64,
    /// Relative change in percent (positive = slower/larger).
    pub delta_pct: f64,
}

/// Result of diffing two benchmark files.
#[derive(Debug, Clone, Default)]
pub struct BenchDiffReport {
    /// Rendered text table, one row per compared field.
    pub rendered: String,
    /// Deltas whose regression exceeded the threshold.
    pub regressions: Vec<BenchDelta>,
}

/// Timing fields compared by [`bench_diff`]: growth in any of these is
/// a perf regression. Width/pass-count fields are diffed for display
/// but never gate (they are quality metrics with their own tests).
const GATED_SUFFIXES: [&str; 1] = ["_us"];

/// Diffs two `BENCH_*.json` documents circuit by circuit.
///
/// Both documents must carry a `circuits` array whose entries have a
/// string `name`; numeric fields present in both versions of a circuit
/// are compared. A field ending in `_us` whose relative growth exceeds
/// `threshold_pct` becomes a regression. Circuits present on only one
/// side are reported in the rendering but do not gate.
///
/// # Errors
///
/// Returns a message when either document is malformed or has no
/// `circuits` array.
pub fn bench_diff(before: &str, after: &str, threshold_pct: f64) -> Result<BenchDiffReport, String> {
    let before = JsonValue::parse(before).map_err(|e| format!("before file: {e}"))?;
    let after = JsonValue::parse(after).map_err(|e| format!("after file: {e}"))?;
    let before_circuits = circuits_by_name(&before).ok_or("before file: no \"circuits\" array")?;
    let after_circuits = circuits_by_name(&after).ok_or("after file: no \"circuits\" array")?;

    let mut report = BenchDiffReport::default();
    let out = &mut report.rendered;
    let _ = writeln!(
        out,
        "bench diff (regression threshold {threshold_pct}% on {} fields)",
        GATED_SUFFIXES.join("/")
    );
    let _ = writeln!(
        out,
        "  {:<12} {:<26} {:>14} {:>14} {:>9}",
        "circuit", "field", "before", "after", "delta%"
    );
    for (name, before_c) in &before_circuits {
        let Some(after_c) = after_circuits.iter().find(|(n, _)| n == name).map(|(_, c)| c)
        else {
            let _ = writeln!(out, "  {name:<12} (missing from after file)");
            continue;
        };
        let JsonValue::Object(members) = before_c else {
            continue;
        };
        for (field, before_v) in members {
            let (Some(b), Some(a)) = (
                before_v.as_f64(),
                after_c.get(field).and_then(JsonValue::as_f64),
            ) else {
                continue;
            };
            let delta_pct = if b == 0.0 {
                if a == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (a - b) / b * 100.0
            };
            let gated = GATED_SUFFIXES.iter().any(|s| field.ends_with(s));
            let regressed = gated && delta_pct > threshold_pct;
            let _ = writeln!(
                out,
                "  {:<12} {:<26} {:>14} {:>14} {:>+9.2}{}",
                name,
                field,
                b,
                a,
                delta_pct,
                if regressed { "  REGRESSED" } else { "" },
            );
            if regressed {
                report.regressions.push(BenchDelta {
                    circuit: name.clone(),
                    field: field.clone(),
                    before: b,
                    after: a,
                    delta_pct,
                });
            }
        }
    }
    for (name, _) in &after_circuits {
        if !before_circuits.iter().any(|(n, _)| n == name) {
            let _ = writeln!(out, "  {name:<12} (new in after file)");
        }
    }
    if report.regressions.is_empty() {
        let _ = writeln!(out, "no regressions past {threshold_pct}%");
    } else {
        let _ = writeln!(
            out,
            "{} field(s) regressed past {threshold_pct}%",
            report.regressions.len()
        );
    }
    Ok(report)
}

fn circuits_by_name(doc: &JsonValue) -> Option<Vec<(String, &JsonValue)>> {
    let circuits = doc.get("circuits")?.as_array()?;
    Some(
        circuits
            .iter()
            .filter_map(|c| {
                c.get("name")
                    .and_then(JsonValue::as_str)
                    .map(|n| (n.to_string(), c))
            })
            .collect(),
    )
}

fn get_u64(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn get_str<'a>(doc: &'a JsonValue, key: &str) -> &'a str {
    doc.get(key).and_then(JsonValue::as_str).unwrap_or("?")
}

/// Nanoseconds rendered as fractional milliseconds (`12.345`).
fn ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_every_section() {
        let jsonl = concat!(
            "{\"type\":\"meta\",\"format\":\"route-trace\",\"version\":1}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"kind\":\"pass\",\"label\":\"pass\",\"index\":1,\"start_ns\":0,\"end_ns\":5000000,\"thread\":0}\n",
            "{\"type\":\"counter\",\"name\":\"nets_routed\",\"value\":9}\n",
            "{\"type\":\"histogram\",\"name\":\"net_route_ns\",\"count\":9,\"sum\":900,\"mean\":100,\"p50\":90,\"p95\":200,\"p99\":240,\"max\":250,\"buckets\":[[7,9]]}\n",
            "{\"type\":\"gauge\",\"name\":\"sched_workers\",\"value\":4}\n",
            "{\"type\":\"profile\",\"kind\":\"pass\",\"count\":1,\"inclusive_ns\":5000000,\"exclusive_ns\":1000000}\n",
            "{\"type\":\"convergence\",\"iteration\":1,\"overcapacity\":14,\"history_milli\":70,\"nets_rerouted\":9,\"present_milli\":250,\"dirty_nets\":9}\n",
            "{\"type\":\"convergence\",\"iteration\":2,\"overcapacity\":3,\"history_milli\":140,\"nets_rerouted\":5,\"present_milli\":500,\"dirty_nets\":6}\n",
            "{\"type\":\"timeline\",\"pass\":1,\"worker\":0,\"role\":\"worker\",\"busy_ns\":4000000,\"nets\":5,\"steals\":1,\"stalls\":2}\n",
        );
        let report = render_report(jsonl).unwrap();
        assert!(report.contains("trace report (1 spans)"));
        assert!(report.contains("wall-clock profile"));
        assert!(report.contains("pass"));
        assert!(report.contains("latency histograms"));
        assert!(report.contains("net_route_ns"));
        assert!(report.contains("gauges"));
        assert!(report.contains("sched_workers"));
        assert!(report.contains("pathfinder convergence"));
        assert!(report.contains("scheduler timelines"));
        assert!(report.contains("counters"));
        assert!(report.contains("nets_routed"));
    }

    #[test]
    fn report_rejects_malformed_lines_by_number() {
        let err = render_report("{\"type\":\"meta\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn report_of_empty_input_is_just_the_header() {
        let report = render_report("").unwrap();
        assert!(report.contains("trace report (0 spans)"));
        assert!(!report.contains("histograms"));
    }

    fn bench_doc(us: u64) -> String {
        format!(
            "{{\"benchmark\":\"b\",\"circuits\":[{{\"name\":\"term1\",\"pathfinder_us\":{us},\"pathfinder_width\":7}}]}}"
        )
    }

    #[test]
    fn bench_diff_passes_identical_inputs() {
        let doc = bench_doc(1000);
        let report = bench_diff(&doc, &doc, 5.0).unwrap();
        assert!(report.regressions.is_empty());
        assert!(report.rendered.contains("no regressions"));
        assert!(report.rendered.contains("term1"));
    }

    #[test]
    fn bench_diff_flags_regressions_past_threshold() {
        let report = bench_diff(&bench_doc(1000), &bench_doc(1100), 5.0).unwrap();
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.circuit, "term1");
        assert_eq!(r.field, "pathfinder_us");
        assert!((r.delta_pct - 10.0).abs() < 1e-9);
        assert!(report.rendered.contains("REGRESSED"));
    }

    #[test]
    fn bench_diff_tolerates_regressions_within_threshold_and_improvements() {
        let report = bench_diff(&bench_doc(1000), &bench_doc(1040), 5.0).unwrap();
        assert!(report.regressions.is_empty(), "4% < 5% threshold");
        let report = bench_diff(&bench_doc(1000), &bench_doc(500), 5.0).unwrap();
        assert!(report.regressions.is_empty(), "improvements never gate");
    }

    #[test]
    fn bench_diff_only_gates_timing_fields() {
        // pathfinder_width doubles — displayed, but widths do not gate.
        let before = "{\"circuits\":[{\"name\":\"c\",\"pathfinder_width\":7,\"pathfinder_us\":100}]}";
        let after = "{\"circuits\":[{\"name\":\"c\",\"pathfinder_width\":14,\"pathfinder_us\":100}]}";
        let report = bench_diff(before, after, 5.0).unwrap();
        assert!(report.regressions.is_empty());
        assert!(report.rendered.contains("pathfinder_width"));
    }

    #[test]
    fn bench_diff_reports_missing_and_new_circuits() {
        let before = "{\"circuits\":[{\"name\":\"gone\",\"x_us\":1}]}";
        let after = "{\"circuits\":[{\"name\":\"fresh\",\"x_us\":1}]}";
        let report = bench_diff(before, after, 5.0).unwrap();
        assert!(report.regressions.is_empty());
        assert!(report.rendered.contains("missing from after"));
        assert!(report.rendered.contains("new in after"));
        assert!(bench_diff("{}", after, 5.0).is_err());
    }
}
