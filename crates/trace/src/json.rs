//! Minimal JSON support: an escaping writer and two parsers.
//!
//! The crate is zero-dependency by design, so everything is hand-rolled.
//! The writer emits exactly the subset the sinks need (objects, arrays,
//! strings, unsigned integers). [`validate`] checks well-formedness
//! without building anything — the `trace-check` fast path — and
//! [`JsonValue::parse`] builds a document tree for the consumers that
//! need values: `trace-report` aggregation, `bench-diff`, and the
//! semantic record checks.

use std::fmt::Write as _;

/// Appends a JSON string literal (quotes included) with escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for one JSON object, emitted as a single line (no spaces).
pub struct ObjectWriter {
    out: String,
    first: bool,
}

impl ObjectWriter {
    /// Starts an object: `{`.
    #[must_use]
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(&mut self.out, key);
        self.out.push(':');
    }

    /// Adds `"key":"value"` with escaping.
    pub fn str(&mut self, key: &str, value: &str) -> &mut ObjectWriter {
        self.key(key);
        write_str(&mut self.out, value);
        self
    }

    /// Adds `"key":value` for an unsigned integer.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut ObjectWriter {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Adds `"key":[v0,v1,...]` for a slice of unsigned integers.
    pub fn u64_array(&mut self, key: &str, values: impl IntoIterator<Item = u64>) -> &mut ObjectWriter {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Adds `"key":<raw>` where `raw` is already-valid JSON.
    pub fn raw(&mut self, key: &str, raw: &str) -> &mut ObjectWriter {
        self.key(key);
        self.out.push_str(raw);
        self
    }

    /// Closes the object and returns the line.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for ObjectWriter {
    fn default() -> ObjectWriter {
        ObjectWriter::new()
    }
}

/// Checks that `input` is exactly one well-formed JSON value.
///
/// Validates structure only (no document is built): object/array nesting,
/// string escapes, number syntax, literals, and that nothing trails the
/// value. Errors carry a byte offset and a short description.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(pos, "trailing characters after value"));
    }
    Ok(())
}

/// A well-formedness violation found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the violation within the input.
    pub offset: usize,
    /// Short description of what was expected or found.
    pub message: &'static str,
}

impl JsonError {
    fn new(offset: usize, message: &'static str) -> JsonError {
        JsonError { offset, message }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError::new(*pos, "unexpected character")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::new(*pos, "expected object key string"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::new(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(JsonError::new(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(JsonError::new(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume opening '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(JsonError::new(
                                        *pos,
                                        "invalid \\u escape (need 4 hex digits)",
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(JsonError::new(*pos, "invalid escape sequence")),
                }
            }
            0x00..=0x1f => {
                return Err(JsonError::new(*pos, "unescaped control character in string"))
            }
            _ => *pos += 1,
        }
    }
    Err(JsonError::new(*pos, "unterminated string"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), JsonError> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::new(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(JsonError::new(*pos, "expected digit in number")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError::new(*pos, "expected digit after decimal point"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError::new(*pos, "expected digit in exponent"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

/// A parsed JSON document, for consumers that need values rather than
/// just well-formedness (reports, bench diffs, semantic checks).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers beyond 2^53 lose precision — the trace
    /// consumers compare durations and counts, where that is acceptable).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array, element order preserved.
    Array(Vec<JsonValue>),
    /// An object, key order preserved (duplicate keys: last one wins on
    /// [`get`](JsonValue::get) lookups going front-to-back — first match).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses exactly one JSON value (trailing input is an error).
    ///
    /// # Errors
    /// Returns the same [`JsonError`]s as [`validate`].
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = build_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(pos, "trailing characters after value"));
        }
        Ok(value)
    }

    /// Object member lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative finite
    /// integer-valued number that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn build_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(JsonError::new(*pos, "expected object key string"));
                }
                let key = build_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::new(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = build_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(JsonError::new(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(build_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(JsonError::new(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::String(build_string(bytes, pos)?)),
        Some(b't') => {
            parse_literal(bytes, pos, b"true")?;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') => {
            parse_literal(bytes, pos, b"false")?;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') => {
            parse_literal(bytes, pos, b"null")?;
            Ok(JsonValue::Null)
        }
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            parse_number(bytes, pos)?;
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| JsonError::new(start, "invalid UTF-8 in number"))?;
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| JsonError::new(start, "number out of range"))
        }
        Some(_) => Err(JsonError::new(*pos, "unexpected character")),
    }
}

/// Parses a string (cursor on the opening quote), resolving escapes.
fn build_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let start = *pos;
    parse_string(bytes, pos)?;
    let raw = std::str::from_utf8(&bytes[start + 1..*pos - 1])
        .map_err(|_| JsonError::new(start, "invalid UTF-8 in string"))?;
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let mut code = 0u32;
                for _ in 0..4 {
                    let h = chars
                        .next()
                        .and_then(|c| c.to_digit(16))
                        .ok_or_else(|| JsonError::new(start, "invalid \\u escape"))?;
                    code = code * 16 + h;
                }
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err(JsonError::new(start, "invalid escape sequence")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_builds_flat_objects() {
        let mut o = ObjectWriter::new();
        o.str("type", "span").u64("id", 3).u64_array("h", [1, 0, 2]);
        let line = o.finish();
        assert_eq!(line, r#"{"type":"span","id":3,"h":[1,0,2]}"#);
        validate(&line).unwrap();
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        validate(&out).unwrap();
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for ok in [
            r#"{}"#,
            r#"[]"#,
            r#"{"a":1,"b":[true,false,null],"c":{"d":"e"}}"#,
            r#"-12.5e+3"#,
            r#""é\n""#,
            " { \"a\" : 1 } ",
        ] {
            assert!(validate(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{'a':1}"#,
            "[1,2",
            r#""unterminated"#,
            "01",
            "1.",
            "{} extra",
            "tru",
            r#""bad \q escape""#,
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn json_value_parses_documents() {
        let v = JsonValue::parse(
            r#"{"a":1,"b":[true,null,-2.5],"c":{"d":"e\nf"},"big":18446744073709551615}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], JsonValue::Bool(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2].as_f64(), Some(-2.5));
        assert_eq!(b[2].as_u64(), None, "negative numbers are not u64");
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(JsonValue::as_str),
            Some("e\nf")
        );
        assert!(v.get("missing").is_none());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse(r#"{"a":}"#).is_err());
    }

    #[test]
    fn json_value_u64_rejects_fractions_and_overflow() {
        let v = JsonValue::parse(r#"{"f":1.5,"neg":-1,"ok":42}"#).unwrap();
        assert_eq!(v.get("f").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("neg").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("ok").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.5));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = validate(r#"{"a" 1}"#).unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(err.to_string().contains("byte 5"));
    }
}
