//! Minimal JSON support: an escaping writer and a validating parser.
//!
//! The crate is zero-dependency by design, so both directions are
//! hand-rolled. The writer emits exactly the subset the sinks need
//! (objects, arrays, strings, unsigned integers). The parser does *not*
//! build a document — it only checks well-formedness — which is all the
//! `trace-check` CLI subcommand and the CI smoke test require.

use std::fmt::Write as _;

/// Appends a JSON string literal (quotes included) with escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for one JSON object, emitted as a single line (no spaces).
pub struct ObjectWriter {
    out: String,
    first: bool,
}

impl ObjectWriter {
    /// Starts an object: `{`.
    #[must_use]
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(&mut self.out, key);
        self.out.push(':');
    }

    /// Adds `"key":"value"` with escaping.
    pub fn str(&mut self, key: &str, value: &str) -> &mut ObjectWriter {
        self.key(key);
        write_str(&mut self.out, value);
        self
    }

    /// Adds `"key":value` for an unsigned integer.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut ObjectWriter {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Adds `"key":[v0,v1,...]` for a slice of unsigned integers.
    pub fn u64_array(&mut self, key: &str, values: impl IntoIterator<Item = u64>) -> &mut ObjectWriter {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Adds `"key":<raw>` where `raw` is already-valid JSON.
    pub fn raw(&mut self, key: &str, raw: &str) -> &mut ObjectWriter {
        self.key(key);
        self.out.push_str(raw);
        self
    }

    /// Closes the object and returns the line.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for ObjectWriter {
    fn default() -> ObjectWriter {
        ObjectWriter::new()
    }
}

/// Checks that `input` is exactly one well-formed JSON value.
///
/// Validates structure only (no document is built): object/array nesting,
/// string escapes, number syntax, literals, and that nothing trails the
/// value. Errors carry a byte offset and a short description.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(pos, "trailing characters after value"));
    }
    Ok(())
}

/// A well-formedness violation found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the violation within the input.
    pub offset: usize,
    /// Short description of what was expected or found.
    pub message: &'static str,
}

impl JsonError {
    fn new(offset: usize, message: &'static str) -> JsonError {
        JsonError { offset, message }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError::new(*pos, "unexpected character")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::new(*pos, "expected object key string"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::new(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(JsonError::new(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(JsonError::new(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume opening '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(JsonError::new(
                                        *pos,
                                        "invalid \\u escape (need 4 hex digits)",
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(JsonError::new(*pos, "invalid escape sequence")),
                }
            }
            0x00..=0x1f => {
                return Err(JsonError::new(*pos, "unescaped control character in string"))
            }
            _ => *pos += 1,
        }
    }
    Err(JsonError::new(*pos, "unterminated string"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), JsonError> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::new(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(JsonError::new(*pos, "expected digit in number")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError::new(*pos, "expected digit after decimal point"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError::new(*pos, "expected digit in exponent"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_builds_flat_objects() {
        let mut o = ObjectWriter::new();
        o.str("type", "span").u64("id", 3).u64_array("h", [1, 0, 2]);
        let line = o.finish();
        assert_eq!(line, r#"{"type":"span","id":3,"h":[1,0,2]}"#);
        validate(&line).unwrap();
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        validate(&out).unwrap();
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for ok in [
            r#"{}"#,
            r#"[]"#,
            r#"{"a":1,"b":[true,false,null],"c":{"d":"e"}}"#,
            r#"-12.5e+3"#,
            r#""é\n""#,
            " { \"a\" : 1 } ",
        ] {
            assert!(validate(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{'a':1}"#,
            "[1,2",
            r#""unterminated"#,
            "01",
            "1.",
            "{} extra",
            "tru",
            r#""bad \q escape""#,
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = validate(r#"{"a" 1}"#).unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(err.to_string().contains("byte 5"));
    }
}
