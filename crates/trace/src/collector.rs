//! The in-memory trace collector and its per-thread buffers.
//!
//! Design constraints, in priority order:
//!
//! 1. **Near-zero cost when disabled.** Every instrumentation entry point
//!    first reads one relaxed atomic ([`enabled`]); with no collector
//!    installed that load is the *entire* cost, so instrumented hot loops
//!    (Dijkstra relaxations) stay at hardware speed.
//! 2. **No contention when enabled.** Spans and counters land in a
//!    per-thread buffer ([`LocalBuf`]); the shared state is touched only
//!    when a buffer flushes — at thread exit for the parallel engine's
//!    scoped workers (i.e. at batch commit, when the scope joins) and at
//!    [`Collector::finish`] for the installing thread. Congestion
//!    snapshots are once-per-pass, so they go straight to the shared side.
//! 3. **Sound under worker churn.** The parallel engine spawns fresh
//!    scoped threads per batch. Buffers attach lazily (first event) and
//!    carry a generation stamp, so a stale buffer from a previous
//!    collector session can never pollute the current one.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::congestion::CongestionSnapshot;
use crate::counter::{Counter, CounterSet};
use crate::metrics::{ConvergenceRecord, Gauge, GaugeSet, HistogramSet, Metric, TimelineRecord};
use crate::profile;
use crate::sink::{StreamingJsonlSink, Trace};
use crate::span::{SpanId, SpanKind, SpanRecord};

/// Fast path gate: `true` while a collector is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped on every install/finish; invalidates stale thread-local buffers.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The currently installed collector's shared state.
fn registry() -> &'static Mutex<Option<Arc<Shared>>> {
    static REGISTRY: OnceLock<Mutex<Option<Arc<Shared>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// State shared by all threads feeding one collector session.
struct Shared {
    epoch: Instant,
    next_span: AtomicU64,
    next_thread: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    snapshots: Mutex<Vec<CongestionSnapshot>>,
    counters: Mutex<CounterSet>,
    metrics: Mutex<HistogramSet>,
    gauges: Mutex<GaugeSet>,
    /// Once-per-iteration PathFinder convergence records; rare, so they
    /// go straight to the shared side like snapshots.
    convergence: Mutex<Vec<ConvergenceRecord>>,
    /// Once-per-worker-per-pass scheduler timelines; same rarity rule.
    timelines: Mutex<Vec<TimelineRecord>>,
    /// `true` when `stream` holds a sink — checked (relaxed) before
    /// taking the stream lock so non-streaming sessions pay one atomic
    /// load per closed span, never a lock.
    streaming: AtomicBool,
    /// Write-through sink for streaming sessions; spans append here as
    /// they close, the tail (counters + snapshots) at `finish`.
    stream: Mutex<Option<StreamingJsonlSink>>,
}

impl Shared {
    fn new(stream: Option<StreamingJsonlSink>) -> Shared {
        Shared {
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            next_thread: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            snapshots: Mutex::new(Vec::new()),
            counters: Mutex::new(CounterSet::new()),
            metrics: Mutex::new(HistogramSet::new()),
            gauges: Mutex::new(GaugeSet::new()),
            convergence: Mutex::new(Vec::new()),
            timelines: Mutex::new(Vec::new()),
            streaming: AtomicBool::new(stream.is_some()),
            stream: Mutex::new(stream),
        }
    }

    /// Streams a just-closed span when this is a streaming session.
    /// Errors are swallowed: this runs inside `Drop` and a torn tail is
    /// precisely what a streamed trace's reader must tolerate anyway.
    fn stream_span(&self, record: &SpanRecord) {
        if !self.streaming.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(mut slot) = self.stream.lock() {
            if let Some(sink) = slot.as_mut() {
                let _ = sink.write_span(record);
            }
        }
    }
}

/// One thread's private buffer; merged into [`Shared`] on flush.
struct LocalBuf {
    generation: u64,
    shared: Option<Arc<Shared>>,
    thread: u64,
    counters: CounterSet,
    metrics: HistogramSet,
    gauges: GaugeSet,
    spans: Vec<SpanRecord>,
    stack: Vec<SpanId>,
    /// Parent adopted from the spawning thread (worker threads): roots
    /// recorded on this thread nest under the adopter's span.
    adopted_parent: Option<SpanId>,
}

impl LocalBuf {
    fn new() -> LocalBuf {
        LocalBuf {
            generation: 0,
            shared: None,
            thread: 0,
            counters: CounterSet::new(),
            metrics: HistogramSet::new(),
            gauges: GaugeSet::new(),
            spans: Vec::new(),
            stack: Vec::new(),
            adopted_parent: None,
        }
    }

    /// Re-attaches to the current collector if the generation moved on,
    /// flushing anything buffered for the previous session first.
    fn ensure_attached(&mut self) -> bool {
        let current = GENERATION.load(Ordering::Acquire);
        if self.generation != current {
            self.flush();
            self.generation = current;
            self.stack.clear();
            self.adopted_parent = None;
            self.shared = registry().lock().expect("trace registry poisoned").clone();
            if let Some(shared) = &self.shared {
                self.thread = shared.next_thread.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.shared.is_some()
    }

    /// Merges buffered spans, counters, metrics, and gauges into the
    /// shared state. Histogram and gauge merges are commutative and
    /// associative, so (as for counters) worker join order cannot change
    /// the merged result.
    fn flush(&mut self) {
        let Some(shared) = &self.shared else {
            self.spans.clear();
            self.counters = CounterSet::new();
            self.metrics = HistogramSet::new();
            self.gauges = GaugeSet::new();
            return;
        };
        if !self.spans.is_empty() {
            shared
                .spans
                .lock()
                .expect("trace span store poisoned")
                .append(&mut self.spans);
        }
        if !self.counters.is_empty() {
            shared
                .counters
                .lock()
                .expect("trace counter store poisoned")
                .merge(&self.counters);
            self.counters = CounterSet::new();
        }
        if !self.metrics.is_empty() {
            shared
                .metrics
                .lock()
                .expect("trace metric store poisoned")
                .merge(&self.metrics);
            self.metrics = HistogramSet::new();
        }
        if !self.gauges.is_empty() {
            shared
                .gauges
                .lock()
                .expect("trace gauge store poisoned")
                .merge(&self.gauges);
            self.gauges = GaugeSet::new();
        }
    }
}

impl Drop for LocalBuf {
    /// Worker threads (the parallel engine's scoped workers) exit when
    /// their batch scope joins — right at commit time — and this drop is
    /// what merges their buffers into the shared collector.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// `true` while a collector is installed.
///
/// This is the instrumentation fast path: one relaxed atomic load. Every
/// other entry point checks it first and returns immediately when `false`.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to a counter in the current thread's buffer. No-op when no
/// collector is installed.
#[inline]
pub fn count(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.ensure_attached() {
            buf.counters.add(c, n);
        }
    });
}

/// Records one latency sample (nanoseconds) into a metric histogram in
/// the current thread's buffer. No-op when no collector is installed.
#[inline]
pub fn record_duration(metric: Metric, nanos: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.ensure_attached() {
            buf.metrics.record(metric, nanos);
        }
    });
}

/// Offers a gauge observation in the current thread's buffer; the
/// session keeps the maximum offered across all threads. No-op when no
/// collector is installed.
#[inline]
pub fn set_gauge(gauge: Gauge, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.ensure_attached() {
            buf.gauges.set(gauge, value);
        }
    });
}

/// Records one PathFinder iteration's convergence state. Once per
/// iteration, so it goes straight to the shared store like snapshots.
pub fn record_convergence(record: ConvergenceRecord) {
    if !enabled() {
        return;
    }
    let shared = registry().lock().expect("trace registry poisoned").clone();
    if let Some(shared) = shared {
        shared
            .convergence
            .lock()
            .expect("trace convergence store poisoned")
            .push(record);
    }
}

/// Records one scheduler participant's per-pass timeline. Once per
/// worker per pass, so it goes straight to the shared store.
pub fn record_timeline(record: TimelineRecord) {
    if !enabled() {
        return;
    }
    let shared = registry().lock().expect("trace registry poisoned").clone();
    if let Some(shared) = shared {
        shared
            .timelines
            .lock()
            .expect("trace timeline store poisoned")
            .push(record);
    }
}

/// Opens a span at the given hierarchy level. The returned guard records
/// the span into the thread's buffer when dropped; when no collector is
/// installed the guard is inert and the call costs one atomic load.
///
/// `index` is a free numeric payload (pass number, net index, probed
/// width); pass 0 when unused.
#[inline]
#[must_use = "the span closes when the guard drops; binding it to _ records a zero-length span"]
pub fn span(kind: SpanKind, label: &'static str, index: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    LOCAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if !buf.ensure_attached() {
            return SpanGuard(None);
        }
        let shared = buf.shared.as_ref().expect("attached implies shared").clone();
        let id = SpanId(shared.next_span.fetch_add(1, Ordering::Relaxed));
        let parent = buf.stack.last().copied().or(buf.adopted_parent);
        buf.stack.push(id);
        SpanGuard(Some(ActiveSpan {
            generation: buf.generation,
            epoch: shared.epoch,
            start_ns: elapsed_ns(shared.epoch),
            id,
            parent,
            kind,
            label,
            index,
        }))
    })
}

/// The innermost span currently open on this thread (if any), for handing
/// to [`adopt_parent`] on freshly spawned worker threads.
#[must_use]
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    LOCAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if !buf.ensure_attached() {
            return None;
        }
        buf.stack.last().copied().or(buf.adopted_parent)
    })
}

/// Declares `parent` the enclosing span for roots recorded on *this*
/// thread. Call first thing in a worker closure, passing the spawning
/// thread's [`current_span`], so worker-side net spans nest under the
/// pass span instead of floating free.
pub fn adopt_parent(parent: Option<SpanId>) {
    if !enabled() {
        return;
    }
    LOCAL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.ensure_attached() {
            buf.adopted_parent = parent;
        }
    });
}

/// Records a per-pass congestion snapshot. Snapshots are rare (one per
/// pass), so they go straight to the shared store.
pub fn record_snapshot(snapshot: CongestionSnapshot) {
    if !enabled() {
        return;
    }
    let shared = registry().lock().expect("trace registry poisoned").clone();
    if let Some(shared) = shared {
        shared
            .snapshots
            .lock()
            .expect("trace snapshot store poisoned")
            .push(snapshot);
    }
}

/// Flushes the current thread's buffer into the shared collector.
///
/// Worker threads flush automatically at exit; long-lived threads that
/// outlive a routing call can flush explicitly so a subsequent
/// [`Collector::finish`] on another thread sees their events.
pub fn flush_thread() {
    LOCAL.with(|cell| cell.borrow_mut().flush());
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Guard for an open span; records the span on drop.
#[must_use = "dropping the guard closes the span"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    generation: u64,
    epoch: Instant,
    start_ns: u64,
    id: SpanId,
    parent: Option<SpanId>,
    kind: SpanKind,
    label: &'static str,
    index: u64,
}

impl SpanGuard {
    /// The id of the open span, or `None` for an inert guard.
    #[must_use]
    pub fn id(&self) -> Option<SpanId> {
        self.0.as_ref().map(|s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let end_ns = elapsed_ns(active.epoch);
        LOCAL.with(|cell| {
            let mut buf = cell.borrow_mut();
            // If the collector changed under us, the session this span
            // belongs to is over: discard rather than misfile it.
            if buf.generation != active.generation || buf.shared.is_none() {
                return;
            }
            if buf.stack.last() == Some(&active.id) {
                buf.stack.pop();
            } else {
                // Out-of-order drop (shouldn't happen with guard scoping);
                // drop the id wherever it is to keep the stack sane.
                buf.stack.retain(|&id| id != active.id);
            }
            let thread = buf.thread;
            let record = SpanRecord {
                id: active.id,
                parent: active.parent,
                kind: active.kind,
                label: active.label,
                index: active.index,
                start_ns: active.start_ns,
                end_ns,
                thread,
            };
            if let Some(shared) = &buf.shared {
                shared.stream_span(&record);
            }
            buf.spans.push(record);
        });
    }
}

/// An installed trace collector session.
///
/// Exactly one collector is active at a time; installing a new one ends
/// the previous session (its unflushed thread buffers are discarded).
///
/// # Example
///
/// ```
/// use route_trace::{Collector, Counter, SpanKind};
///
/// let collector = Collector::install();
/// {
///     let _pass = route_trace::span(SpanKind::Pass, "pass", 1);
///     route_trace::count(Counter::NetsRouted, 3);
/// }
/// let trace = collector.finish();
/// assert_eq!(trace.spans.len(), 1);
/// assert_eq!(trace.counters.get(Counter::NetsRouted), 3);
/// ```
pub struct Collector {
    shared: Arc<Shared>,
    generation: u64,
}

impl Collector {
    /// Installs a fresh collector and enables tracing globally.
    pub fn install() -> Collector {
        Collector::install_with(None)
    }

    /// Installs a collector that *streams*: the JSONL `meta` header is
    /// written to `out` immediately, every span's line is appended (and
    /// flushed) as the span closes, and [`finish`](Collector::finish)
    /// appends the merged counters and congestion snapshots. The
    /// finished [`Trace`] is still returned as usual, so summaries keep
    /// working.
    ///
    /// # Errors
    /// Propagates I/O errors from writing the header; the collector is
    /// not installed on failure.
    pub fn install_streaming(out: Box<dyn std::io::Write + Send>) -> std::io::Result<Collector> {
        Ok(Collector::install_with(Some(StreamingJsonlSink::new(out)?)))
    }

    fn install_with(stream: Option<StreamingJsonlSink>) -> Collector {
        let shared = Arc::new(Shared::new(stream));
        let mut slot = registry().lock().expect("trace registry poisoned");
        *slot = Some(shared.clone());
        let generation = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
        ENABLED.store(true, Ordering::Release);
        drop(slot);
        Collector { shared, generation }
    }

    /// Ends the session and returns everything recorded.
    ///
    /// Flushes the calling thread's buffer first; worker threads flushed
    /// when they exited. If a newer collector was installed meanwhile,
    /// tracing stays enabled for it and this returns only this session's
    /// data.
    #[must_use]
    pub fn finish(self) -> Trace {
        flush_thread();
        {
            let mut slot = registry().lock().expect("trace registry poisoned");
            let still_current = GENERATION.load(Ordering::Acquire) == self.generation;
            if still_current {
                ENABLED.store(false, Ordering::Release);
                GENERATION.fetch_add(1, Ordering::AcqRel);
                *slot = None;
            }
        }
        let spans = {
            let mut spans = self
                .shared
                .spans
                .lock()
                .expect("trace span store poisoned");
            std::mem::take(&mut *spans)
        };
        let mut spans = spans;
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let snapshots = {
            let mut snaps = self
                .shared
                .snapshots
                .lock()
                .expect("trace snapshot store poisoned");
            std::mem::take(&mut *snaps)
        };
        let counters = {
            let counters = self
                .shared
                .counters
                .lock()
                .expect("trace counter store poisoned");
            counters.clone()
        };
        let metrics = {
            let metrics = self
                .shared
                .metrics
                .lock()
                .expect("trace metric store poisoned");
            metrics.clone()
        };
        let gauges = {
            let gauges = self
                .shared
                .gauges
                .lock()
                .expect("trace gauge store poisoned");
            gauges.clone()
        };
        let mut convergence = {
            let mut conv = self
                .shared
                .convergence
                .lock()
                .expect("trace convergence store poisoned");
            std::mem::take(&mut *conv)
        };
        convergence.sort_by_key(|c| c.iteration);
        let mut timelines = {
            let mut tl = self
                .shared
                .timelines
                .lock()
                .expect("trace timeline store poisoned");
            std::mem::take(&mut *tl)
        };
        timelines.sort_by_key(|t| (t.pass, t.role, t.worker));
        let profile = profile::compute(&spans);
        self.shared.streaming.store(false, Ordering::Relaxed);
        let stream = self.shared.stream.lock().ok().and_then(|mut s| s.take());
        if let Some(mut sink) = stream {
            let tail = crate::sink::Tail {
                counters: &counters,
                snapshots: &snapshots,
                metrics: &metrics,
                gauges: &gauges,
                convergence: &convergence,
                timelines: &timelines,
                profile: &profile,
            };
            let _ = sink.write_tail(&tail);
        }
        Trace {
            spans,
            counters,
            snapshots,
            metrics,
            gauges,
            convergence,
            timelines,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Collector state is process-global; serialize the tests that install
    // one so `cargo test`'s parallel runner cannot interleave sessions.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_is_inert() {
        let _gate = serial();
        assert!(!enabled());
        count(Counter::NetsRouted, 5); // must not panic or leak anywhere
        let guard = span(SpanKind::Net, "net", 0);
        assert!(guard.id().is_none());
        drop(guard);
        assert!(current_span().is_none());
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let _gate = serial();
        let collector = Collector::install();
        {
            let pass = span(SpanKind::Pass, "pass", 1);
            let pass_id = pass.id().unwrap();
            assert_eq!(current_span(), Some(pass_id));
            {
                let net = span(SpanKind::Net, "net", 7);
                assert_eq!(
                    net.id().map(|i| i.0 > pass_id.0),
                    Some(true),
                    "ids are issued in order"
                );
                count(Counter::DijkstraRuns, 2);
            }
            count(Counter::DijkstraRuns, 1);
        }
        let trace = collector.finish();
        assert!(!enabled());
        assert_eq!(trace.spans.len(), 2);
        let pass = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Pass)
            .unwrap();
        let net = trace.spans.iter().find(|s| s.kind == SpanKind::Net).unwrap();
        assert_eq!(pass.parent, None);
        assert_eq!(net.parent, Some(pass.id));
        assert_eq!(net.index, 7);
        assert!(net.start_ns >= pass.start_ns);
        assert!(net.end_ns <= pass.end_ns);
        assert_eq!(trace.counters.get(Counter::DijkstraRuns), 3);
    }

    #[test]
    fn worker_threads_merge_at_exit_and_adopt_parents() {
        let _gate = serial();
        let collector = Collector::install();
        let pass = span(SpanKind::Pass, "pass", 1);
        let parent = pass.id();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let parent = current_span();
                scope.spawn(move || {
                    adopt_parent(parent);
                    let _net = span(SpanKind::Net, "net", worker);
                    count(Counter::NetsRouted, 1);
                });
            }
        });
        drop(pass);
        let trace = collector.finish();
        assert_eq!(trace.counters.get(Counter::NetsRouted), 4);
        let nets: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Net)
            .collect();
        assert_eq!(nets.len(), 4);
        for net in nets {
            assert_eq!(net.parent, parent);
        }
        // 1 pass + 4 nets, each from a distinct worker thread.
        let threads: std::collections::HashSet<u64> =
            trace.spans.iter().map(|s| s.thread).collect();
        assert!(threads.len() >= 2);
    }

    #[test]
    fn snapshots_are_collected() {
        let _gate = serial();
        let collector = Collector::install();
        record_snapshot(CongestionSnapshot::from_usage(1, 4, &[1, 2, 0]));
        record_snapshot(CongestionSnapshot::from_usage(2, 4, &[3, 4, 4]));
        let trace = collector.finish();
        assert_eq!(trace.snapshots.len(), 2);
        assert_eq!(trace.snapshots[1].pass, 2);
    }

    /// A cloneable in-memory writer so the test can watch the stream
    /// grow while the collector still owns the sink.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_appends_spans_as_they_close_and_tail_at_finish() {
        let _gate = serial();
        let buf = SharedBuf::default();
        let collector = Collector::install_streaming(Box::new(buf.clone())).unwrap();
        let header = buf.text();
        assert_eq!(header.lines().count(), 1, "meta header written at install");
        assert!(header.contains("\"mode\":\"stream\""));
        {
            let _pass = span(SpanKind::Pass, "pass", 1);
            let _net = span(SpanKind::Net, "net", 3);
        }
        let mid = buf.text();
        assert_eq!(
            mid.lines().count(),
            3,
            "both spans streamed the moment their guards dropped"
        );
        count(Counter::NetsRouted, 2);
        record_snapshot(CongestionSnapshot::from_usage(1, 2, &[1, 0]));
        let trace = collector.finish();
        assert_eq!(trace.spans.len(), 2, "finish still returns the full trace");
        let text = buf.text();
        for line in text.lines() {
            crate::json::validate(line)
                .unwrap_or_else(|e| panic!("bad streamed line {line:?}: {e}"));
        }
        assert!(text.contains("\"kind\":\"pass\""));
        assert!(text.contains("\"name\":\"nets_routed\""));
        assert!(text.contains("\"type\":\"congestion\""));
        // Close order: the net guard dropped before the pass guard.
        let net_pos = text.find("\"kind\":\"net\"").unwrap();
        let pass_pos = text.find("\"kind\":\"pass\"").unwrap();
        assert!(net_pos < pass_pos);
    }

    #[test]
    fn reinstall_discards_stale_session_events() {
        let _gate = serial();
        let first = Collector::install();
        count(Counter::NetsRouted, 1);
        let second = Collector::install();
        // This lands in the second session.
        count(Counter::NetsRouted, 10);
        let second_trace = second.finish();
        let first_trace = first.finish();
        assert_eq!(second_trace.counters.get(Counter::NetsRouted), 10);
        // The first session kept what was flushed into it before the
        // takeover (the re-attach flush routed the `1` to it).
        assert!(first_trace.counters.get(Counter::NetsRouted) <= 1);
        assert!(!enabled());
    }
}
