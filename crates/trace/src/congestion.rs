//! Per-pass congestion snapshots: channel occupancy histograms.
//!
//! A failed width probe is only explainable if we can see *how full* the
//! channels were when the pass gave up. The router tracks per-channel-
//! position occupancy anyway (for congestion weighting); a snapshot folds
//! that vector into a compact histogram with max/mean/saturation stats,
//! cheap enough to take every pass.

/// Channel occupancy statistics at the end of one routing pass.
///
/// All fields are integers (mean is fixed-point milli) so snapshots are
/// exactly comparable across runs — `Eq` matters for the determinism
/// tests that assert parallel and sequential routing agree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CongestionSnapshot {
    /// 1-based pass number the snapshot was taken after.
    pub pass: usize,
    /// Channel width `W` of the device being routed.
    pub channel_width: usize,
    /// Total channel positions on the device.
    pub positions: usize,
    /// Positions with at least one track occupied.
    pub used_positions: usize,
    /// `histogram[o]` = number of positions with occupancy exactly `o`;
    /// occupancies above `channel_width` are clamped into the last bucket.
    pub histogram: Vec<usize>,
    /// Highest occupancy observed at any position.
    pub max_occupancy: u32,
    /// Mean occupancy over all positions, in milli-tracks (1000 = 1.0).
    pub mean_occupancy_milli: u64,
    /// Positions at full capacity (`occupancy >= channel_width`).
    pub saturated_positions: usize,
    /// Positions *beyond* capacity. The router removes committed
    /// resources, so this is 0 unless an engine bug double-books a track.
    pub overused_positions: usize,
    /// Largest `occupancy - channel_width` excess (0 when none).
    pub max_overuse: u32,
}

impl CongestionSnapshot {
    /// Folds a raw per-position occupancy vector into a snapshot.
    #[must_use]
    pub fn from_usage(pass: usize, channel_width: usize, usage: &[u32]) -> CongestionSnapshot {
        let w = u32::try_from(channel_width).unwrap_or(u32::MAX);
        let mut histogram = vec![0usize; channel_width + 1];
        let mut used_positions = 0usize;
        let mut saturated_positions = 0usize;
        let mut overused_positions = 0usize;
        let mut max_occupancy = 0u32;
        let mut max_overuse = 0u32;
        let mut total = 0u64;
        for &occ in usage {
            let bucket = (occ as usize).min(channel_width);
            histogram[bucket] += 1;
            if occ > 0 {
                used_positions += 1;
            }
            if occ >= w {
                saturated_positions += 1;
            }
            if occ > w {
                overused_positions += 1;
                max_overuse = max_overuse.max(occ - w);
            }
            max_occupancy = max_occupancy.max(occ);
            total += u64::from(occ);
        }
        let mean_occupancy_milli = if usage.is_empty() {
            0
        } else {
            total.saturating_mul(1000) / usage.len() as u64
        };
        CongestionSnapshot {
            pass,
            channel_width,
            positions: usage.len(),
            used_positions,
            histogram,
            max_occupancy,
            mean_occupancy_milli,
            saturated_positions,
            overused_positions,
            max_overuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_usage_into_histogram() {
        let snap = CongestionSnapshot::from_usage(2, 3, &[0, 0, 1, 3, 2, 3]);
        assert_eq!(snap.pass, 2);
        assert_eq!(snap.positions, 6);
        assert_eq!(snap.used_positions, 4);
        assert_eq!(snap.histogram, vec![2, 1, 1, 2]);
        assert_eq!(snap.max_occupancy, 3);
        assert_eq!(snap.saturated_positions, 2);
        assert_eq!(snap.overused_positions, 0);
        assert_eq!(snap.max_overuse, 0);
        // (0+0+1+3+2+3)/6 = 1.5
        assert_eq!(snap.mean_occupancy_milli, 1500);
    }

    #[test]
    fn overuse_is_detected_and_clamped_into_last_bucket() {
        let snap = CongestionSnapshot::from_usage(1, 2, &[5, 1]);
        assert_eq!(snap.histogram, vec![0, 1, 1]);
        assert_eq!(snap.max_occupancy, 5);
        assert_eq!(snap.overused_positions, 1);
        assert_eq!(snap.max_overuse, 3);
        assert_eq!(snap.saturated_positions, 1);
    }

    #[test]
    fn empty_usage_is_well_defined() {
        let snap = CongestionSnapshot::from_usage(1, 4, &[]);
        assert_eq!(snap.positions, 0);
        assert_eq!(snap.mean_occupancy_milli, 0);
        assert_eq!(snap.histogram.len(), 5);
    }

    #[test]
    fn zero_channel_width_stays_well_defined() {
        // A degenerate device with no tracks: every occupied position is
        // simultaneously saturated and overused, and the histogram keeps
        // its one (clamped) bucket rather than going zero-width.
        let snap = CongestionSnapshot::from_usage(1, 0, &[0, 2, 1]);
        assert_eq!(snap.histogram, vec![3], "single bucket, never empty");
        assert_eq!(snap.used_positions, 2);
        assert_eq!(snap.saturated_positions, 3, "0 >= 0 counts as saturated");
        assert_eq!(snap.overused_positions, 2);
        assert_eq!(snap.max_overuse, 2);
        assert_eq!(snap.max_occupancy, 2);
        assert_eq!(snap.mean_occupancy_milli, 1000);
    }

    #[test]
    fn fully_saturated_channel_is_reported_exactly() {
        // Every position at exactly full capacity: saturated everywhere,
        // overused nowhere.
        let snap = CongestionSnapshot::from_usage(3, 4, &[4, 4, 4, 4]);
        assert_eq!(snap.used_positions, 4);
        assert_eq!(snap.saturated_positions, 4);
        assert_eq!(snap.overused_positions, 0);
        assert_eq!(snap.max_overuse, 0);
        assert_eq!(snap.max_occupancy, 4);
        assert_eq!(snap.histogram, vec![0, 0, 0, 0, 4]);
        assert_eq!(snap.mean_occupancy_milli, 4000);
    }
}
