//! Trace results and emission sinks.
//!
//! [`Collector::finish`](crate::Collector::finish) returns a [`Trace`];
//! a [`TraceSink`] turns it into bytes. Two sinks ship with the crate:
//! [`JsonlSink`] (one JSON object per line — streams well, greps well)
//! and [`JsonSink`] (a single document for tools that want one value).
//!
//! A third mode, [`StreamingJsonlSink`], is not a [`TraceSink`]: instead
//! of serializing a finished trace it is installed *into* a collector
//! session ([`Collector::install_streaming`](crate::Collector::install_streaming))
//! and appends each span's JSONL line the moment the span closes, so a
//! long routing run can be tailed live and a crash loses at most the
//! events after the last flush.

use std::io::{self, Write};

use crate::congestion::CongestionSnapshot;
use crate::counter::CounterSet;
use crate::json::ObjectWriter;
use crate::metrics::{ConvergenceRecord, GaugeSet, Histogram, HistogramSet, TimelineRecord};
use crate::profile::ProfileEntry;
use crate::span::{SpanKind, SpanRecord};

/// Everything one collector session recorded.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Merged algorithm counters from every participating thread.
    pub counters: CounterSet,
    /// Per-pass congestion snapshots, in recording order.
    pub snapshots: Vec<CongestionSnapshot>,
    /// Merged latency histograms from every participating thread.
    pub metrics: HistogramSet,
    /// Merged gauges (slot-wise maximum) from every participating thread.
    pub gauges: GaugeSet,
    /// Per-iteration PathFinder convergence records, iteration order.
    pub convergence: Vec<ConvergenceRecord>,
    /// Per-worker scheduler timelines, sorted by (pass, role, worker).
    pub timelines: Vec<TimelineRecord>,
    /// Wall-clock attribution per span kind, outermost first.
    pub profile: Vec<ProfileEntry>,
}

impl Trace {
    /// `true` when nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.snapshots.is_empty()
            && self.metrics.is_empty()
            && self.gauges.is_empty()
            && self.convergence.is_empty()
            && self.timelines.is_empty()
    }

    /// Spans of one kind, in start order.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Renders a human-readable counter/congestion summary (the CLI's
    /// `--metrics` output).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        out.push_str(&format!(
            "  spans: {} ({} passes, {} nets)\n",
            self.spans.len(),
            self.spans_of(SpanKind::Pass).count(),
            self.spans_of(SpanKind::Net).count(),
        ));
        for (c, v) in self.counters.iter_nonzero() {
            out.push_str(&format!("  {:<30} {v}\n", c.name()));
        }
        for (m, h) in self.metrics.iter_nonzero() {
            out.push_str(&format!(
                "  {:<30} n={} p50={} p95={} p99={} max={}\n",
                m.name(),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max(),
            ));
        }
        for (g, v) in self.gauges.iter_set() {
            out.push_str(&format!("  {:<30} {v}\n", g.name()));
        }
        for snap in &self.snapshots {
            out.push_str(&format!(
                "  pass {:>2} congestion: max {} / width {}, mean {}.{:03}, saturated {}/{}\n",
                snap.pass,
                snap.max_occupancy,
                snap.channel_width,
                snap.mean_occupancy_milli / 1000,
                snap.mean_occupancy_milli % 1000,
                snap.saturated_positions,
                snap.positions,
            ));
        }
        out
    }
}

/// Something that can serialize a [`Trace`] to a writer.
pub trait TraceSink {
    /// Writes the trace to `out`.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    fn emit(&self, trace: &Trace, out: &mut dyn Write) -> io::Result<()>;
}

fn span_object(span: &SpanRecord) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "span")
        .u64("id", span.id.0)
        .u64("parent", span.parent.map_or(0, |p| p.0))
        .str("kind", span.kind.name())
        .str("label", span.label)
        .u64("index", span.index)
        .u64("start_ns", span.start_ns)
        .u64("end_ns", span.end_ns)
        .u64("thread", span.thread);
    o.finish()
}

fn snapshot_object(snap: &CongestionSnapshot) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "congestion")
        .u64("pass", snap.pass as u64)
        .u64("channel_width", snap.channel_width as u64)
        .u64("positions", snap.positions as u64)
        .u64("used_positions", snap.used_positions as u64)
        .u64_array("histogram", snap.histogram.iter().map(|&v| v as u64))
        .u64("max_occupancy", u64::from(snap.max_occupancy))
        .u64("mean_occupancy_milli", snap.mean_occupancy_milli)
        .u64("saturated_positions", snap.saturated_positions as u64)
        .u64("overused_positions", snap.overused_positions as u64)
        .u64("max_overuse", u64::from(snap.max_overuse));
    o.finish()
}

fn histogram_object(name: &str, h: &Histogram) -> String {
    let mut buckets = String::from("[");
    for (i, (idx, n)) in h.iter_nonzero().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        buckets.push_str(&format!("[{idx},{n}]"));
    }
    buckets.push(']');
    let mut o = ObjectWriter::new();
    o.str("type", "histogram")
        .str("name", name)
        .u64("count", h.count())
        .u64("sum", h.sum())
        .u64("mean", h.mean())
        .u64("p50", h.quantile(0.50))
        .u64("p95", h.quantile(0.95))
        .u64("p99", h.quantile(0.99))
        .u64("max", h.max())
        .raw("buckets", &buckets);
    o.finish()
}

fn gauge_object(name: &str, value: u64) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "gauge").str("name", name).u64("value", value);
    o.finish()
}

fn profile_object(entry: &ProfileEntry) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "profile")
        .str("kind", entry.kind.name())
        .u64("count", entry.count)
        .u64("inclusive_ns", entry.inclusive_ns)
        .u64("exclusive_ns", entry.exclusive_ns);
    o.finish()
}

fn convergence_object(rec: &ConvergenceRecord) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "convergence")
        .u64("iteration", rec.iteration as u64)
        .u64("overcapacity", rec.overcapacity as u64)
        .u64("history_milli", rec.history_milli)
        .u64("nets_rerouted", rec.nets_rerouted as u64)
        .u64("present_milli", rec.present_milli)
        .u64("dirty_nets", rec.dirty_nets as u64);
    o.finish()
}

fn timeline_object(rec: &TimelineRecord) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "timeline")
        .u64("pass", rec.pass as u64)
        .u64("worker", rec.worker as u64)
        .str("role", rec.role)
        .u64("busy_ns", rec.busy_ns)
        .u64("nets", rec.nets as u64)
        .u64("steals", rec.steals as u64)
        .u64("stalls", rec.stalls as u64);
    o.finish()
}

/// Borrowed view of everything a session's tail carries (counters,
/// snapshots, and all the observability records) — one parameter pack
/// for the streaming sink so the collector and the batch sinks stay in
/// lockstep about what a complete trace contains.
pub(crate) struct Tail<'a> {
    pub(crate) counters: &'a CounterSet,
    pub(crate) snapshots: &'a [CongestionSnapshot],
    pub(crate) metrics: &'a HistogramSet,
    pub(crate) gauges: &'a GaugeSet,
    pub(crate) convergence: &'a [ConvergenceRecord],
    pub(crate) timelines: &'a [TimelineRecord],
    pub(crate) profile: &'a [ProfileEntry],
}

fn write_tail_lines(out: &mut dyn Write, tail: &Tail<'_>) -> io::Result<()> {
    for (c, v) in tail.counters.iter_nonzero() {
        let mut o = ObjectWriter::new();
        o.str("type", "counter").str("name", c.name()).u64("value", v);
        writeln!(out, "{}", o.finish())?;
    }
    for (m, h) in tail.metrics.iter_nonzero() {
        writeln!(out, "{}", histogram_object(m.name(), h))?;
    }
    for (g, v) in tail.gauges.iter_set() {
        writeln!(out, "{}", gauge_object(g.name(), v))?;
    }
    for entry in tail.profile {
        writeln!(out, "{}", profile_object(entry))?;
    }
    for rec in tail.convergence {
        writeln!(out, "{}", convergence_object(rec))?;
    }
    for rec in tail.timelines {
        writeln!(out, "{}", timeline_object(rec))?;
    }
    for snap in tail.snapshots {
        writeln!(out, "{}", snapshot_object(snap))?;
    }
    Ok(())
}

fn meta_object(trace: &Trace) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "meta")
        .str("format", "route-trace")
        .u64("version", 1)
        .u64("spans", trace.spans.len() as u64)
        .u64("snapshots", trace.snapshots.len() as u64);
    o.finish()
}

/// Streams a collector session as JSONL while it runs.
///
/// Construction writes the `meta` header immediately (span/snapshot
/// counts are reported as 0 — they are unknowable upfront; the line
/// carries `"mode":"stream"` so readers can tell). Every span is then
/// written and flushed the moment it closes — in *close* order, which
/// across worker threads is not start order — and
/// [`Collector::finish`](crate::Collector::finish) appends the merged
/// counters and congestion snapshots. Each emitted line validates
/// against [`json::validate`](crate::json::validate) exactly like
/// [`JsonlSink`] output, so `trace-check` accepts streamed files
/// unchanged.
pub struct StreamingJsonlSink {
    out: Box<dyn Write + Send>,
}

impl std::fmt::Debug for StreamingJsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingJsonlSink").finish_non_exhaustive()
    }
}

impl StreamingJsonlSink {
    /// Wraps a writer and emits the `meta` header line at once.
    ///
    /// # Errors
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: Box<dyn Write + Send>) -> io::Result<StreamingJsonlSink> {
        let mut o = ObjectWriter::new();
        o.str("type", "meta")
            .str("format", "route-trace")
            .u64("version", 1)
            .str("mode", "stream")
            .u64("spans", 0)
            .u64("snapshots", 0);
        writeln!(out, "{}", o.finish())?;
        out.flush()?;
        Ok(StreamingJsonlSink { out })
    }

    /// Appends one closed span and flushes so tails see it promptly.
    pub(crate) fn write_span(&mut self, span: &SpanRecord) -> io::Result<()> {
        writeln!(self.out, "{}", span_object(span))?;
        self.out.flush()
    }

    /// Appends the session's tail — merged counters, histograms, gauges,
    /// profile, convergence, timelines, and congestion snapshots — the
    /// collector calls this once, from `finish`.
    pub(crate) fn write_tail(&mut self, tail: &Tail<'_>) -> io::Result<()> {
        write_tail_lines(&mut self.out, tail)?;
        self.out.flush()
    }
}

/// Emits one JSON object per line: a `meta` header, then every span,
/// then the tail — nonzero counters, latency histograms, gauges, the
/// span-kind profile, convergence and timeline records, and every
/// congestion snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonlSink;

impl TraceSink for JsonlSink {
    fn emit(&self, trace: &Trace, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "{}", meta_object(trace))?;
        for span in &trace.spans {
            writeln!(out, "{}", span_object(span))?;
        }
        write_tail_lines(
            out,
            &Tail {
                counters: &trace.counters,
                snapshots: &trace.snapshots,
                metrics: &trace.metrics,
                gauges: &trace.gauges,
                convergence: &trace.convergence,
                timelines: &trace.timelines,
                profile: &trace.profile,
            },
        )
    }
}

/// Emits the whole trace as one JSON document
/// (`{"meta":…,"spans":[…],"counters":{…},"histograms":[…],"gauges":{…},
/// "profile":[…],"convergence":[…],"timelines":[…],"congestion":[…]}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSink;

impl TraceSink for JsonSink {
    fn emit(&self, trace: &Trace, out: &mut dyn Write) -> io::Result<()> {
        let mut doc = String::from("{\"meta\":");
        doc.push_str(&meta_object(trace));
        doc.push_str(",\"spans\":[");
        for (i, span) in trace.spans.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&span_object(span));
        }
        doc.push_str("],\"counters\":{");
        for (i, (c, v)) in trace.counters.iter_nonzero().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let mut pair = String::new();
            crate::json::write_str(&mut pair, c.name());
            doc.push_str(&pair);
            doc.push(':');
            doc.push_str(&v.to_string());
        }
        doc.push_str("},\"histograms\":[");
        for (i, (m, h)) in trace.metrics.iter_nonzero().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&histogram_object(m.name(), h));
        }
        doc.push_str("],\"gauges\":{");
        for (i, (g, v)) in trace.gauges.iter_set().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let mut pair = String::new();
            crate::json::write_str(&mut pair, g.name());
            doc.push_str(&pair);
            doc.push(':');
            doc.push_str(&v.to_string());
        }
        doc.push_str("},\"profile\":[");
        for (i, entry) in trace.profile.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&profile_object(entry));
        }
        doc.push_str("],\"convergence\":[");
        for (i, rec) in trace.convergence.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&convergence_object(rec));
        }
        doc.push_str("],\"timelines\":[");
        for (i, rec) in trace.timelines.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&timeline_object(rec));
        }
        doc.push_str("],\"congestion\":[");
        for (i, snap) in trace.snapshots.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&snapshot_object(snap));
        }
        doc.push_str("]}");
        out.write_all(doc.as_bytes())?;
        out.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::Counter;
    use crate::json::validate;
    use crate::metrics::{Gauge, Metric};
    use crate::span::SpanId;

    fn sample_trace() -> Trace {
        let mut counters = CounterSet::new();
        counters.add(Counter::DijkstraRelaxations, 42);
        counters.add(Counter::NetsRouted, 3);
        Trace {
            spans: vec![
                SpanRecord {
                    id: SpanId(1),
                    parent: None,
                    kind: SpanKind::Pass,
                    label: "pass",
                    index: 1,
                    start_ns: 0,
                    end_ns: 900,
                    thread: 0,
                },
                SpanRecord {
                    id: SpanId(2),
                    parent: Some(SpanId(1)),
                    kind: SpanKind::Net,
                    label: "net \"a\"",
                    index: 0,
                    start_ns: 10,
                    end_ns: 500,
                    thread: 1,
                },
            ],
            counters,
            snapshots: vec![CongestionSnapshot::from_usage(1, 2, &[1, 2, 0])],
            ..Trace::default()
        }
    }

    fn observability_trace() -> Trace {
        let mut trace = sample_trace();
        trace.metrics.record(Metric::NetRouteNs, 1500);
        trace.metrics.record(Metric::NetRouteNs, 90);
        trace.gauges.set(Gauge::SchedWorkers, 4);
        trace.convergence.push(ConvergenceRecord {
            iteration: 1,
            overcapacity: 12,
            history_milli: 340,
            nets_rerouted: 5,
            present_milli: 250,
            dirty_nets: 7,
        });
        trace.timelines.push(TimelineRecord {
            pass: 1,
            worker: 0,
            role: "worker",
            busy_ns: 700,
            nets: 2,
            steals: 1,
            stalls: 0,
        });
        trace.profile = crate::profile::compute(&trace.spans);
        trace
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let mut buf = Vec::new();
        JsonlSink.emit(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 2 spans + 2 counters + 1 snapshot
        assert_eq!(lines.len(), 6);
        for line in &lines {
            validate(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        }
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[2].contains("\"parent\":1"));
        assert!(text.contains("\"dijkstra_relaxations\""));
        assert!(text.contains("\"max_occupancy\":2"));
    }

    #[test]
    fn json_document_is_one_valid_value() {
        let mut buf = Vec::new();
        JsonSink.emit(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(text.trim_end()).unwrap();
        assert!(text.contains("\"spans\":["));
        assert!(text.contains("\"nets_routed\":3"));
    }

    #[test]
    fn empty_trace_emits_valid_output() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        let mut buf = Vec::new();
        JsonlSink.emit(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1); // meta only
        validate(text.trim_end()).unwrap();
        let mut buf = Vec::new();
        JsonSink.emit(&trace, &mut buf).unwrap();
        validate(String::from_utf8(buf).unwrap().trim_end()).unwrap();
    }

    #[test]
    fn jsonl_emits_every_observability_record_type() {
        let mut buf = Vec::new();
        JsonlSink.emit(&observability_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            validate(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        }
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"name\":\"net_route_ns\""));
        assert!(text.contains("\"p50\":"));
        assert!(text.contains("\"type\":\"gauge\""));
        assert!(text.contains("\"name\":\"sched_workers\""));
        assert!(text.contains("\"type\":\"profile\""));
        assert!(text.contains("\"inclusive_ns\":"));
        assert!(text.contains("\"type\":\"convergence\""));
        assert!(text.contains("\"present_milli\":250"));
        assert!(text.contains("\"type\":\"timeline\""));
        assert!(text.contains("\"role\":\"worker\""));
    }

    #[test]
    fn json_document_carries_observability_sections() {
        let mut buf = Vec::new();
        JsonSink.emit(&observability_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(text.trim_end()).unwrap();
        assert!(text.contains("\"histograms\":["));
        assert!(text.contains("\"gauges\":{\"sched_workers\":4}"));
        assert!(text.contains("\"profile\":["));
        assert!(text.contains("\"convergence\":["));
        assert!(text.contains("\"timelines\":["));
    }

    #[test]
    fn summary_mentions_histograms_and_gauges() {
        let s = observability_trace().summary();
        assert!(s.contains("net_route_ns"));
        assert!(s.contains("p95="));
        assert!(s.contains("sched_workers"));
    }

    #[test]
    fn summary_mentions_nonzero_counters() {
        let s = sample_trace().summary();
        assert!(s.contains("dijkstra_relaxations"));
        assert!(s.contains("pass  1 congestion"));
        assert!(!s.contains("pfa_folds"));
    }
}
