//! Trace results and emission sinks.
//!
//! [`Collector::finish`](crate::Collector::finish) returns a [`Trace`];
//! a [`TraceSink`] turns it into bytes. Two sinks ship with the crate:
//! [`JsonlSink`] (one JSON object per line — streams well, greps well)
//! and [`JsonSink`] (a single document for tools that want one value).
//!
//! A third mode, [`StreamingJsonlSink`], is not a [`TraceSink`]: instead
//! of serializing a finished trace it is installed *into* a collector
//! session ([`Collector::install_streaming`](crate::Collector::install_streaming))
//! and appends each span's JSONL line the moment the span closes, so a
//! long routing run can be tailed live and a crash loses at most the
//! events after the last flush.

use std::io::{self, Write};

use crate::congestion::CongestionSnapshot;
use crate::counter::CounterSet;
use crate::json::ObjectWriter;
use crate::span::{SpanKind, SpanRecord};

/// Everything one collector session recorded.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Merged algorithm counters from every participating thread.
    pub counters: CounterSet,
    /// Per-pass congestion snapshots, in recording order.
    pub snapshots: Vec<CongestionSnapshot>,
}

impl Trace {
    /// `true` when nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.snapshots.is_empty()
    }

    /// Spans of one kind, in start order.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Renders a human-readable counter/congestion summary (the CLI's
    /// `--metrics` output).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        out.push_str(&format!(
            "  spans: {} ({} passes, {} nets)\n",
            self.spans.len(),
            self.spans_of(SpanKind::Pass).count(),
            self.spans_of(SpanKind::Net).count(),
        ));
        for (c, v) in self.counters.iter_nonzero() {
            out.push_str(&format!("  {:<30} {v}\n", c.name()));
        }
        for snap in &self.snapshots {
            out.push_str(&format!(
                "  pass {:>2} congestion: max {} / width {}, mean {}.{:03}, saturated {}/{}\n",
                snap.pass,
                snap.max_occupancy,
                snap.channel_width,
                snap.mean_occupancy_milli / 1000,
                snap.mean_occupancy_milli % 1000,
                snap.saturated_positions,
                snap.positions,
            ));
        }
        out
    }
}

/// Something that can serialize a [`Trace`] to a writer.
pub trait TraceSink {
    /// Writes the trace to `out`.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    fn emit(&self, trace: &Trace, out: &mut dyn Write) -> io::Result<()>;
}

fn span_object(span: &SpanRecord) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "span")
        .u64("id", span.id.0)
        .u64("parent", span.parent.map_or(0, |p| p.0))
        .str("kind", span.kind.name())
        .str("label", span.label)
        .u64("index", span.index)
        .u64("start_ns", span.start_ns)
        .u64("end_ns", span.end_ns)
        .u64("thread", span.thread);
    o.finish()
}

fn snapshot_object(snap: &CongestionSnapshot) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "congestion")
        .u64("pass", snap.pass as u64)
        .u64("channel_width", snap.channel_width as u64)
        .u64("positions", snap.positions as u64)
        .u64("used_positions", snap.used_positions as u64)
        .u64_array("histogram", snap.histogram.iter().map(|&v| v as u64))
        .u64("max_occupancy", u64::from(snap.max_occupancy))
        .u64("mean_occupancy_milli", snap.mean_occupancy_milli)
        .u64("saturated_positions", snap.saturated_positions as u64)
        .u64("overused_positions", snap.overused_positions as u64)
        .u64("max_overuse", u64::from(snap.max_overuse));
    o.finish()
}

fn meta_object(trace: &Trace) -> String {
    let mut o = ObjectWriter::new();
    o.str("type", "meta")
        .str("format", "route-trace")
        .u64("version", 1)
        .u64("spans", trace.spans.len() as u64)
        .u64("snapshots", trace.snapshots.len() as u64);
    o.finish()
}

/// Streams a collector session as JSONL while it runs.
///
/// Construction writes the `meta` header immediately (span/snapshot
/// counts are reported as 0 — they are unknowable upfront; the line
/// carries `"mode":"stream"` so readers can tell). Every span is then
/// written and flushed the moment it closes — in *close* order, which
/// across worker threads is not start order — and
/// [`Collector::finish`](crate::Collector::finish) appends the merged
/// counters and congestion snapshots. Each emitted line validates
/// against [`json::validate`](crate::json::validate) exactly like
/// [`JsonlSink`] output, so `trace-check` accepts streamed files
/// unchanged.
pub struct StreamingJsonlSink {
    out: Box<dyn Write + Send>,
}

impl std::fmt::Debug for StreamingJsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingJsonlSink").finish_non_exhaustive()
    }
}

impl StreamingJsonlSink {
    /// Wraps a writer and emits the `meta` header line at once.
    ///
    /// # Errors
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: Box<dyn Write + Send>) -> io::Result<StreamingJsonlSink> {
        let mut o = ObjectWriter::new();
        o.str("type", "meta")
            .str("format", "route-trace")
            .u64("version", 1)
            .str("mode", "stream")
            .u64("spans", 0)
            .u64("snapshots", 0);
        writeln!(out, "{}", o.finish())?;
        out.flush()?;
        Ok(StreamingJsonlSink { out })
    }

    /// Appends one closed span and flushes so tails see it promptly.
    pub(crate) fn write_span(&mut self, span: &SpanRecord) -> io::Result<()> {
        writeln!(self.out, "{}", span_object(span))?;
        self.out.flush()
    }

    /// Appends the session's merged counters and congestion snapshots —
    /// the collector calls this once, from `finish`.
    pub(crate) fn write_tail(
        &mut self,
        counters: &CounterSet,
        snapshots: &[CongestionSnapshot],
    ) -> io::Result<()> {
        for (c, v) in counters.iter_nonzero() {
            let mut o = ObjectWriter::new();
            o.str("type", "counter").str("name", c.name()).u64("value", v);
            writeln!(self.out, "{}", o.finish())?;
        }
        for snap in snapshots {
            writeln!(self.out, "{}", snapshot_object(snap))?;
        }
        self.out.flush()
    }
}

/// Emits one JSON object per line: a `meta` header, then every span,
/// every nonzero counter, and every congestion snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonlSink;

impl TraceSink for JsonlSink {
    fn emit(&self, trace: &Trace, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "{}", meta_object(trace))?;
        for span in &trace.spans {
            writeln!(out, "{}", span_object(span))?;
        }
        for (c, v) in trace.counters.iter_nonzero() {
            let mut o = ObjectWriter::new();
            o.str("type", "counter").str("name", c.name()).u64("value", v);
            writeln!(out, "{}", o.finish())?;
        }
        for snap in &trace.snapshots {
            writeln!(out, "{}", snapshot_object(snap))?;
        }
        Ok(())
    }
}

/// Emits the whole trace as one JSON document
/// (`{"meta":…,"spans":[…],"counters":{…},"congestion":[…]}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSink;

impl TraceSink for JsonSink {
    fn emit(&self, trace: &Trace, out: &mut dyn Write) -> io::Result<()> {
        let mut doc = String::from("{\"meta\":");
        doc.push_str(&meta_object(trace));
        doc.push_str(",\"spans\":[");
        for (i, span) in trace.spans.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&span_object(span));
        }
        doc.push_str("],\"counters\":{");
        for (i, (c, v)) in trace.counters.iter_nonzero().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let mut pair = String::new();
            crate::json::write_str(&mut pair, c.name());
            doc.push_str(&pair);
            doc.push(':');
            doc.push_str(&v.to_string());
        }
        doc.push_str("},\"congestion\":[");
        for (i, snap) in trace.snapshots.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&snapshot_object(snap));
        }
        doc.push_str("]}");
        out.write_all(doc.as_bytes())?;
        out.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::Counter;
    use crate::json::validate;
    use crate::span::SpanId;

    fn sample_trace() -> Trace {
        let mut counters = CounterSet::new();
        counters.add(Counter::DijkstraRelaxations, 42);
        counters.add(Counter::NetsRouted, 3);
        Trace {
            spans: vec![
                SpanRecord {
                    id: SpanId(1),
                    parent: None,
                    kind: SpanKind::Pass,
                    label: "pass",
                    index: 1,
                    start_ns: 0,
                    end_ns: 900,
                    thread: 0,
                },
                SpanRecord {
                    id: SpanId(2),
                    parent: Some(SpanId(1)),
                    kind: SpanKind::Net,
                    label: "net \"a\"",
                    index: 0,
                    start_ns: 10,
                    end_ns: 500,
                    thread: 1,
                },
            ],
            counters,
            snapshots: vec![CongestionSnapshot::from_usage(1, 2, &[1, 2, 0])],
        }
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let mut buf = Vec::new();
        JsonlSink.emit(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 2 spans + 2 counters + 1 snapshot
        assert_eq!(lines.len(), 6);
        for line in &lines {
            validate(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        }
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[2].contains("\"parent\":1"));
        assert!(text.contains("\"dijkstra_relaxations\""));
        assert!(text.contains("\"max_occupancy\":2"));
    }

    #[test]
    fn json_document_is_one_valid_value() {
        let mut buf = Vec::new();
        JsonSink.emit(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(text.trim_end()).unwrap();
        assert!(text.contains("\"spans\":["));
        assert!(text.contains("\"nets_routed\":3"));
    }

    #[test]
    fn empty_trace_emits_valid_output() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        let mut buf = Vec::new();
        JsonlSink.emit(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1); // meta only
        validate(text.trim_end()).unwrap();
        let mut buf = Vec::new();
        JsonSink.emit(&trace, &mut buf).unwrap();
        validate(String::from_utf8(buf).unwrap().trim_end()).unwrap();
    }

    #[test]
    fn summary_mentions_nonzero_counters() {
        let s = sample_trace().summary();
        assert!(s.contains("dijkstra_relaxations"));
        assert!(s.contains("pass  1 congestion"));
        assert!(!s.contains("pfa_folds"));
    }
}
