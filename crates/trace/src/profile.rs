//! Self-profiler: wall-clock attribution over the span hierarchy.
//!
//! The span tree (`width_search > attempt > pass > net > phase`) already
//! carries every timestamp a profiler needs; this module folds it into
//! one [`ProfileEntry`] per [`SpanKind`] — how many spans of that kind
//! ran, their **inclusive** time (sum of durations), and their
//! **exclusive** time (inclusive minus the inclusive time of *direct*
//! children), which is where the "time not explained by a deeper level"
//! question is answered. Computed post-hoc at
//! [`Collector::finish`](crate::Collector::finish) from the recorded
//! spans, so the profiler adds zero cost to the routing hot path beyond
//! the spans that already exist.

use std::collections::HashMap;

use crate::span::{SpanKind, SpanRecord};

/// Aggregated wall-clock attribution for one span kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The span kind this row aggregates.
    pub kind: SpanKind,
    /// Spans of this kind recorded.
    pub count: u64,
    /// Sum of span durations (children included), saturating.
    pub inclusive_ns: u64,
    /// Inclusive time minus direct children's inclusive time: wall-clock
    /// spent at this level itself, saturating at zero per span (clock
    /// skew across worker threads can make a child appear longer than
    /// its parent).
    pub exclusive_ns: u64,
}

/// Folds `spans` into one entry per kind that actually occurs, ordered
/// by hierarchy level (outermost first).
#[must_use]
pub fn compute(spans: &[SpanRecord]) -> Vec<ProfileEntry> {
    if spans.is_empty() {
        return Vec::new();
    }
    // Direct-children inclusive time, keyed by parent span id.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(parent) = s.parent {
            let slot = child_ns.entry(parent.0).or_insert(0);
            *slot = slot.saturating_add(s.duration_ns());
        }
    }
    const ORDER: [SpanKind; 6] = [
        SpanKind::WidthSearch,
        SpanKind::Attempt,
        SpanKind::Pass,
        SpanKind::Commit,
        SpanKind::Net,
        SpanKind::Phase,
    ];
    let mut entries: Vec<ProfileEntry> = ORDER
        .iter()
        .map(|&kind| ProfileEntry {
            kind,
            count: 0,
            inclusive_ns: 0,
            exclusive_ns: 0,
        })
        .collect();
    for s in spans {
        let slot = entries
            .iter_mut()
            .find(|e| e.kind == s.kind)
            .expect("ORDER covers every SpanKind");
        let inclusive = s.duration_ns();
        let children = child_ns.get(&s.id.0).copied().unwrap_or(0);
        slot.count = slot.count.saturating_add(1);
        slot.inclusive_ns = slot.inclusive_ns.saturating_add(inclusive);
        slot.exclusive_ns = slot
            .exclusive_ns
            .saturating_add(inclusive.saturating_sub(children));
    }
    entries.retain(|e| e.count > 0);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn span(
        id: u64,
        parent: Option<u64>,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: parent.map(SpanId),
            kind,
            label: "t",
            index: 0,
            start_ns,
            end_ns,
            thread: 0,
        }
    }

    #[test]
    fn empty_spans_profile_to_nothing() {
        assert!(compute(&[]).is_empty());
    }

    #[test]
    fn inclusive_and_exclusive_attribution() {
        // pass [0,100] > net [10,60] > phase [20,50]; second net [60,90].
        let spans = vec![
            span(1, None, SpanKind::Pass, 0, 100),
            span(2, Some(1), SpanKind::Net, 10, 60),
            span(3, Some(2), SpanKind::Phase, 20, 50),
            span(4, Some(1), SpanKind::Net, 60, 90),
        ];
        let profile = compute(&spans);
        assert_eq!(profile.len(), 3);
        let pass = &profile[0];
        assert_eq!(pass.kind, SpanKind::Pass);
        assert_eq!(pass.count, 1);
        assert_eq!(pass.inclusive_ns, 100);
        assert_eq!(pass.exclusive_ns, 20, "100 - (50 + 30) direct children");
        let net = &profile[1];
        assert_eq!(net.kind, SpanKind::Net);
        assert_eq!(net.count, 2);
        assert_eq!(net.inclusive_ns, 80);
        assert_eq!(net.exclusive_ns, 50, "(50 - 30) + (30 - 0)");
        let phase = &profile[2];
        assert_eq!(phase.kind, SpanKind::Phase);
        assert_eq!(phase.exclusive_ns, 30, "leaves keep their full time");
        assert!(
            profile.windows(2).all(|w| w[0].kind != w[1].kind),
            "one entry per kind"
        );
    }

    #[test]
    fn skewed_child_clocks_saturate_exclusive_at_zero() {
        // A worker-thread child whose recorded duration exceeds the
        // parent's — exclusive must not wrap.
        let spans = vec![
            span(1, None, SpanKind::Pass, 0, 10),
            span(2, Some(1), SpanKind::Net, 0, 50),
        ];
        let profile = compute(&spans);
        let pass = profile.iter().find(|e| e.kind == SpanKind::Pass).unwrap();
        assert_eq!(pass.exclusive_ns, 0);
        assert_eq!(pass.inclusive_ns, 10);
    }
}
