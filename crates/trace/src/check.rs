//! Semantic validation of emitted JSONL telemetry, beyond
//! well-formedness.
//!
//! [`json::validate`](crate::json::validate) only proves a line parses;
//! it will happily accept a counter record whose name no [`Counter`]
//! variant emits (a consumer keying on it would silently read zeros
//! forever) or the same counter emitted twice in one session (a
//! double-merged buffer — the values would double-count). This module
//! checks those session-level invariants line by line:
//!
//! * every `{"type":"counter","name":…}` record names a real
//!   [`Counter`] (the glossary in the README mirrors the same set, and
//!   the `telemetry-sync` lint keeps them aligned);
//! * no counter name repeats within one session — the sinks emit each
//!   nonzero counter exactly once, after the session's `meta` header. A
//!   new `meta` record starts a fresh session (concatenated streams are
//!   valid input).

use std::collections::HashSet;

use crate::counter::Counter;

/// Streaming per-session counter-record checker. Feed lines in file
/// order; `meta` records reset the session scope.
#[derive(Debug, Default)]
pub struct CounterCheck {
    seen: HashSet<&'static str>,
}

/// A semantic violation found by [`CounterCheck::line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// What is wrong with the record.
    pub message: String,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CheckError {}

impl CounterCheck {
    /// A checker with no session in progress.
    #[must_use]
    pub fn new() -> CounterCheck {
        CounterCheck::default()
    }

    /// Checks one (already well-formed) JSONL line.
    ///
    /// # Errors
    ///
    /// An unknown counter name, or a counter repeated since the last
    /// `meta` record.
    pub fn line(&mut self, line: &str) -> Result<(), CheckError> {
        match top_level_str(line, "type").as_deref() {
            Some("meta") => {
                self.seen.clear();
                Ok(())
            }
            Some("counter") => {
                let Some(name) = top_level_str(line, "name") else {
                    return Err(CheckError {
                        message: "counter record has no \"name\" field".to_string(),
                    });
                };
                let Some(known) = Counter::ALL.iter().map(|c| c.name()).find(|n| *n == name)
                else {
                    return Err(CheckError {
                        message: format!(
                            "unknown counter `{name}` (not a trace::Counter variant)"
                        ),
                    });
                };
                if !self.seen.insert(known) {
                    return Err(CheckError {
                        message: format!(
                            "counter `{name}` emitted twice in one session (double-merged buffer?)"
                        ),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// The decoded value of a top-level string field, if present.
///
/// Assumes `input` already passed [`json::validate`](crate::json::validate);
/// on malformed input it simply returns `None`.
fn top_level_str(input: &str, key: &str) -> Option<String> {
    let bytes = input.as_bytes();
    let mut pos = input.find('{')? + 1;
    loop {
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b'}') | None => return None,
            Some(b',') => {
                pos += 1;
                continue;
            }
            _ => {}
        }
        let k = read_string(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        if k == key {
            return read_string(bytes, &mut pos);
        }
        skip_value(bytes, &mut pos)?;
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

/// Reads a JSON string at `pos`, decoding the simple escapes the
/// emitters produce. `None` if `pos` is not at a string.
fn read_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        // \uXXXX — counter/flag names are ASCII, so a
                        // lossy placeholder is fine for matching.
                        *pos += 4;
                        out.push(b'?');
                    }
                    Some(&c) => out.push(c),
                    None => return None,
                }
                *pos += 1;
            }
            _ => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    None
}

/// Skips one JSON value (scalar, object, or array) at `pos`.
fn skip_value(bytes: &[u8], pos: &mut usize) -> Option<()> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'"' => {
            read_string(bytes, pos)?;
        }
        b'{' | b'[' => {
            let mut depth = 0i64;
            loop {
                match bytes.get(*pos)? {
                    b'{' | b'[' => {
                        depth += 1;
                        *pos += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        *pos += 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    b'"' => {
                        read_string(bytes, pos)?;
                    }
                    _ => *pos += 1,
                }
            }
        }
        _ => {
            while let Some(&b) = bytes.get(*pos) {
                if matches!(b, b',' | b'}' | b']') {
                    break;
                }
                *pos += 1;
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_counters_pass_and_unknown_fail() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"meta","clock":"x"}"#).unwrap();
        c.line(r#"{"type":"counter","name":"dijkstra_runs","value":3}"#)
            .unwrap();
        let err = c
            .line(r#"{"type":"counter","name":"no_such_counter","value":1}"#)
            .unwrap_err();
        assert!(err.message.contains("no_such_counter"));
    }

    #[test]
    fn duplicates_within_a_session_fail() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"counter","name":"nets_routed","value":1}"#)
            .unwrap();
        let err = c
            .line(r#"{"type":"counter","name":"nets_routed","value":2}"#)
            .unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn meta_resets_the_session_scope() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"counter","name":"nets_routed","value":1}"#)
            .unwrap();
        c.line(r#"{"type":"meta"}"#).unwrap();
        c.line(r#"{"type":"counter","name":"nets_routed","value":1}"#)
            .unwrap();
    }

    #[test]
    fn non_counter_records_are_ignored() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"span","name":"dijkstra_runs","id":1}"#).unwrap();
        c.line(r#"{"type":"span","name":"dijkstra_runs","id":2}"#).unwrap();
        c.line(r#"{"value":1}"#).unwrap();
    }

    #[test]
    fn field_extraction_handles_order_nesting_and_escapes() {
        assert_eq!(
            top_level_str(r#"{"value":7,"extra":{"type":"x"},"type":"counter"}"#, "type"),
            Some("counter".to_string())
        );
        assert_eq!(
            top_level_str(r#"{"list":[1,2,{"type":"inner"}],"name":"a\"b"}"#, "name"),
            Some("a\"b".to_string())
        );
        assert_eq!(top_level_str(r#"{"type":7}"#, "type"), None);
        assert_eq!(top_level_str(r#"{}"#, "type"), None);
    }

    #[test]
    fn counter_record_without_name_fails() {
        let err = CounterCheck::new()
            .line(r#"{"type":"counter","value":1}"#)
            .unwrap_err();
        assert!(err.message.contains("no \"name\""));
    }
}
