//! Semantic validation of emitted JSONL telemetry, beyond
//! well-formedness.
//!
//! [`json::validate`](crate::json::validate) only proves a line parses;
//! it will happily accept a counter record whose name no [`Counter`]
//! variant emits (a consumer keying on it would silently read zeros
//! forever) or the same counter emitted twice in one session (a
//! double-merged buffer — the values would double-count). This module
//! checks those session-level invariants line by line:
//!
//! * every `{"type":"counter","name":…}` record names a real
//!   [`Counter`] (the glossary in the README mirrors the same set, and
//!   the `telemetry-sync` lint keeps them aligned);
//! * no counter name repeats within one session — the sinks emit each
//!   nonzero counter exactly once, after the session's `meta` header. A
//!   new `meta` record starts a fresh session (concatenated streams are
//!   valid input).
//!
//! [`RecordCheck`] extends this to the full observability surface:
//! every typed record must use a type from [`RECORD_TYPES`], histogram
//! and gauge names must be real [`Metric`]/[`Gauge`] variants (deduped
//! per session like counters), durations and timestamps must be finite
//! non-negative integers with `end_ns >= start_ns`, and congestion
//! records must carry a non-empty occupancy histogram (a zero-width
//! histogram means the snapshot was built against no channel at all —
//! always a producer bug). Records *without* a `type` field still pass:
//! the JSONL contract only constrains the records this crate emits.

use std::collections::HashSet;

use crate::counter::Counter;
use crate::json::JsonValue;
use crate::metrics::{Gauge, Metric};
use crate::span::SpanKind;

/// Every record type the sinks can emit. `trace-check` rejects typed
/// records outside this list, and the `telemetry-sync` lint requires
/// each to be documented in the README metric glossary.
pub const RECORD_TYPES: [&str; 9] = [
    "meta",
    "span",
    "counter",
    "congestion",
    "histogram",
    "gauge",
    "profile",
    "convergence",
    "timeline",
];

/// Streaming per-session counter-record checker. Feed lines in file
/// order; `meta` records reset the session scope.
#[derive(Debug, Default)]
pub struct CounterCheck {
    seen: HashSet<&'static str>,
}

/// A semantic violation found by [`CounterCheck::line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// What is wrong with the record.
    pub message: String,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CheckError {}

impl CounterCheck {
    /// A checker with no session in progress.
    #[must_use]
    pub fn new() -> CounterCheck {
        CounterCheck::default()
    }

    /// Checks one (already well-formed) JSONL line.
    ///
    /// # Errors
    ///
    /// An unknown counter name, or a counter repeated since the last
    /// `meta` record.
    pub fn line(&mut self, line: &str) -> Result<(), CheckError> {
        match top_level_str(line, "type").as_deref() {
            Some("meta") => {
                self.seen.clear();
                Ok(())
            }
            Some("counter") => {
                let Some(name) = top_level_str(line, "name") else {
                    return Err(CheckError {
                        message: "counter record has no \"name\" field".to_string(),
                    });
                };
                let Some(known) = Counter::ALL.iter().map(|c| c.name()).find(|n| *n == name)
                else {
                    return Err(CheckError {
                        message: format!(
                            "unknown counter `{name}` (not a trace::Counter variant)"
                        ),
                    });
                };
                if !self.seen.insert(known) {
                    return Err(CheckError {
                        message: format!(
                            "counter `{name}` emitted twice in one session (double-merged buffer?)"
                        ),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Streaming per-session checker for the full record surface (the
/// strict superset of [`CounterCheck`] the CLI's `trace-check` runs).
/// Feed well-formed lines in file order; `meta` records reset the
/// session scope.
#[derive(Debug, Default)]
pub struct RecordCheck {
    counters: CounterCheck,
    histograms_seen: HashSet<&'static str>,
    gauges_seen: HashSet<&'static str>,
}

impl RecordCheck {
    /// A checker with no session in progress.
    #[must_use]
    pub fn new() -> RecordCheck {
        RecordCheck::default()
    }

    /// Checks one (already well-formed) JSONL line.
    ///
    /// # Errors
    ///
    /// Unknown record types, unknown/duplicate counter, histogram, or
    /// gauge names, non-finite or negative durations/timestamps,
    /// `end_ns < start_ns` spans, unknown profile kinds, and zero-width
    /// (empty-histogram) congestion records.
    pub fn line(&mut self, line: &str) -> Result<(), CheckError> {
        let doc = JsonValue::parse(line).map_err(|e| CheckError {
            message: format!("malformed JSON: {e}"),
        })?;
        let Some(kind) = doc.get("type").and_then(JsonValue::as_str) else {
            // Untyped records (or a non-string `type`) are outside the
            // contract this checker enforces.
            return Ok(());
        };
        if !RECORD_TYPES.contains(&kind) {
            return Err(CheckError {
                message: format!("unknown record type `{kind}` (not emitted by route-trace)"),
            });
        }
        match kind {
            "meta" => {
                self.histograms_seen.clear();
                self.gauges_seen.clear();
                self.counters.line(line)
            }
            "counter" => self.counters.line(line),
            "span" => {
                let start = req_u64(&doc, "span", "start_ns")?;
                let end = req_u64(&doc, "span", "end_ns")?;
                if end < start {
                    return Err(CheckError {
                        message: format!(
                            "span record has end_ns {end} before start_ns {start}"
                        ),
                    });
                }
                Ok(())
            }
            "histogram" => {
                let name = req_name(&doc, "histogram")?;
                let Some(known) = Metric::ALL.iter().map(|m| m.name()).find(|n| *n == name)
                else {
                    return Err(CheckError {
                        message: format!("unknown histogram `{name}` (not a trace::Metric variant)"),
                    });
                };
                if !self.histograms_seen.insert(known) {
                    return Err(CheckError {
                        message: format!("histogram `{name}` emitted twice in one session"),
                    });
                }
                for key in ["count", "sum", "mean", "p50", "p95", "p99", "max"] {
                    req_u64(&doc, "histogram", key)?;
                }
                Ok(())
            }
            "gauge" => {
                let name = req_name(&doc, "gauge")?;
                let Some(known) = Gauge::ALL.iter().map(|g| g.name()).find(|n| *n == name)
                else {
                    return Err(CheckError {
                        message: format!("unknown gauge `{name}` (not a trace::Gauge variant)"),
                    });
                };
                if !self.gauges_seen.insert(known) {
                    return Err(CheckError {
                        message: format!("gauge `{name}` emitted twice in one session"),
                    });
                }
                req_u64(&doc, "gauge", "value")?;
                Ok(())
            }
            "profile" => {
                let Some(name) = doc.get("kind").and_then(JsonValue::as_str) else {
                    return Err(CheckError {
                        message: "profile record has no \"kind\" field".to_string(),
                    });
                };
                const KINDS: [SpanKind; 6] = [
                    SpanKind::WidthSearch,
                    SpanKind::Attempt,
                    SpanKind::Pass,
                    SpanKind::Net,
                    SpanKind::Phase,
                    SpanKind::Commit,
                ];
                if !KINDS.iter().any(|k| k.name() == name) {
                    return Err(CheckError {
                        message: format!("unknown profile kind `{name}` (not a span kind)"),
                    });
                }
                for key in ["count", "inclusive_ns", "exclusive_ns"] {
                    req_u64(&doc, "profile", key)?;
                }
                Ok(())
            }
            "convergence" => {
                for key in [
                    "iteration",
                    "overcapacity",
                    "history_milli",
                    "nets_rerouted",
                    "present_milli",
                    "dirty_nets",
                ] {
                    req_u64(&doc, "convergence", key)?;
                }
                Ok(())
            }
            "timeline" => {
                for key in ["pass", "worker", "busy_ns", "nets", "steals", "stalls"] {
                    req_u64(&doc, "timeline", key)?;
                }
                Ok(())
            }
            "congestion" => {
                match doc.get("histogram").and_then(JsonValue::as_array) {
                    None => Err(CheckError {
                        message: "congestion record has no \"histogram\" array".to_string(),
                    }),
                    Some([]) => Err(CheckError {
                        message:
                            "congestion record has a zero-width (empty) occupancy histogram"
                                .to_string(),
                    }),
                    Some(_) => Ok(()),
                }
            }
            _ => Ok(()),
        }
    }
}

/// Requires `doc[key]` to be a finite, non-negative, integral number.
fn req_u64(doc: &JsonValue, record: &str, key: &str) -> Result<u64, CheckError> {
    let Some(value) = doc.get(key) else {
        return Err(CheckError {
            message: format!("{record} record has no \"{key}\" field"),
        });
    };
    value.as_u64().ok_or_else(|| CheckError {
        message: format!(
            "{record} record field \"{key}\" must be a finite non-negative integer, got {value:?}"
        ),
    })
}

/// Requires a string `name` field.
fn req_name(doc: &JsonValue, record: &str) -> Result<String, CheckError> {
    doc.get("name")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| CheckError {
            message: format!("{record} record has no \"name\" field"),
        })
}

/// The decoded value of a top-level string field, if present.
///
/// Assumes `input` already passed [`json::validate`](crate::json::validate);
/// on malformed input it simply returns `None`.
fn top_level_str(input: &str, key: &str) -> Option<String> {
    let bytes = input.as_bytes();
    let mut pos = input.find('{')? + 1;
    loop {
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b'}') | None => return None,
            Some(b',') => {
                pos += 1;
                continue;
            }
            _ => {}
        }
        let k = read_string(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        if k == key {
            return read_string(bytes, &mut pos);
        }
        skip_value(bytes, &mut pos)?;
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

/// Reads a JSON string at `pos`, decoding the simple escapes the
/// emitters produce. `None` if `pos` is not at a string.
fn read_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        // \uXXXX — counter/flag names are ASCII, so a
                        // lossy placeholder is fine for matching.
                        *pos += 4;
                        out.push(b'?');
                    }
                    Some(&c) => out.push(c),
                    None => return None,
                }
                *pos += 1;
            }
            _ => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    None
}

/// Skips one JSON value (scalar, object, or array) at `pos`.
fn skip_value(bytes: &[u8], pos: &mut usize) -> Option<()> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'"' => {
            read_string(bytes, pos)?;
        }
        b'{' | b'[' => {
            let mut depth = 0i64;
            loop {
                match bytes.get(*pos)? {
                    b'{' | b'[' => {
                        depth += 1;
                        *pos += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        *pos += 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    b'"' => {
                        read_string(bytes, pos)?;
                    }
                    _ => *pos += 1,
                }
            }
        }
        _ => {
            while let Some(&b) = bytes.get(*pos) {
                if matches!(b, b',' | b'}' | b']') {
                    break;
                }
                *pos += 1;
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_counters_pass_and_unknown_fail() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"meta","clock":"x"}"#).unwrap();
        c.line(r#"{"type":"counter","name":"dijkstra_runs","value":3}"#)
            .unwrap();
        let err = c
            .line(r#"{"type":"counter","name":"no_such_counter","value":1}"#)
            .unwrap_err();
        assert!(err.message.contains("no_such_counter"));
    }

    #[test]
    fn duplicates_within_a_session_fail() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"counter","name":"nets_routed","value":1}"#)
            .unwrap();
        let err = c
            .line(r#"{"type":"counter","name":"nets_routed","value":2}"#)
            .unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn meta_resets_the_session_scope() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"counter","name":"nets_routed","value":1}"#)
            .unwrap();
        c.line(r#"{"type":"meta"}"#).unwrap();
        c.line(r#"{"type":"counter","name":"nets_routed","value":1}"#)
            .unwrap();
    }

    #[test]
    fn non_counter_records_are_ignored() {
        let mut c = CounterCheck::new();
        c.line(r#"{"type":"span","name":"dijkstra_runs","id":1}"#).unwrap();
        c.line(r#"{"type":"span","name":"dijkstra_runs","id":2}"#).unwrap();
        c.line(r#"{"value":1}"#).unwrap();
    }

    #[test]
    fn field_extraction_handles_order_nesting_and_escapes() {
        assert_eq!(
            top_level_str(r#"{"value":7,"extra":{"type":"x"},"type":"counter"}"#, "type"),
            Some("counter".to_string())
        );
        assert_eq!(
            top_level_str(r#"{"list":[1,2,{"type":"inner"}],"name":"a\"b"}"#, "name"),
            Some("a\"b".to_string())
        );
        assert_eq!(top_level_str(r#"{"type":7}"#, "type"), None);
        assert_eq!(top_level_str(r#"{}"#, "type"), None);
    }

    #[test]
    fn counter_record_without_name_fails() {
        let err = CounterCheck::new()
            .line(r#"{"type":"counter","value":1}"#)
            .unwrap_err();
        assert!(err.message.contains("no \"name\""));
    }

    #[test]
    fn record_check_accepts_a_full_session() {
        let mut c = RecordCheck::new();
        for line in [
            r#"{"type":"meta","format":"route-trace","version":1,"spans":2,"snapshots":1}"#,
            r#"{"type":"span","id":1,"parent":0,"kind":"pass","label":"pass","index":1,"start_ns":5,"end_ns":90,"thread":0}"#,
            r#"{"type":"counter","name":"nets_routed","value":3}"#,
            r#"{"type":"histogram","name":"net_route_ns","count":2,"sum":100,"mean":50,"p50":63,"p95":63,"p99":63,"max":60,"buckets":[[6,2]]}"#,
            r#"{"type":"gauge","name":"sched_workers","value":4}"#,
            r#"{"type":"profile","kind":"pass","count":1,"inclusive_ns":85,"exclusive_ns":20}"#,
            r#"{"type":"convergence","iteration":1,"overcapacity":9,"history_milli":120,"nets_rerouted":4,"present_milli":250,"dirty_nets":6}"#,
            r#"{"type":"timeline","pass":1,"worker":0,"role":"worker","busy_ns":70,"nets":2,"steals":0,"stalls":1}"#,
            r#"{"type":"congestion","pass":1,"channel_width":4,"positions":2,"used_positions":2,"histogram":[0,1,1],"max_occupancy":2,"mean_occupancy_milli":1500,"saturated_positions":0,"overused_positions":0,"max_overuse":0}"#,
            r#"{"a":[1,2]}"#,
        ] {
            c.line(line)
                .unwrap_or_else(|e| panic!("line should pass: {line}: {e}"));
        }
    }

    #[test]
    fn record_check_rejects_unknown_record_types_and_names() {
        let mut c = RecordCheck::new();
        let err = c.line(r#"{"type":"mystery","x":1}"#).unwrap_err();
        assert!(err.message.contains("unknown record type `mystery`"));
        let err = c
            .line(r#"{"type":"histogram","name":"no_such_metric","count":1,"sum":1,"mean":1,"p50":1,"p95":1,"p99":1,"max":1,"buckets":[]}"#)
            .unwrap_err();
        assert!(err.message.contains("unknown histogram `no_such_metric`"));
        let err = c
            .line(r#"{"type":"gauge","name":"no_such_gauge","value":1}"#)
            .unwrap_err();
        assert!(err.message.contains("unknown gauge `no_such_gauge`"));
        let err = c
            .line(r#"{"type":"profile","kind":"warp","count":1,"inclusive_ns":1,"exclusive_ns":1}"#)
            .unwrap_err();
        assert!(err.message.contains("unknown profile kind `warp`"));
    }

    #[test]
    fn record_check_rejects_negative_and_nonfinite_durations() {
        let mut c = RecordCheck::new();
        let err = c
            .line(r#"{"type":"span","id":1,"start_ns":-5,"end_ns":10}"#)
            .unwrap_err();
        assert!(err.message.contains("start_ns"), "{}", err.message);
        // 1e999 overflows f64 to +inf — syntactically valid JSON, but
        // not a finite duration.
        let err = c
            .line(r#"{"type":"span","id":1,"start_ns":0,"end_ns":1e999}"#)
            .unwrap_err();
        assert!(err.message.contains("end_ns"), "{}", err.message);
        let err = c
            .line(r#"{"type":"timeline","pass":1,"worker":0,"busy_ns":1.5,"nets":0,"steals":0,"stalls":0}"#)
            .unwrap_err();
        assert!(err.message.contains("busy_ns"), "{}", err.message);
        let err = c
            .line(r#"{"type":"span","id":1,"start_ns":50,"end_ns":10}"#)
            .unwrap_err();
        assert!(err.message.contains("before start_ns"), "{}", err.message);
    }

    #[test]
    fn record_check_rejects_zero_width_congestion_histograms() {
        let mut c = RecordCheck::new();
        let err = c
            .line(r#"{"type":"congestion","pass":1,"histogram":[]}"#)
            .unwrap_err();
        assert!(err.message.contains("zero-width"));
        let err = c.line(r#"{"type":"congestion","pass":1}"#).unwrap_err();
        assert!(err.message.contains("no \"histogram\""));
    }

    #[test]
    fn record_check_dedups_histograms_and_gauges_per_session() {
        let mut c = RecordCheck::new();
        let hist = r#"{"type":"histogram","name":"net_route_ns","count":1,"sum":1,"mean":1,"p50":1,"p95":1,"p99":1,"max":1,"buckets":[[1,1]]}"#;
        c.line(hist).unwrap();
        assert!(c.line(hist).unwrap_err().message.contains("twice"));
        let gauge = r#"{"type":"gauge","name":"min_channel_width","value":9}"#;
        c.line(gauge).unwrap();
        assert!(c.line(gauge).unwrap_err().message.contains("twice"));
        // A new meta header starts a fresh session.
        c.line(r#"{"type":"meta"}"#).unwrap();
        c.line(hist).unwrap();
        c.line(gauge).unwrap();
    }
}
