//! Algorithm counters: a fixed, cheap-to-increment set of event tallies.
//!
//! Counters answer "*where does the router spend effort*" questions that
//! wall-clock spans cannot: how many Dijkstra relaxations a pass cost, how
//! many Steiner candidates IGMST priced versus accepted, how often the
//! parallel engine's speculation survived commit. The set is a closed enum
//! so increments compile to an array add with no hashing or allocation.

/// One kind of countable algorithm event.
///
/// The enum is `#[repr(usize)]` and dense, so a [`CounterSet`] stores one
/// `u64` slot per variant and increments are branch-free array adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Dijkstra single-source runs started (including early-terminated).
    DijkstraRuns,
    /// Nodes settled by popping the Dijkstra priority queue.
    DijkstraHeapPops,
    /// Edge relaxations examined during Dijkstra runs.
    DijkstraRelaxations,
    /// Steiner candidates priced by the IGMST/IDOM iterated template.
    SteinerCandidatesEvaluated,
    /// Steiner candidates accepted into the growing Steiner set.
    SteinerCandidatesAccepted,
    /// Candidate-evaluation rounds executed by the iterated template.
    SteinerRounds,
    /// KMB constructions performed (distance-MST + expansion + prune).
    KmbConstructions,
    /// Terminal triples whose best meeting point ZEL evaluated.
    ZelTriplesEvaluated,
    /// Triples ZEL contracted (meeting point adopted into the net).
    ZelTriplesContracted,
    /// Pair merges folded at a `MaxDom` point by PFA.
    PfaFolds,
    /// Dominance tests performed by PFA's `MaxDom` scans.
    PfaDominanceChecks,
    /// Sink-to-dominated-node connections priced or built by DOM.
    DomConnections,
    /// Whole nets routed (every attempt, speculative or sequential).
    NetsRouted,
    /// Working-graph clones taken (pass graphs and per-worker snapshots).
    GraphSnapshotClones,
    /// Copy-on-write overlay binds (one per worker per batch wave).
    OverlayBinds,
    /// O(1) overlay resets (generation bumps restoring the base state).
    OverlayResets,
    /// Speculative routings committed unchanged by the conflict detector.
    ConflictAccepts,
    /// Speculative routings discarded and re-routed sequentially.
    ConflictReroutes,
    /// Ready nets taken from another worker's deque by an idle worker.
    SchedSteals,
    /// Times a scheduler worker found no ready net and parked.
    SchedStalls,
    /// Speculations rejected at commit and requeued against a fresh
    /// commit sequence by the wavefront scheduler.
    SchedRespeculations,
    /// Per-terminal Dijkstra fan-outs (one per net whose distance runs
    /// were spread across intra-net worker threads).
    DijkstraFanouts,
    /// Negotiated-congestion iterations executed (route phase + cost
    /// update), converged or not.
    PathfinderIterations,
    /// Nodes found over capacity by negotiated-congestion convergence
    /// checks, summed across iterations.
    PathfinderOvercapacityNodes,
    /// History-cost accumulations applied by the negotiated-congestion
    /// cost-update phase (one per over-capacity node per iteration).
    PathfinderHistoryUpdates,
    /// Nets selected as dirty (touching an over-capacity node, or stale
    /// past the slack bound) and rerouted by a selective-mode iteration.
    PathfinderDirtyNets,
    /// Nets whose trees were kept as-is by a selective-mode iteration
    /// (their usage stays in the tally without a reroute).
    PathfinderSkippedNets,
    /// Edges rewritten by the negotiated-congestion cost update, full
    /// sweeps and incremental (delta) sweeps combined.
    PathfinderRepricedEdges,
    /// Frontier nodes a goal-oriented (A*) kernel query left unsettled
    /// in the heap at early exit — work plain Dijkstra would have done.
    AstarPrunedNodes,
    /// Heap inserts plus strict decrease-key accepts across all kernel
    /// queries (guided or plain).
    HeapPushes,
    /// Lower-bound potential constructions (grid-Manhattan or landmark
    /// tables) built for goal-oriented kernel queries.
    LowerboundBuilds,
}

impl Counter {
    /// Every counter, in declaration order (the dense index order).
    pub const ALL: [Counter; 31] = [
        Counter::DijkstraRuns,
        Counter::DijkstraHeapPops,
        Counter::DijkstraRelaxations,
        Counter::SteinerCandidatesEvaluated,
        Counter::SteinerCandidatesAccepted,
        Counter::SteinerRounds,
        Counter::KmbConstructions,
        Counter::ZelTriplesEvaluated,
        Counter::ZelTriplesContracted,
        Counter::PfaFolds,
        Counter::PfaDominanceChecks,
        Counter::DomConnections,
        Counter::NetsRouted,
        Counter::GraphSnapshotClones,
        Counter::OverlayBinds,
        Counter::OverlayResets,
        Counter::ConflictAccepts,
        Counter::ConflictReroutes,
        Counter::SchedSteals,
        Counter::SchedStalls,
        Counter::SchedRespeculations,
        Counter::DijkstraFanouts,
        Counter::PathfinderIterations,
        Counter::PathfinderOvercapacityNodes,
        Counter::PathfinderHistoryUpdates,
        Counter::PathfinderDirtyNets,
        Counter::PathfinderSkippedNets,
        Counter::PathfinderRepricedEdges,
        Counter::AstarPrunedNodes,
        Counter::HeapPushes,
        Counter::LowerboundBuilds,
    ];

    /// Stable snake_case name used in emitted JSON and summary tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::DijkstraRuns => "dijkstra_runs",
            Counter::DijkstraHeapPops => "dijkstra_heap_pops",
            Counter::DijkstraRelaxations => "dijkstra_relaxations",
            Counter::SteinerCandidatesEvaluated => "steiner_candidates_evaluated",
            Counter::SteinerCandidatesAccepted => "steiner_candidates_accepted",
            Counter::SteinerRounds => "steiner_rounds",
            Counter::KmbConstructions => "kmb_constructions",
            Counter::ZelTriplesEvaluated => "zel_triples_evaluated",
            Counter::ZelTriplesContracted => "zel_triples_contracted",
            Counter::PfaFolds => "pfa_folds",
            Counter::PfaDominanceChecks => "pfa_dominance_checks",
            Counter::DomConnections => "dom_connections",
            Counter::NetsRouted => "nets_routed",
            Counter::GraphSnapshotClones => "graph_snapshot_clones",
            Counter::OverlayBinds => "overlay_binds",
            Counter::OverlayResets => "overlay_resets",
            Counter::ConflictAccepts => "conflict_accepts",
            Counter::ConflictReroutes => "conflict_reroutes",
            Counter::SchedSteals => "sched_steals",
            Counter::SchedStalls => "sched_stalls",
            Counter::SchedRespeculations => "sched_respeculations",
            Counter::DijkstraFanouts => "dijkstra_fanouts",
            Counter::PathfinderIterations => "pathfinder_iterations",
            Counter::PathfinderOvercapacityNodes => "pathfinder_overcapacity_nodes",
            Counter::PathfinderHistoryUpdates => "pathfinder_history_updates",
            Counter::PathfinderDirtyNets => "pathfinder_dirty_nets",
            Counter::PathfinderSkippedNets => "pathfinder_skipped_nets",
            Counter::PathfinderRepricedEdges => "pathfinder_repriced_edges",
            Counter::AstarPrunedNodes => "astar_pruned_nodes",
            Counter::HeapPushes => "heap_pushes",
            Counter::LowerboundBuilds => "lowerbound_builds",
        }
    }
}

/// A dense tally of every [`Counter`], mergeable across worker buffers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterSet {
    slots: [u64; Counter::ALL.len()],
}

impl CounterSet {
    /// An all-zero set.
    #[must_use]
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Adds `n` to one counter, saturating at `u64::MAX`.
    pub fn add(&mut self, c: Counter, n: u64) {
        let slot = &mut self.slots[c as usize];
        *slot = slot.saturating_add(n);
    }

    /// The current tally of one counter.
    #[must_use]
    pub fn get(&self, c: Counter) -> u64 {
        self.slots[c as usize]
    }

    /// Folds another set into this one (per-worker buffer merge).
    pub fn merge(&mut self, other: &CounterSet) {
        for (dst, src) in self.slots.iter_mut().zip(other.slots.iter()) {
            *dst = dst.saturating_add(*src);
        }
    }

    /// `true` if every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&v| v == 0)
    }

    /// Iterates `(counter, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Iterates only the counters with nonzero tallies.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.iter().filter(|&(_, v)| v != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_round_trip() {
        let mut s = CounterSet::new();
        assert!(s.is_empty());
        s.add(Counter::DijkstraHeapPops, 3);
        s.add(Counter::DijkstraHeapPops, 4);
        assert_eq!(s.get(Counter::DijkstraHeapPops), 7);
        assert_eq!(s.get(Counter::PfaFolds), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn merge_sums_slotwise() {
        let mut a = CounterSet::new();
        let mut b = CounterSet::new();
        a.add(Counter::NetsRouted, 2);
        b.add(Counter::NetsRouted, 5);
        b.add(Counter::ConflictAccepts, 1);
        a.merge(&b);
        assert_eq!(a.get(Counter::NetsRouted), 7);
        assert_eq!(a.get(Counter::ConflictAccepts), 1);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut a = CounterSet::new();
        a.add(Counter::NetsRouted, u64::MAX);
        a.add(Counter::NetsRouted, 10);
        assert_eq!(a.get(Counter::NetsRouted), u64::MAX);
        let mut b = CounterSet::new();
        b.add(Counter::NetsRouted, 1);
        a.merge(&b);
        assert_eq!(a.get(Counter::NetsRouted), u64::MAX);
    }

    #[test]
    fn names_are_unique_and_cover_all() {
        let names: std::collections::HashSet<&str> =
            Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn nonzero_iteration_skips_zeros() {
        let mut s = CounterSet::new();
        s.add(Counter::ZelTriplesEvaluated, 9);
        let nz: Vec<_> = s.iter_nonzero().collect();
        assert_eq!(nz, vec![(Counter::ZelTriplesEvaluated, 9)]);
    }
}
