//! Property tests for the graph substrate, checked against model
//! implementations.

use proptest::prelude::*;
use rand::SeedableRng;

use route_graph::dsu::UnionFind;
use route_graph::heap::IndexedBinaryHeap;
use route_graph::random::random_connected_graph;
use route_graph::{Graph, GraphError, NodeId, Path, ShortestPaths, Weight};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The indexed heap behaves like a sorted map under push/decrease/pop.
    #[test]
    fn heap_matches_model(ops in prop::collection::vec((0usize..24, 0u64..500), 1..120)) {
        let mut heap = IndexedBinaryHeap::new(24);
        let mut model: std::collections::BTreeMap<usize, u64> = Default::default();
        for (key, priority) in ops {
            heap.push(key, priority);
            let entry = model.entry(key).or_insert(u64::MAX);
            *entry = (*entry).min(priority);
        }
        prop_assert_eq!(heap.len(), model.len());
        let mut last = 0u64;
        while let Some((key, priority)) = heap.pop() {
            prop_assert!(priority >= last, "heap violated ordering");
            last = priority;
            prop_assert_eq!(model.remove(&key), Some(priority));
        }
        prop_assert!(model.is_empty());
    }

    /// Union-find agrees with naive component labelling.
    #[test]
    fn dsu_matches_model(unions in prop::collection::vec((0usize..16, 0usize..16), 0..40)) {
        let mut uf = UnionFind::new(16);
        let mut label: Vec<usize> = (0..16).collect();
        for (a, b) in unions {
            uf.union(a, b);
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..16 {
            for b in 0..16 {
                prop_assert_eq!(uf.connected(a, b), label[a] == label[b]);
            }
        }
        let distinct: std::collections::HashSet<usize> = label.iter().copied().collect();
        prop_assert_eq!(uf.set_count(), distinct.len());
    }

    /// Arbitrary interleavings of edge removal/restoration keep the live
    /// counters and usability predicates consistent.
    #[test]
    fn removal_counters_stay_consistent(
        seed in 0u64..10_000,
        ops in prop::collection::vec((any::<bool>(), 0usize..40), 0..60),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = random_connected_graph(10, 20, 1..5, &mut rng).unwrap();
        let mut removed = std::collections::HashSet::new();
        for (remove, raw) in ops {
            let e = route_graph::EdgeId::from_index(raw % g.edge_count());
            if remove {
                g.remove_edge(e).unwrap();
                removed.insert(e);
            } else {
                g.restore_edge(e).unwrap();
                removed.remove(&e);
            }
        }
        prop_assert_eq!(g.live_edge_count(), g.edge_count() - removed.len());
        for e in (0..g.edge_count()).map(route_graph::EdgeId::from_index) {
            prop_assert_eq!(g.is_edge_usable(e), !removed.contains(&e));
        }
    }

    /// Dijkstra distances satisfy the relaxation inequality on every edge
    /// (certificate of optimality) and the parent decomposition is exact.
    #[test]
    fn dijkstra_certificate(seed in 0u64..10_000, n in 2usize..20, extra in 0usize..25) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(n, n - 1 + extra, 1..9, &mut rng).unwrap();
        let src = g.node_ids().next().unwrap();
        let sp = ShortestPaths::run(&g, src).unwrap();
        for e in g.edge_ids() {
            let (a, b) = g.endpoints(e).unwrap();
            let w = g.weight(e).unwrap();
            if let (Some(da), Some(db)) = (sp.dist(a), sp.dist(b)) {
                prop_assert!(db <= da + w);
                prop_assert!(da <= db + w);
            }
        }
        for v in g.node_ids() {
            if let Some((p, e)) = sp.parent(v) {
                prop_assert_eq!(
                    sp.dist(v).unwrap(),
                    sp.dist(p).unwrap() + g.weight(e).unwrap()
                );
            }
        }
    }

    /// Extracted paths validate through the public `Path::from_parts`
    /// checker.
    #[test]
    fn extracted_paths_are_valid_walks(seed in 0u64..10_000, n in 2usize..16) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(n, 2 * n, 1..9, &mut rng).unwrap();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let sp = ShortestPaths::run(&g, ids[0]).unwrap();
        for &t in &ids {
            let path = sp.path_to(t).unwrap();
            let rebuilt = Path::from_parts(&g, path.nodes().to_vec(), path.edges().to_vec())
                .unwrap();
            prop_assert_eq!(rebuilt.cost(), path.cost());
        }
    }
}

#[test]
fn self_loop_and_bounds_errors_are_stable() {
    let mut g = Graph::with_nodes(2);
    let ids: Vec<NodeId> = g.node_ids().collect();
    assert_eq!(
        g.add_edge(ids[0], ids[0], Weight::UNIT),
        Err(GraphError::SelfLoop(ids[0]))
    );
    let ghost = NodeId::from_index(5);
    assert_eq!(
        g.add_edge(ids[0], ghost, Weight::UNIT),
        Err(GraphError::NodeOutOfBounds(ghost))
    );
}
