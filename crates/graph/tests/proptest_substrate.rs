//! Property tests for the graph substrate, checked against model
//! implementations.
//!
//! Cases are generated from the vendored [`route_graph::rng`] PRNG rather
//! than `proptest` so the suite builds with no network access; each test
//! sweeps a fixed number of seeded cases and reports the failing seed on
//! assertion failure.

use route_graph::dsu::UnionFind;
use route_graph::heap::IndexedBinaryHeap;
use route_graph::random::random_connected_graph;
use route_graph::rng::{Rng, SplitMix64};
use route_graph::{Graph, GraphError, NodeId, Path, ShortestPaths, Weight};

const CASES: u64 = 48;

/// The indexed heap behaves like a sorted map under push/decrease/pop.
#[test]
fn heap_matches_model() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let op_count = rng.gen_range(1..120usize);
        let mut heap = IndexedBinaryHeap::new(24);
        let mut model: std::collections::BTreeMap<usize, u64> = Default::default();
        for _ in 0..op_count {
            let key = rng.gen_range(0..24usize);
            let priority = rng.gen_range(0..500u64);
            heap.push(key, priority);
            let entry = model.entry(key).or_insert(u64::MAX);
            *entry = (*entry).min(priority);
        }
        assert_eq!(heap.len(), model.len(), "seed {seed}");
        let mut last = 0u64;
        while let Some((key, priority)) = heap.pop() {
            assert!(priority >= last, "seed {seed}: heap violated ordering");
            last = priority;
            assert_eq!(model.remove(&key), Some(priority), "seed {seed}");
        }
        assert!(model.is_empty(), "seed {seed}");
    }
}

/// Union-find agrees with naive component labelling.
#[test]
fn dsu_matches_model() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let union_count = rng.gen_range(0..40usize);
        let mut uf = UnionFind::new(16);
        let mut label: Vec<usize> = (0..16).collect();
        for _ in 0..union_count {
            let a = rng.gen_range(0..16usize);
            let b = rng.gen_range(0..16usize);
            uf.union(a, b);
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(uf.connected(a, b), label[a] == label[b], "seed {seed}");
            }
        }
        let distinct: std::collections::HashSet<usize> = label.iter().copied().collect();
        assert_eq!(uf.set_count(), distinct.len(), "seed {seed}");
    }
}

/// Arbitrary interleavings of edge removal/restoration keep the live
/// counters and usability predicates consistent.
#[test]
fn removal_counters_stay_consistent() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut g = random_connected_graph(10, 20, 1..5, &mut rng).unwrap();
        let mut removed = std::collections::HashSet::new();
        let op_count = rng.gen_range(0..60usize);
        for _ in 0..op_count {
            let remove = rng.gen_ratio(1, 2);
            let e = route_graph::EdgeId::from_index(rng.gen_range(0..g.edge_count()));
            if remove {
                g.remove_edge(e).unwrap();
                removed.insert(e);
            } else {
                g.restore_edge(e).unwrap();
                removed.remove(&e);
            }
        }
        assert_eq!(
            g.live_edge_count(),
            g.edge_count() - removed.len(),
            "seed {seed}"
        );
        for e in (0..g.edge_count()).map(route_graph::EdgeId::from_index) {
            assert_eq!(g.is_edge_usable(e), !removed.contains(&e), "seed {seed}");
        }
    }
}

/// Dijkstra distances satisfy the relaxation inequality on every edge
/// (certificate of optimality) and the parent decomposition is exact.
#[test]
fn dijkstra_certificate() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(2..20usize);
        let extra = rng.gen_range(0..25usize);
        let g = random_connected_graph(n, n - 1 + extra, 1..9, &mut rng).unwrap();
        let src = g.node_ids().next().unwrap();
        let sp = ShortestPaths::run(&g, src).unwrap();
        for e in g.edge_ids() {
            let (a, b) = g.endpoints(e).unwrap();
            let w = g.weight(e).unwrap();
            if let (Some(da), Some(db)) = (sp.dist(a), sp.dist(b)) {
                assert!(db <= da + w, "seed {seed}");
                assert!(da <= db + w, "seed {seed}");
            }
        }
        for v in g.node_ids() {
            if let Some((p, e)) = sp.parent(v) {
                assert_eq!(
                    sp.dist(v).unwrap(),
                    sp.dist(p).unwrap() + g.weight(e).unwrap(),
                    "seed {seed}"
                );
            }
        }
    }
}

/// Extracted paths validate through the public `Path::from_parts` checker.
#[test]
fn extracted_paths_are_valid_walks() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(2..16usize);
        let g = random_connected_graph(n, 2 * n, 1..9, &mut rng).unwrap();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let sp = ShortestPaths::run(&g, ids[0]).unwrap();
        for &t in &ids {
            let path = sp.path_to(t).unwrap();
            let rebuilt =
                Path::from_parts(&g, path.nodes().to_vec(), path.edges().to_vec()).unwrap();
            assert_eq!(rebuilt.cost(), path.cost(), "seed {seed}");
        }
    }
}

#[test]
fn self_loop_and_bounds_errors_are_stable() {
    let mut g = Graph::with_nodes(2);
    let ids: Vec<NodeId> = g.node_ids().collect();
    assert_eq!(
        g.add_edge(ids[0], ids[0], Weight::UNIT),
        Err(GraphError::SelfLoop(ids[0]))
    );
    let ghost = NodeId::from_index(5);
    assert_eq!(
        g.add_edge(ids[0], ghost, Weight::UNIT),
        Err(GraphError::NodeOutOfBounds(ghost))
    );
}
