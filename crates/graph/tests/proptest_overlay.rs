//! Property tests: a [`GraphOverlay`] is observationally equal to a
//! mutated clone of its base graph.
//!
//! The parallel routing engine's bit-identity guarantee rests on exactly
//! this equivalence — a speculative construction must see the same
//! liveness, weights, *and adjacency iteration order* through an overlay
//! as it would through `base.clone()` mutated the same way. Cases are
//! generated from the vendored [`route_graph::rng`] PRNG (no external
//! proptest dependency); each test sweeps seeded cases and names the
//! failing seed.

use route_graph::random::random_connected_graph;
use route_graph::rng::{Rng, SplitMix64};
use route_graph::{
    EdgeId, GraphOverlay, GraphView, GraphViewMut, NodeId, OverlayArena, Weight,
};

const CASES: u64 = 32;
const OPS: usize = 60;

/// Asserts every observable of the two views agrees: counts, per-node
/// liveness, per-edge usability and weight, and — critically — the
/// exact neighbor iteration order at every node.
fn assert_same_view<A: GraphView, B: GraphView>(a: &A, b: &B, context: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{context}: node_count");
    assert_eq!(a.edge_count(), b.edge_count(), "{context}: edge_count");
    assert_eq!(
        a.live_node_count(),
        b.live_node_count(),
        "{context}: live_node_count"
    );
    assert_eq!(
        a.live_edge_count(),
        b.live_edge_count(),
        "{context}: live_edge_count"
    );
    for i in 0..a.node_count() {
        let v = NodeId::from_index(i);
        assert_eq!(a.is_node_live(v), b.is_node_live(v), "{context}: node {v}");
        let na: Vec<(NodeId, EdgeId, Weight)> = a.neighbors(v).collect();
        let nb: Vec<(NodeId, EdgeId, Weight)> = b.neighbors(v).collect();
        assert_eq!(na, nb, "{context}: neighbor order of {v}");
    }
    for i in 0..a.edge_count() {
        let e = EdgeId::from_index(i);
        assert_eq!(
            a.is_edge_usable(e),
            b.is_edge_usable(e),
            "{context}: edge {e}"
        );
        assert_eq!(a.weight(e), b.weight(e), "{context}: weight of {e}");
        assert_eq!(a.endpoints(e), b.endpoints(e), "{context}: endpoints of {e}");
    }
    let ids_a: Vec<NodeId> = a.node_ids().collect();
    let ids_b: Vec<NodeId> = b.node_ids().collect();
    assert_eq!(ids_a, ids_b, "{context}: node_ids");
    let eids_a: Vec<EdgeId> = a.edge_ids().collect();
    let eids_b: Vec<EdgeId> = b.edge_ids().collect();
    assert_eq!(eids_a, eids_b, "{context}: edge_ids");
}

/// Applies one random mutation through any [`GraphViewMut`]; the same
/// (seeded) op sequence drives both the overlay and the model clone.
fn apply_op<G: GraphViewMut>(g: &mut G, op: u64, node: usize, edge: usize, milli: u64) {
    let v = NodeId::from_index(node);
    let e = EdgeId::from_index(edge);
    match op {
        0 => g.set_weight(e, Weight::from_milli(milli)).unwrap(),
        1 => g.add_weight(e, Weight::from_milli(milli)).unwrap(),
        2 => g.remove_edge(e).unwrap(),
        3 => g.restore_edge(e).unwrap(),
        4 => g.remove_node(v).unwrap(),
        _ => g.restore_node(v).unwrap(),
    }
}

#[test]
fn overlay_matches_mutated_clone_under_random_interleavings() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let nodes = rng.gen_range(4..14usize);
        let extra = rng.gen_range(0..12usize);
        let base = random_connected_graph(nodes, nodes - 1 + extra, 1..9, &mut rng).unwrap();
        let mut arena = OverlayArena::new();
        let mut overlay = GraphOverlay::bind(&base, &mut arena);
        let mut model = base.clone();
        for step in 0..OPS {
            let op = rng.gen_range(0..6u64);
            let node = rng.gen_range(0..base.node_count());
            let edge = rng.gen_range(0..base.edge_count());
            let milli = rng.gen_range(1..20_000u64);
            apply_op(&mut overlay, op, node, edge, milli);
            apply_op(&mut model, op, node, edge, milli);
            // Full-state comparison every few steps (and always at the
            // end) keeps the sweep fast while still catching divergence
            // close to the op that caused it.
            if step % 7 == 0 || step == OPS - 1 {
                assert_same_view(&overlay, &model, &format!("seed {seed}, step {step}"));
            }
        }
    }
}

#[test]
fn reset_equals_a_fresh_clone() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x5eed ^ seed);
        let nodes = rng.gen_range(4..12usize);
        let base = random_connected_graph(nodes, nodes + 3, 1..9, &mut rng).unwrap();
        let mut arena = OverlayArena::new();
        let mut overlay = GraphOverlay::bind(&base, &mut arena);
        for _ in 0..OPS {
            let op = rng.gen_range(0..6u64);
            let node = rng.gen_range(0..base.node_count());
            let edge = rng.gen_range(0..base.edge_count());
            let milli = rng.gen_range(1..20_000u64);
            apply_op(&mut overlay, op, node, edge, milli);
        }
        overlay.reset();
        assert_same_view(&overlay, &base, &format!("seed {seed}: after reset"));
        // And the arena is reusable: a rebind over the same base is
        // pristine too.
        let rebound = GraphOverlay::bind(&base, &mut arena);
        assert_same_view(&rebound, &base, &format!("seed {seed}: after rebind"));
    }
}

#[test]
fn overlay_epoch_advances_with_every_mutation_and_reset() {
    let mut rng = SplitMix64::seed_from_u64(7);
    let base = random_connected_graph(6, 9, 1..5, &mut rng).unwrap();
    let mut arena = OverlayArena::new();
    let mut overlay = GraphOverlay::bind(&base, &mut arena);
    let e = EdgeId::from_index(0);
    let mut last = overlay.epoch();
    overlay.add_weight(e, Weight::UNIT).unwrap();
    assert!(overlay.epoch() > last);
    last = overlay.epoch();
    overlay.remove_node(NodeId::from_index(0)).unwrap();
    assert!(overlay.epoch() > last);
    last = overlay.epoch();
    overlay.reset();
    assert!(
        overlay.epoch() > last,
        "reset must advance the epoch so cached distances invalidate"
    );
}
