//! Property tests for the goal-oriented (A*) kernel: on seeded random
//! grids — including congestion-saturated ones near `Weight::MAX` — the
//! potentials stay admissible and the guided kernel settles the same
//! distances (and, away from saturation ties, the same paths) as plain
//! Dijkstra. DESIGN.md §5g holds the correctness argument these tests
//! pin down.

use route_graph::dijkstra::{minpath, minpath_guided};
use route_graph::lowerbound::{GridPotential, LandmarkPotential, Potential, ZeroPotential};
use route_graph::rng::{Rng, SplitMix64};
use route_graph::{DistanceOracle, GridGraph, NodeId, ShortestPaths, Weight};

/// A seeded grid with randomized edge weights in `lo..=hi` milli, plus a
/// deterministic pseudo-random source and target set.
fn random_grid(
    seed: u64,
    rows: usize,
    cols: usize,
    lo: u64,
    hi: u64,
) -> (GridGraph, NodeId, Vec<NodeId>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut grid = GridGraph::new(rows, cols, Weight::UNIT).unwrap();
    let edges: Vec<_> = grid.graph().edge_ids().collect();
    for e in edges {
        let w = Weight::from_milli(rng.gen_range(lo..=hi));
        grid.graph_mut().set_weight(e, w).unwrap();
    }
    let node = |rng: &mut SplitMix64, grid: &GridGraph| {
        let r = rng.gen_range(0..grid.rows());
        let c = rng.gen_range(0..grid.cols());
        grid.node_at(r, c).unwrap()
    };
    let source = node(&mut rng, &grid);
    let count = rng.gen_range(2..=5usize);
    let mut targets: Vec<NodeId> = (0..count).map(|_| node(&mut rng, &grid)).collect();
    targets.sort_by_key(|t| t.index());
    targets.dedup();
    targets.retain(|&t| t != source);
    if targets.is_empty() {
        targets.push(grid.node_at(rows - 1, cols - 1).unwrap());
    }
    (grid, source, targets)
}

/// True distance from `v` to its nearest target, via full runs from each
/// target (the graph is undirected, so `d(t, v) == d(v, t)`).
fn nearest_target_dist(truths: &[ShortestPaths], v: NodeId) -> Option<Weight> {
    truths.iter().filter_map(|t| t.dist(v)).min()
}

fn assert_admissible<P: Potential>(grid: &GridGraph, targets: &[NodeId], pot: &P, label: &str) {
    let truths: Vec<ShortestPaths> = targets
        .iter()
        .map(|&t| ShortestPaths::run(grid.graph(), t).unwrap())
        .collect();
    for v in grid.graph().node_ids() {
        let bound = pot.h(v);
        match nearest_target_dist(&truths, v) {
            Some(exact) => assert!(
                bound <= exact,
                "{label}: h({v}) = {bound} exceeds true nearest-target dist {exact}"
            ),
            None => assert_eq!(
                bound,
                Weight::ZERO,
                "{label}: unreachable {v} must get the zero bound"
            ),
        }
    }
}

/// Full-run equality: same settled distances everywhere, identical
/// extracted paths (nodes *and* edges) to every reached node.
fn assert_guided_matches_plain<P: Potential>(
    grid: &GridGraph,
    source: NodeId,
    targets: &[NodeId],
    pot: &P,
    check_paths: bool,
    label: &str,
) {
    let g = grid.graph();
    let plain = ShortestPaths::run(g, source).unwrap();
    let guided = ShortestPaths::run_guided(g, source, pot).unwrap();
    for v in g.node_ids() {
        assert_eq!(plain.dist(v), guided.dist(v), "{label}: dist({v}) differs");
        if check_paths && plain.dist(v).is_some() {
            let pp = plain.path_to(v).unwrap();
            let gp = guided.path_to(v).unwrap();
            assert_eq!(pp.nodes(), gp.nodes(), "{label}: path nodes to {v}");
            assert_eq!(pp.edges(), gp.edges(), "{label}: path edges to {v}");
        }
    }
    // Early-exit variant: distances and paths agree on the target set.
    let plain_t = ShortestPaths::run_to_targets(g, source, targets).unwrap();
    let guided_t = ShortestPaths::run_to_targets_guided(g, source, targets, pot).unwrap();
    for &t in targets {
        assert_eq!(
            plain_t.dist(t),
            guided_t.dist(t),
            "{label}: target dist({t}) differs"
        );
        assert_eq!(plain.dist(t), guided_t.dist(t), "{label}: early exit vs full run");
        if check_paths && plain_t.dist(t).is_some() {
            let pp = plain_t.path_to(t).unwrap();
            let gp = guided_t.path_to(t).unwrap();
            assert_eq!(pp.nodes(), gp.nodes(), "{label}: target path nodes to {t}");
            assert_eq!(pp.edges(), gp.edges(), "{label}: target path edges to {t}");
        }
    }
    // Point-to-point variant.
    let t0 = targets[0];
    assert_eq!(
        minpath(g, source, t0).unwrap(),
        minpath_guided(g, source, t0, pot).unwrap(),
        "{label}: minpath_guided differs"
    );
}

#[test]
fn grid_potential_admissible_and_equal_on_random_grids() {
    for seed in 0..12u64 {
        let (grid, source, targets) = random_grid(seed, 9, 11, 200, 4_000);
        let pot = GridPotential::new(&grid, &targets).unwrap();
        assert_admissible(&grid, &targets, &pot, "grid");
        assert_guided_matches_plain(&grid, source, &targets, &pot, true, "grid");
    }
}

#[test]
fn landmark_potential_admissible_and_equal_on_random_grids() {
    for seed in 100..108u64 {
        let (grid, source, targets) = random_grid(seed, 8, 8, 100, 2_500);
        let pot = LandmarkPotential::build(grid.graph(), 3, &targets).unwrap();
        assert!(pot.landmark_count() >= 1, "connected grid keeps landmarks");
        assert_admissible(&grid, &targets, &pot, "landmark");
        assert_guided_matches_plain(&grid, source, &targets, &pot, true, "landmark");
    }
}

#[test]
fn zero_potential_guided_run_is_plain_dijkstra() {
    let (grid, source, targets) = random_grid(7, 6, 10, 500, 1_500);
    assert_guided_matches_plain(&grid, source, &targets, &ZeroPotential, true, "zero");
}

/// Congestion prices edges toward `Weight::MAX`; distances then saturate
/// and distinct routes collapse onto the same saturated cost, so path
/// identity is not guaranteed — but admissibility and settled-distance
/// equality must survive.
#[test]
fn saturated_weights_keep_bounds_admissible_and_distances_equal() {
    let max_milli: u64 = Weight::MAX.as_milli();
    let near_max = max_milli - 5_000;
    for seed in 200..206u64 {
        let (grid, source, targets) = random_grid(seed, 6, 6, near_max, near_max + 4_999);
        let gpot = GridPotential::new(&grid, &targets).unwrap();
        assert_admissible(&grid, &targets, &gpot, "grid/saturated");
        assert_guided_matches_plain(&grid, source, &targets, &gpot, false, "grid/saturated");
        let lpot = LandmarkPotential::build(grid.graph(), 2, &targets).unwrap();
        assert_admissible(&grid, &targets, &lpot, "landmark/saturated");
        assert_guided_matches_plain(&grid, source, &targets, &lpot, false, "landmark/saturated");
    }
}

/// The oracle's arena-backed queries are a pure reuse optimization: same
/// results as the allocating entry points, query after query.
#[test]
fn oracle_scratch_queries_match_allocating_kernels() {
    let mut oracle = DistanceOracle::new();
    for seed in 300..304u64 {
        let (grid, source, targets) = random_grid(seed, 7, 9, 100, 3_000);
        let g = grid.graph();
        for &t in &targets {
            assert_eq!(
                oracle.minpath(g, source, t).unwrap(),
                minpath(g, source, t).unwrap(),
                "scratch minpath differs (seed {seed})"
            );
        }
        let fresh = ShortestPaths::run_to_targets(g, source, &targets).unwrap();
        let reused = oracle.run_to_targets(g, source, &targets).unwrap();
        for v in g.node_ids() {
            assert_eq!(fresh.dist(v), reused.dist(v), "scratch dist({v}) differs");
            assert_eq!(
                fresh.parent(v),
                reused.parent(v),
                "scratch parent({v}) differs"
            );
        }
    }
}
