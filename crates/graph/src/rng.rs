//! Vendored deterministic PRNG (SplitMix64) and sampling helpers.
//!
//! The workspace must build where crates.io is unreachable, so the seeded
//! workload generators cannot depend on the external `rand` crate. This
//! module provides the small slice of functionality the reproduction needs:
//! a fast, well-mixed 64-bit generator ([`SplitMix64`]), uniform range
//! sampling ([`Rng::gen_range`]), and slice shuffling/sampling
//! ([`SliceRandom`]). Everything is deterministic per seed, which the
//! paper's "seeded random workload" experiments (Table 1, §5 timing graphs)
//! and the parallel-router determinism tests rely on.
//!
//! SplitMix64 is the output mixer from Steele, Lea & Flood, "Fast
//! Splittable Pseudorandom Number Generators" (OOPSLA 2014); it passes
//! BigCrush and is the standard seeder for the xoshiro family.
//!
//! # Example
//!
//! ```
//! use route_graph::rng::{Rng, SliceRandom, SplitMix64};
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u64);
//! assert!((1..=6).contains(&die));
//! let mut order: Vec<usize> = (0..8).collect();
//! order.shuffle(&mut rng);
//! assert_eq!(order.len(), 8);
//! ```

/// A deterministic 64-bit pseudorandom generator (SplitMix64).
///
/// Fixed 64-bit state, one addition and three xor-shift-multiply rounds per
/// output. Not cryptographically secure — intended for reproducible
/// workload generation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next 64 pseudorandom bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// Source of pseudorandom bits plus uniform sampling helpers.
///
/// Mirrors the narrow slice of the `rand::Rng` API the codebase uses, so
/// generic workload generators can stay written as `fn f<R: Rng>(rng: &mut
/// R)`.
pub trait Rng {
    /// Returns the next 64 pseudorandom bits.
    fn next_u64(&mut self) -> u64;

    /// Samples an integer uniformly from `range` (half-open `a..b` or
    /// inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: UniformRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u64, denominator: u64) -> bool
    where
        Self: Sized,
    {
        assert!(
            denominator > 0 && numerator <= denominator,
            "invalid ratio {numerator}/{denominator}"
        );
        sample_below(self, denominator) < numerator
    }
}

/// Uniformly samples a value below `bound` via the widening-multiply
/// method (Lemire); bias is at most 2⁻⁶⁴ per draw, far below what the
/// seeded-workload tests can observe, and the method is branch-free and
/// deterministic.
fn sample_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

/// Integer range types [`Rng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled integer type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u32, u64, usize);
impl_uniform_signed!(i32, i64, isize);

/// Shuffling and sampling over slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The slice element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Samples `amount` distinct elements uniformly without replacement,
    /// in random order. Returns fewer if the slice is shorter than
    /// `amount`.
    fn choose_multiple<R: Rng>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[sample_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index permutation: only the first
        // `amount` positions are materialized.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + sample_below(rng, (self.len() - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&w));
            let s = rng.gen_range(-3..=3isize);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let _ = rng.gen_range(3..3u64);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct_and_sized() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let v: Vec<usize> = (0..30).collect();
        for _ in 0..50 {
            let picked: Vec<usize> = v.choose_multiple(&mut rng, 5).copied().collect();
            assert_eq!(picked.len(), 5);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
        }
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 30);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = SplitMix64::seed_from_u64(8);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }

    #[test]
    fn gen_ratio_is_plausible() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
