//! The wavefront scheduler's shared, atomically-updated pass graph.
//!
//! The batch engine speculates every net of a wave against one frozen
//! snapshot and fences commits behind the wave. The wavefront scheduler
//! removes that barrier: the in-order committer mutates the pass graph
//! *while* workers keep speculating against it. [`SharedPassGraph`]
//! makes that safe without locks on the routing hot path:
//!
//! * The base [`Graph`] (adjacency, endpoints, node/edge ids) is frozen
//!   for the pass — commits never add or reorder adjacency — so workers
//!   read it without synchronization.
//! * Mutable state (node/edge liveness, edge weights) lives in plain
//!   atomic arrays updated by a **single writer**, the committer, through
//!   [`SharedPassWriter`]. Workers read it through the [`SharedPassView`]
//!   handle with `Relaxed` loads.
//! * After each commit the writer publishes a monotone **commit
//!   sequence number** with `Release`; a worker `Acquire`-loads it once
//!   before routing a net ([`SharedPassGraph::commit_seq`]), which
//!   guarantees it observes *at least* every write of the commits
//!   numbered up to that value.
//!
//! Reads concurrent with later commits are deliberately racy. Soundness
//! comes from the read-set contract (see `route_graph::readset` and the
//! scheduler's commit check): a speculation started at sequence `S` is
//! accepted only if the nodes invalidated by commits `S+1..=T` (where
//! `T` is the sequence at acceptance) are disjoint from everything the
//! construction read. If they are disjoint, none of the racy locations
//! the worker touched were written at all during the window, so every
//! load returned the stable value and the result is bit-identical to a
//! sequential route at position `T`; if not, the result is discarded and
//! the net re-speculated, so a torn observation can never be committed.
//! Within a pass the graph also evolves monotonically (commits only
//! remove nodes and only raise weights), so a speculative *disconnection*
//! verdict is final no matter what the worker raced with.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::overlay::OverlayBase;
use crate::view::{GraphView, GraphViewMut};
use crate::{EdgeId, Graph, GraphError, NodeId, Weight};

/// A pass graph shared between one committer thread and many speculating
/// workers.
///
/// Constructed from the pass-start snapshot; the committer obtains the
/// unique [`writer`](SharedPassGraph::writer) and workers obtain cheap
/// read [`view`](SharedPassGraph::view) handles (both are borrows, so a
/// `std::thread::scope` can hand views to worker threads while the
/// committer keeps the writer).
#[derive(Debug)]
pub struct SharedPassGraph {
    base: Graph,
    /// True = dead: seeded from base liveness at construction, then set
    /// by commits. Restores consult the base so a base-dead resource can
    /// never be resurrected.
    node_dead: Vec<AtomicBool>,
    edge_dead: Vec<AtomicBool>,
    /// Current weight of every edge, in milli-units.
    weight_milli: Vec<AtomicU64>,
    live_nodes: AtomicUsize,
    live_edges: AtomicUsize,
    /// Number of commits published so far (`Release` on store,
    /// `Acquire` on load).
    commit_seq: AtomicU64,
    /// Bumped on every mutation; serves [`GraphView::epoch`].
    mutations: AtomicU64,
}

impl SharedPassGraph {
    /// Wraps the pass-start snapshot. All mutable state starts exactly as
    /// in `base`: liveness is *folded* into the tombstone arrays (a
    /// base-dead resource starts tombstoned), so the hot read path is a
    /// single relaxed load instead of a tombstone load plus a base
    /// liveness lookup.
    #[must_use]
    pub fn new(base: Graph) -> SharedPassGraph {
        let node_dead = (0..base.node_count())
            .map(|i| AtomicBool::new(!base.is_node_live(NodeId::from_index(i))))
            .collect();
        let edge_dead = (0..base.edge_count())
            .map(|i| AtomicBool::new(!base.base_edge_alive(EdgeId::from_index(i))))
            .collect();
        let weight_milli = (0..base.edge_count())
            .map(|i| {
                let w = base
                    .weight(EdgeId::from_index(i))
                    // lint: allow(panic-hygiene): the index iterates 0..edge_count of this same graph
                    .expect("in-range edge has a weight");
                AtomicU64::new(w.as_milli())
            })
            .collect();
        SharedPassGraph {
            live_nodes: AtomicUsize::new(base.live_node_count()),
            live_edges: AtomicUsize::new(base.live_edge_count()),
            commit_seq: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            node_dead,
            edge_dead,
            weight_milli,
            base,
        }
    }

    /// The frozen base snapshot.
    #[must_use]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The last published commit sequence number (`Acquire`): every
    /// write performed by commits numbered `1..=commit_seq()` is visible
    /// to this thread after the call returns.
    #[must_use]
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }

    /// A shared read handle for a speculating worker.
    #[must_use]
    pub fn view(&self) -> SharedPassView<'_> {
        SharedPassView { shared: self }
    }

    /// The committer's write handle.
    ///
    /// There must be at most one live writer at a time, held by the
    /// single committer thread; the type system does not enforce this
    /// (workers hold shared borrows concurrently), but all mutation goes
    /// through it, so the single-writer discipline is a local property of
    /// the scheduler loop.
    #[must_use]
    pub fn writer(&self) -> SharedPassWriter<'_> {
        SharedPassWriter { shared: self }
    }

    fn node_live(&self, v: NodeId) -> bool {
        let i = v.index();
        i < self.node_dead.len() && !self.node_dead[i].load(Ordering::Relaxed)
    }

    fn edge_flag(&self, e: EdgeId) -> bool {
        let i = e.index();
        i < self.edge_dead.len() && !self.edge_dead[i].load(Ordering::Relaxed)
    }

    fn edge_usable(&self, e: EdgeId) -> bool {
        if !self.edge_flag(e) {
            return false;
        }
        // lint: allow(panic-hygiene): e comes from the base graph's own adjacency, so it is in range by construction
        let (a, b) = self.base.endpoints(e).expect("in-range edge has endpoints");
        self.node_live(a) && self.node_live(b)
    }

    fn weight_of(&self, e: EdgeId) -> Result<Weight, GraphError> {
        if e.index() < self.weight_milli.len() {
            Ok(Weight::from_milli(
                self.weight_milli[e.index()].load(Ordering::Relaxed),
            ))
        } else {
            Err(GraphError::EdgeOutOfBounds(e))
        }
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.node_dead.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds(v))
        }
    }

    fn check_edge(&self, e: EdgeId) -> Result<(), GraphError> {
        if e.index() < self.edge_dead.len() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfBounds(e))
        }
    }
}

macro_rules! delegate_view {
    ($ty:ident) => {
        impl GraphView for $ty<'_> {
            fn node_count(&self) -> usize {
                self.shared.base.node_count()
            }

            fn edge_count(&self) -> usize {
                self.shared.base.edge_count()
            }

            fn live_node_count(&self) -> usize {
                self.shared.live_nodes.load(Ordering::Relaxed)
            }

            fn live_edge_count(&self) -> usize {
                self.shared.live_edges.load(Ordering::Relaxed)
            }

            fn is_node_live(&self, v: NodeId) -> bool {
                self.shared.node_live(v)
            }

            fn is_edge_usable(&self, e: EdgeId) -> bool {
                self.shared.edge_usable(e)
            }

            fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
                self.shared.base.endpoints(e)
            }

            fn weight(&self, e: EdgeId) -> Result<Weight, GraphError> {
                self.shared.weight_of(e)
            }

            fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
                let live = self.shared.node_live(v);
                self.shared
                    .base
                    .base_adj(v)
                    .iter()
                    .filter(move |&&(u, e)| {
                        live && self.shared.edge_flag(e) && self.shared.node_live(u)
                    })
                    .map(move |&(u, e)| {
                        // lint: allow(panic-hygiene): e comes from the base graph's own adjacency, so it is in range by construction
                        (u, e, self.shared.weight_of(e).expect("adjacency edge in range"))
                    })
            }

            fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
                (0..self.shared.base.node_count())
                    .map(NodeId::from_index)
                    .filter(|&v| self.shared.node_live(v))
            }

            fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
                (0..self.shared.base.edge_count())
                    .map(EdgeId::from_index)
                    .filter(|&e| self.shared.edge_usable(e))
            }

            fn epoch(&self) -> u64 {
                self.shared.mutations.load(Ordering::Relaxed)
            }
        }

        impl OverlayBase for $ty<'_> {
            fn base_adj(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
                self.shared.base.base_adj(v)
            }

            fn base_edge_alive(&self, e: EdgeId) -> bool {
                self.shared.edge_flag(e)
            }
        }
    };
}

/// A worker's shared read handle over a [`SharedPassGraph`].
///
/// Implements [`GraphView`] (with `Relaxed` atomic loads) and
/// [`OverlayBase`], so a worker binds its private
/// [`GraphOverlay`](crate::GraphOverlay) over it for pin masking exactly
/// as the batch engine binds over a frozen snapshot. Adjacency iteration
/// order is the base graph's insertion order filtered by current
/// liveness — identical to what a plain `Graph` mutated by the same
/// commits would yield.
#[derive(Debug, Clone, Copy)]
pub struct SharedPassView<'a> {
    shared: &'a SharedPassGraph,
}

delegate_view!(SharedPassView);

/// The committer's write handle over a [`SharedPassGraph`].
///
/// Implements [`GraphViewMut`] so `Router::commit` runs against it
/// unchanged. Restrictions beyond the trait contract, acceptable because
/// only the commit path uses it: a node or edge that is dead in the
/// *base* snapshot cannot be restored (liveness is `base && !tombstone`),
/// and all mutations must come from the single committer thread.
#[derive(Debug)]
pub struct SharedPassWriter<'a> {
    shared: &'a SharedPassGraph,
}

delegate_view!(SharedPassWriter);

impl SharedPassWriter<'_> {
    /// Publishes `seq` as the last completed commit (`Release`): a
    /// worker that subsequently `Acquire`-reads a sequence `>= seq` is
    /// guaranteed to observe every mutation performed before this call.
    pub fn publish(&self, seq: u64) {
        self.shared.commit_seq.store(seq, Ordering::Release);
    }

    fn bump(&self) {
        self.shared.mutations.fetch_add(1, Ordering::Relaxed);
    }
}

impl GraphViewMut for SharedPassWriter<'_> {
    fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<(), GraphError> {
        self.shared.check_edge(e)?;
        self.shared.weight_milli[e.index()].store(weight.as_milli(), Ordering::Relaxed);
        self.bump();
        Ok(())
    }

    fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        self.shared.check_edge(e)?;
        if self.shared.edge_flag(e) {
            self.shared.edge_dead[e.index()].store(true, Ordering::Relaxed);
            self.shared.live_edges.fetch_sub(1, Ordering::Relaxed);
            self.bump();
        }
        Ok(())
    }

    fn restore_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        self.shared.check_edge(e)?;
        if !self.shared.edge_flag(e) && self.shared.base.base_edge_alive(e) {
            self.shared.edge_dead[e.index()].store(false, Ordering::Relaxed);
            self.shared.live_edges.fetch_add(1, Ordering::Relaxed);
            self.bump();
        }
        Ok(())
    }

    fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.shared.check_node(v)?;
        if self.shared.node_live(v) {
            self.shared.node_dead[v.index()].store(true, Ordering::Relaxed);
            self.shared.live_nodes.fetch_sub(1, Ordering::Relaxed);
            self.bump();
        }
        Ok(())
    }

    fn restore_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.shared.check_node(v)?;
        if !self.shared.node_live(v) && self.shared.base.is_node_live(v) {
            self.shared.node_dead[v.index()].store(false, Ordering::Relaxed);
            self.shared.live_nodes.fetch_add(1, Ordering::Relaxed);
            self.bump();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphOverlay, OverlayArena};

    fn triangle() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(1)).unwrap();
        let e1 = g.add_edge(n[1], n[2], Weight::from_units(2)).unwrap();
        let e2 = g.add_edge(n[0], n[2], Weight::from_units(4)).unwrap();
        (g, n, vec![e0, e1, e2])
    }

    #[test]
    fn view_mirrors_base_until_writes_land() {
        let (g, n, e) = triangle();
        let shared = SharedPassGraph::new(g);
        let view = shared.view();
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.live_node_count(), 3);
        assert_eq!(view.weight(e[1]).unwrap(), Weight::from_units(2));
        let order: Vec<NodeId> = view.neighbors(n[0]).map(|(u, _, _)| u).collect();
        let base_order: Vec<NodeId> = shared.base().neighbors(n[0]).map(|(u, _, _)| u).collect();
        assert_eq!(order, base_order, "adjacency order matches the base");
    }

    #[test]
    fn writer_mutations_are_visible_through_views() {
        let (g, n, e) = triangle();
        let shared = SharedPassGraph::new(g);
        let mut writer = shared.writer();
        writer.set_weight(e[0], Weight::from_units(7)).unwrap();
        writer.remove_node(n[2]).unwrap();
        writer.publish(1);
        assert_eq!(shared.commit_seq(), 1);
        let view = shared.view();
        assert_eq!(view.weight(e[0]).unwrap(), Weight::from_units(7));
        assert!(!view.is_node_live(n[2]));
        assert!(!view.is_edge_usable(e[1]), "dead endpoint masks the edge");
        assert_eq!(view.live_node_count(), 2);
    }

    #[test]
    fn base_dead_resources_stay_dead() {
        let (mut g, n, e) = triangle();
        g.remove_node(n[1]).unwrap();
        g.remove_edge(e[2]).unwrap();
        let shared = SharedPassGraph::new(g);
        let mut writer = shared.writer();
        writer.restore_node(n[1]).unwrap();
        writer.restore_edge(e[2]).unwrap();
        let view = shared.view();
        assert!(!view.is_node_live(n[1]), "base-dead node is unrestorable");
        assert!(!view.is_edge_usable(e[2]), "base-dead edge is unrestorable");
    }

    #[test]
    fn remove_restore_roundtrip_keeps_counters() {
        let (g, n, e) = triangle();
        let shared = SharedPassGraph::new(g);
        let mut writer = shared.writer();
        writer.remove_node(n[0]).unwrap();
        writer.remove_node(n[0]).unwrap(); // idempotent
        writer.remove_edge(e[1]).unwrap();
        assert_eq!(shared.view().live_node_count(), 2);
        assert_eq!(shared.view().live_edge_count(), 2);
        writer.restore_node(n[0]).unwrap();
        writer.restore_edge(e[1]).unwrap();
        assert_eq!(shared.view().live_node_count(), 3);
        assert_eq!(shared.view().live_edge_count(), 3);
    }

    #[test]
    fn overlay_binds_over_a_shared_view() {
        let (g, n, e) = triangle();
        let shared = SharedPassGraph::new(g);
        let mut writer = shared.writer();
        writer.set_weight(e[0], Weight::from_units(9)).unwrap();
        let view = shared.view();
        let mut arena = OverlayArena::new();
        let mut overlay = GraphOverlay::bind(&view, &mut arena);
        // Overlay reads through to the shared (post-commit) state...
        assert_eq!(overlay.weight(e[0]).unwrap(), Weight::from_units(9));
        // ...and masks privately without touching it.
        overlay.remove_node(n[1]).unwrap();
        assert!(!overlay.is_node_live(n[1]));
        assert!(shared.view().is_node_live(n[1]));
        overlay.reset();
        assert!(overlay.is_node_live(n[1]));
    }

    #[test]
    fn epoch_advances_with_mutations() {
        let (g, _, e) = triangle();
        let shared = SharedPassGraph::new(g);
        let before = shared.view().epoch();
        let mut writer = shared.writer();
        writer.set_weight(e[0], Weight::from_units(2)).unwrap();
        assert!(shared.view().epoch() > before);
    }

    #[test]
    fn out_of_bounds_ids_error() {
        let (g, _, _) = triangle();
        let shared = SharedPassGraph::new(g);
        let ghost_e = EdgeId::from_index(99);
        let ghost_n = NodeId::from_index(99);
        assert_eq!(
            shared.view().weight(ghost_e),
            Err(GraphError::EdgeOutOfBounds(ghost_e))
        );
        let mut writer = shared.writer();
        assert_eq!(
            writer.set_weight(ghost_e, Weight::UNIT),
            Err(GraphError::EdgeOutOfBounds(ghost_e))
        );
        assert_eq!(
            writer.remove_node(ghost_n),
            Err(GraphError::NodeOutOfBounds(ghost_n))
        );
        assert!(!shared.view().is_node_live(ghost_n));
    }
}
