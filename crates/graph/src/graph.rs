//! The weighted undirected routing graph.

use crate::{EdgeId, GraphError, NodeId, Weight};

#[derive(Debug, Clone)]
struct NodeRec {
    adj: Vec<(NodeId, EdgeId)>,
    alive: bool,
}

#[derive(Debug, Clone)]
struct EdgeRec {
    a: NodeId,
    b: NodeId,
    weight: Weight,
    alive: bool,
}

/// A weighted undirected graph with reversible node/edge removal and mutable
/// edge weights.
///
/// This is the routing-graph model of paper §2: nodes are FPGA routing
/// resources (wire segments and logic-block pins), edges are programmable
/// connections, and weights encode wirelength plus congestion. Two mutation
/// capabilities drive the router of §5:
///
/// * **weights change** as nets are routed (congestion feedback), and
/// * **resources disappear** once committed to a net, so that subsequent
///   nets stay electrically disjoint — modelled by [`remove_node`] /
///   [`remove_edge`], which are reversible masks ([`restore_node`] /
///   [`restore_edge`]) to support rip-up-and-retry passes.
///
/// Node and edge ids are dense and stable across removal; see [`NodeId`] and
/// [`EdgeId`].
///
/// # Example
///
/// ```
/// use route_graph::{Graph, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b, Weight::UNIT)?;
/// assert_eq!(g.weight(e)?, Weight::UNIT);
/// g.remove_edge(e)?;
/// assert!(!g.is_edge_usable(e));
/// g.restore_edge(e)?;
/// assert!(g.is_edge_usable(e));
/// # Ok(())
/// # }
/// ```
///
/// [`remove_node`]: Graph::remove_node
/// [`remove_edge`]: Graph::remove_edge
/// [`restore_node`]: Graph::restore_node
/// [`restore_edge`]: Graph::restore_edge
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<NodeRec>,
    edges: Vec<EdgeRec>,
    live_nodes: usize,
    live_edge_flags: usize,
    /// Monotone mutation stamp; see [`Graph::epoch`].
    epoch: u64,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Creates a graph with `n` isolated live nodes.
    #[must_use]
    pub fn with_nodes(n: usize) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Adds a new live node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeRec {
            adj: Vec::new(),
            alive: true,
        });
        self.live_nodes += 1;
        self.epoch += 1;
        id
    }

    /// A monotone stamp that advances on every effective mutation (node or
    /// edge addition, weight change, removal/restore transitions).
    ///
    /// Caches derived from this graph — [`DistanceOracle`](crate::DistanceOracle)
    /// in particular — compare epochs to detect that cached results have
    /// gone stale. The stamp tracks one graph instance over time; it does
    /// not order mutations across different graphs (a clone starts from
    /// the parent's current stamp and the two then advance independently).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adds an undirected edge between `a` and `b` with the given weight.
    ///
    /// Parallel edges are permitted (FPGA switch blocks can offer several
    /// programmable connections between the same pair of segments).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not
    /// exist, and [`GraphError::SelfLoop`] if `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: Weight) -> Result<EdgeId, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeRec {
            a,
            b,
            weight,
            alive: true,
        });
        self.nodes[a.index()].adj.push((b, id));
        self.nodes[b.index()].adj.push((a, id));
        self.live_edge_flags += 1;
        self.epoch += 1;
        Ok(id)
    }

    /// Total number of nodes ever added (live or removed).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of edges ever added (live or removed).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of live (not removed) nodes.
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of edges whose own removal flag is live.
    ///
    /// An edge with a live flag may still be *unusable* if one of its
    /// endpoints has been removed; see [`is_edge_usable`](Graph::is_edge_usable).
    #[must_use]
    pub fn live_edge_count(&self) -> usize {
        self.live_edge_flags
    }

    /// Returns `true` if `v` exists and has not been removed.
    #[must_use]
    pub fn is_node_live(&self, v: NodeId) -> bool {
        self.nodes.get(v.index()).is_some_and(|n| n.alive)
    }

    /// Returns `true` if `e` exists, is not removed, and both of its
    /// endpoints are live — i.e. a traversal may use it.
    #[must_use]
    pub fn is_edge_usable(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|rec| {
            rec.alive && self.nodes[rec.a.index()].alive && self.nodes[rec.b.index()].alive
        })
    }

    /// Returns the endpoints `(a, b)` of edge `e` in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id. Endpoints
    /// of *removed* edges are still reported.
    pub fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        let rec = self
            .edges
            .get(e.index())
            .ok_or(GraphError::EdgeOutOfBounds(e))?;
        Ok((rec.a, rec.b))
    }

    /// Returns the endpoint of `e` that is not `v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown edge, and
    /// [`GraphError::NodeOutOfBounds`] if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> Result<NodeId, GraphError> {
        let (a, b) = self.endpoints(e)?;
        if v == a {
            Ok(b)
        } else if v == b {
            Ok(a)
        } else {
            Err(GraphError::NodeOutOfBounds(v))
        }
    }

    /// Returns the weight of edge `e` (including removed edges).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    pub fn weight(&self, e: EdgeId) -> Result<Weight, GraphError> {
        self.edges
            .get(e.index())
            .map(|rec| rec.weight)
            .ok_or(GraphError::EdgeOutOfBounds(e))
    }

    /// Sets the weight of edge `e`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    pub fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<(), GraphError> {
        let rec = self
            .edges
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfBounds(e))?;
        rec.weight = weight;
        self.epoch += 1;
        Ok(())
    }

    /// Adds `delta` to the weight of edge `e` (congestion feedback).
    /// Saturates at [`Weight::MAX`]: congestion feedback loops run for
    /// thousands of increments and must degrade to "infinitely expensive"
    /// rather than panic when an edge's weight tops out.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    pub fn add_weight(&mut self, e: EdgeId, delta: Weight) -> Result<(), GraphError> {
        let rec = self
            .edges
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfBounds(e))?;
        rec.weight = rec.weight.saturating_add(delta);
        self.epoch += 1;
        Ok(())
    }

    /// Bulk-reprices every edge in one pass: `f` receives
    /// `(edge, a, b, current_weight)` and returns the new weight.
    ///
    /// This is the negotiated-congestion pricing hook: between routing
    /// iterations the single writer folds per-node present and history
    /// costs into every edge at once, without the per-edge id-validation
    /// and epoch-bump overhead of [`set_weight`](Graph::set_weight) in a
    /// loop. Removed edges are repriced too (their weight is observable
    /// again after [`restore_edge`](Graph::restore_edge)); the epoch
    /// advances exactly once.
    pub fn reprice_edges<F: FnMut(EdgeId, NodeId, NodeId, Weight) -> Weight>(&mut self, mut f: F) {
        for (i, rec) in self.edges.iter_mut().enumerate() {
            rec.weight = f(EdgeId::from_index(i), rec.a, rec.b, rec.weight);
        }
        self.epoch += 1;
    }

    /// Delta variant of [`reprice_edges`](Graph::reprice_edges): reprices
    /// only the edges incident to `nodes`, each exactly once (an edge
    /// with both endpoints listed is visited once), and returns how many
    /// edges were repriced.
    ///
    /// This is the incremental negotiated-congestion sweep: when the
    /// single writer knows which nodes' pressure (usage or history)
    /// changed between iterations, touching only their incident edges
    /// makes the cost update scale with *remaining congestion* instead
    /// of graph size. Edge prices that depend only on the two endpoint
    /// pressures plus an immutable base are exactly reproduced, because
    /// an edge whose endpoints both kept their pressure keeps its price.
    ///
    /// Removed edges incident to a listed node are repriced too, and
    /// unknown node ids are skipped — both matching the full sweep's
    /// tolerance. The visit order is ascending edge id regardless of the
    /// order (or duplication) of `nodes`, so the resulting weights and
    /// the epoch history are functions of the *set* alone. The epoch
    /// advances exactly once, as in the full sweep.
    pub fn reprice_incident_edges<F: FnMut(EdgeId, NodeId, NodeId, Weight) -> Weight>(
        &mut self,
        nodes: &[NodeId],
        mut f: F,
    ) -> usize {
        let mut touched: Vec<EdgeId> = Vec::new();
        for v in nodes {
            if let Some(rec) = self.nodes.get(v.index()) {
                touched.extend(rec.adj.iter().map(|&(_, e)| e));
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &e in &touched {
            let rec = &mut self.edges[e.index()];
            rec.weight = f(e, rec.a, rec.b, rec.weight);
        }
        self.epoch += 1;
        touched.len()
    }

    /// Removes edge `e` (reversible). Removing an already-removed edge is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        let rec = self
            .edges
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfBounds(e))?;
        if rec.alive {
            rec.alive = false;
            self.live_edge_flags -= 1;
            self.epoch += 1;
        }
        Ok(())
    }

    /// Restores a previously removed edge. Restoring a live edge is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    pub fn restore_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        let rec = self
            .edges
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfBounds(e))?;
        if !rec.alive {
            rec.alive = true;
            self.live_edge_flags += 1;
            self.epoch += 1;
        }
        Ok(())
    }

    /// Removes node `v` (reversible). Edges incident to `v` become unusable
    /// while `v` is removed but keep their own removal flags untouched, so
    /// restoring `v` restores exactly the prior connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for an unknown id.
    pub fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        let rec = self
            .nodes
            .get_mut(v.index())
            .ok_or(GraphError::NodeOutOfBounds(v))?;
        if rec.alive {
            rec.alive = false;
            self.live_nodes -= 1;
            self.epoch += 1;
        }
        Ok(())
    }

    /// Restores a previously removed node. Restoring a live node is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for an unknown id.
    pub fn restore_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        let rec = self
            .nodes
            .get_mut(v.index())
            .ok_or(GraphError::NodeOutOfBounds(v))?;
        if !rec.alive {
            rec.alive = true;
            self.live_nodes += 1;
            self.epoch += 1;
        }
        Ok(())
    }

    /// Iterates over the usable incident edges of a live node `v`, yielding
    /// `(neighbor, edge, weight)`. Yields nothing if `v` is removed.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        let (adj, live) = match self.nodes.get(v.index()) {
            Some(rec) => (rec.adj.as_slice(), rec.alive),
            None => (&[][..], false),
        };
        adj.iter()
            .filter(move |_| live)
            .filter_map(move |&(u, e)| {
                let rec = &self.edges[e.index()];
                (rec.alive && self.nodes[u.index()].alive).then_some((u, e, rec.weight))
            })
    }

    /// Degree of `v` counting only usable edges.
    #[must_use]
    pub fn live_degree(&self, v: NodeId) -> usize {
        self.neighbors(v).count()
    }

    /// Iterates over the ids of all live nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, rec)| rec.alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Iterates over the ids of all usable edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len())
            .map(EdgeId::from_index)
            .filter(|&e| self.is_edge_usable(e))
    }

    /// Sum of the weights of all usable edges.
    #[must_use]
    pub fn total_weight(&self) -> Weight {
        self.edge_ids()
            .map(|e| self.edges[e.index()].weight)
            .sum()
    }

    /// Mean weight over usable edges, in floating point, for reporting the
    /// paper's `w̄` congestion statistic. Returns `None` if no edge is usable.
    #[must_use]
    pub fn mean_edge_weight(&self) -> Option<f64> {
        let mut count = 0u64;
        let mut total = 0f64;
        for e in self.edge_ids() {
            total += self.edges[e.index()].weight.as_f64();
            count += 1;
        }
        (count > 0).then(|| total / count as f64)
    }

    /// Raw adjacency entries of `v`, including entries whose edge or
    /// neighbor is currently removed (the overlay filters by its own
    /// liveness state, preserving insertion order).
    pub(crate) fn adj_entries(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        self.nodes.get(v.index()).map_or(&[], |rec| rec.adj.as_slice())
    }

    /// The edge's own removal flag, ignoring endpoint liveness.
    pub(crate) fn edge_alive_flag(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|rec| rec.alive)
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds(v))
        }
    }

    /// Validates that `v` exists and is live.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`].
    pub fn require_live_node(&self, v: NodeId) -> Result<(), GraphError> {
        self.check_node(v)?;
        if self.nodes[v.index()].alive {
            Ok(())
        } else {
            Err(GraphError::NodeRemoved(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(1)).unwrap();
        let e1 = g.add_edge(n[1], n[2], Weight::from_units(2)).unwrap();
        let e2 = g.add_edge(n[0], n[2], Weight::from_units(4)).unwrap();
        (g, [n[0], n[1], n[2]], [e0, e1, e2])
    }

    #[test]
    fn construction_counts() {
        let (g, _, _) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.live_node_count(), 3);
        assert_eq!(g.live_edge_count(), 3);
    }

    #[test]
    fn reprice_edges_rewrites_every_edge_and_bumps_epoch_once() {
        let (mut g, n, e) = triangle();
        g.remove_edge(e[1]).unwrap();
        let before = g.epoch();
        let mut seen = Vec::new();
        g.reprice_edges(|id, a, b, w| {
            seen.push((id, a, b));
            w.saturating_add(Weight::UNIT)
        });
        assert_eq!(g.epoch(), before + 1);
        // Every edge is visited with its endpoints, removed ones included.
        assert_eq!(seen, vec![(e[0], n[0], n[1]), (e[1], n[1], n[2]), (e[2], n[0], n[2])]);
        assert_eq!(g.weight(e[0]).unwrap(), Weight::from_units(2));
        assert_eq!(g.weight(e[1]).unwrap(), Weight::from_units(3));
        assert_eq!(g.weight(e[2]).unwrap(), Weight::from_units(5));
        assert!(!g.is_edge_usable(e[1]));
    }

    #[test]
    fn reprice_incident_edges_visits_each_touched_edge_once() {
        let (mut g, n, e) = triangle();
        g.remove_edge(e[1]).unwrap();
        let before = g.epoch();
        let mut seen = Vec::new();
        // n[1] is incident to e0 and e1; n[2] to e1 and e2 — e1 is shared
        // and must be visited once. Duplicated and unknown ids are
        // tolerated.
        let count = g.reprice_incident_edges(
            &[n[2], n[1], n[1], NodeId::from_index(99)],
            |id, a, b, w| {
                seen.push((id, a, b));
                w.saturating_add(Weight::UNIT)
            },
        );
        assert_eq!(count, 3);
        assert_eq!(g.epoch(), before + 1);
        assert_eq!(
            seen,
            vec![(e[0], n[0], n[1]), (e[1], n[1], n[2]), (e[2], n[0], n[2])],
            "ascending edge-id order, independent of the node-list order"
        );
        assert_eq!(g.weight(e[1]).unwrap(), Weight::from_units(3), "removed edges reprice too");

        // A node list covering only n[0] must leave e1 untouched.
        let count = g.reprice_incident_edges(&[n[0]], |_, _, _, w| w.saturating_add(Weight::UNIT));
        assert_eq!(count, 2);
        assert_eq!(g.weight(e[0]).unwrap(), Weight::from_units(3));
        assert_eq!(g.weight(e[1]).unwrap(), Weight::from_units(3));
        assert_eq!(g.weight(e[2]).unwrap(), Weight::from_units(6));

        // Matching full-sweep semantics for the delta: repricing the
        // edges incident to *changed* nodes with a pressure-sum closure
        // reproduces exactly what the full sweep would compute.
        let mut full = g.clone();
        let pressure = |v: NodeId| Weight::from_milli(250 * (v.index() as u64 + 1));
        let base = Weight::UNIT;
        full.reprice_edges(|_, a, b, _| {
            base.saturating_add(pressure(a)).saturating_add(pressure(b))
        });
        g.reprice_incident_edges(&[n[0], n[1], n[2]], |_, a, b, _| {
            base.saturating_add(pressure(a)).saturating_add(pressure(b))
        });
        for &edge in &e {
            assert_eq!(g.weight(edge).unwrap(), full.weight(edge).unwrap());
        }
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::with_nodes(1);
        let v = g.node_ids().next().unwrap();
        assert_eq!(g.add_edge(v, v, Weight::UNIT), Err(GraphError::SelfLoop(v)));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = Graph::with_nodes(1);
        let v = g.node_ids().next().unwrap();
        let ghost = NodeId::from_index(7);
        assert_eq!(
            g.add_edge(v, ghost, Weight::UNIT),
            Err(GraphError::NodeOutOfBounds(ghost))
        );
        assert_eq!(
            g.weight(EdgeId::from_index(3)),
            Err(GraphError::EdgeOutOfBounds(EdgeId::from_index(3)))
        );
    }

    #[test]
    fn neighbors_skip_removed_edges() {
        let (mut g, n, e) = triangle();
        g.remove_edge(e[0]).unwrap();
        let nbrs: Vec<NodeId> = g.neighbors(n[0]).map(|(u, _, _)| u).collect();
        assert_eq!(nbrs, vec![n[2]]);
        g.restore_edge(e[0]).unwrap();
        assert_eq!(g.neighbors(n[0]).count(), 2);
    }

    #[test]
    fn neighbors_skip_removed_nodes() {
        let (mut g, n, _) = triangle();
        g.remove_node(n[2]).unwrap();
        assert_eq!(g.neighbors(n[0]).count(), 1);
        assert_eq!(g.neighbors(n[2]).count(), 0);
        assert!(!g.is_edge_usable(EdgeId::from_index(1)));
        g.restore_node(n[2]).unwrap();
        assert_eq!(g.neighbors(n[0]).count(), 2);
        assert!(g.is_edge_usable(EdgeId::from_index(1)));
    }

    #[test]
    fn node_removal_is_exactly_reversible() {
        let (mut g, n, e) = triangle();
        // Remove an edge on its own first; restoring the node later must not
        // resurrect it.
        g.remove_edge(e[1]).unwrap();
        g.remove_node(n[1]).unwrap();
        g.restore_node(n[1]).unwrap();
        assert!(g.is_edge_usable(e[0]));
        assert!(!g.is_edge_usable(e[1]));
        assert!(g.is_edge_usable(e[2]));
    }

    #[test]
    fn weight_mutation() {
        let (mut g, _, e) = triangle();
        g.set_weight(e[0], Weight::from_units(9)).unwrap();
        assert_eq!(g.weight(e[0]).unwrap(), Weight::from_units(9));
        g.add_weight(e[0], Weight::UNIT).unwrap();
        assert_eq!(g.weight(e[0]).unwrap(), Weight::from_units(10));
    }

    #[test]
    fn total_and_mean_weight() {
        let (mut g, _, e) = triangle();
        assert_eq!(g.total_weight(), Weight::from_units(7));
        let mean = g.mean_edge_weight().unwrap();
        assert!((mean - 7.0 / 3.0).abs() < 1e-12);
        g.remove_edge(e[2]).unwrap();
        assert_eq!(g.total_weight(), Weight::from_units(3));
    }

    #[test]
    fn double_remove_and_restore_are_noops() {
        let (mut g, n, e) = triangle();
        g.remove_edge(e[0]).unwrap();
        g.remove_edge(e[0]).unwrap();
        assert_eq!(g.live_edge_count(), 2);
        g.restore_edge(e[0]).unwrap();
        g.restore_edge(e[0]).unwrap();
        assert_eq!(g.live_edge_count(), 3);
        g.remove_node(n[0]).unwrap();
        g.remove_node(n[0]).unwrap();
        assert_eq!(g.live_node_count(), 2);
    }

    #[test]
    fn other_endpoint_works() {
        let (g, n, e) = triangle();
        assert_eq!(g.other_endpoint(e[0], n[0]).unwrap(), n[1]);
        assert_eq!(g.other_endpoint(e[0], n[1]).unwrap(), n[0]);
        assert!(g.other_endpoint(e[0], n[2]).is_err());
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e1 = g.add_edge(n[0], n[1], Weight::from_units(1)).unwrap();
        let e2 = g.add_edge(n[0], n[1], Weight::from_units(2)).unwrap();
        assert_ne!(e1, e2);
        assert_eq!(g.neighbors(n[0]).count(), 2);
    }

    #[test]
    fn require_live_node_distinguishes_errors() {
        let (mut g, n, _) = triangle();
        assert!(g.require_live_node(n[0]).is_ok());
        g.remove_node(n[0]).unwrap();
        assert_eq!(
            g.require_live_node(n[0]),
            Err(GraphError::NodeRemoved(n[0]))
        );
        let ghost = NodeId::from_index(99);
        assert_eq!(
            g.require_live_node(ghost),
            Err(GraphError::NodeOutOfBounds(ghost))
        );
    }

    #[test]
    fn clone_is_independent() {
        let (g, _, e) = triangle();
        let mut g2 = g.clone();
        g2.remove_edge(e[0]).unwrap();
        assert!(g.is_edge_usable(e[0]));
        assert!(!g2.is_edge_usable(e[0]));
    }
}
