//! Multi-weighted graphs: simultaneous optimization of competing criteria.
//!
//! Paper §2: edge weights "typically correspond to the wirelength of the
//! associated FPGA routing wire segment (weights may also reflect
//! parasitics, congestion, jog penalties, etc.)", and the framework of the
//! authors' companion work (\[4, 7\]) optimizes such "mutually competing
//! objectives… simultaneously" by carrying a weight *vector* per edge and
//! scalarizing it through a tunable linear functional. Every algorithm in
//! this reproduction then runs unchanged on the scalarized graph.

use crate::{EdgeId, Graph, GraphError, Weight};

/// A per-edge criteria vector: wirelength, congestion pressure, and jog
/// (direction-change) penalty.
///
/// All components are exact [`Weight`]s; extend by convention (unused
/// criteria stay zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultiWeight {
    /// Physical wirelength of the resource.
    pub length: Weight,
    /// Congestion pressure on the resource.
    pub congestion: Weight,
    /// Jog penalty (nonzero for direction-changing switches).
    pub jogs: Weight,
}

impl MultiWeight {
    /// A pure-wirelength vector.
    #[must_use]
    pub fn from_length(length: Weight) -> MultiWeight {
        MultiWeight {
            length,
            ..MultiWeight::default()
        }
    }

    /// Componentwise saturating addition: each criterion clamps at
    /// [`Weight::MAX`] independently, so accumulating congestion or
    /// history pressure onto an already-saturated criterion leaves the
    /// other components exact instead of panicking the whole vector.
    #[must_use]
    pub fn saturating_add(self, rhs: MultiWeight) -> MultiWeight {
        MultiWeight {
            length: self.length.saturating_add(rhs.length),
            congestion: self.congestion.saturating_add(rhs.congestion),
            jogs: self.jogs.saturating_add(rhs.jogs),
        }
    }
}

/// A linear functional over [`MultiWeight`]s: coefficients in milli-units
/// (1000 = 1.0).
///
/// # Example
///
/// ```
/// use route_graph::multiweight::{Functional, MultiWeight};
/// use route_graph::Weight;
///
/// let w = MultiWeight {
///     length: Weight::from_units(2),
///     congestion: Weight::from_units(1),
///     jogs: Weight::from_units(1),
/// };
/// // length + 0.5·congestion, jogs ignored:
/// let f = Functional { length_milli: 1000, congestion_milli: 500, jogs_milli: 0 };
/// assert_eq!(f.evaluate(&w), Weight::from_milli(2500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Functional {
    /// Coefficient on [`MultiWeight::length`], in milli.
    pub length_milli: u64,
    /// Coefficient on [`MultiWeight::congestion`], in milli.
    pub congestion_milli: u64,
    /// Coefficient on [`MultiWeight::jogs`], in milli.
    pub jogs_milli: u64,
}

impl Default for Functional {
    /// Pure wirelength: `1·length + 0·congestion + 0·jogs`.
    fn default() -> Functional {
        Functional {
            length_milli: 1000,
            congestion_milli: 0,
            jogs_milli: 0,
        }
    }
}

impl Functional {
    /// Scalarizes a criteria vector, saturating at [`Weight::MAX`] — a
    /// functional applied to near-infinite criteria (congestion sentinels)
    /// must stay an "infinity", not wrap or panic.
    #[must_use]
    pub fn evaluate(&self, w: &MultiWeight) -> Weight {
        let term = |coeff_milli: u64, value: Weight| -> u128 {
            u128::from(coeff_milli) * u128::from(value.as_milli()) / 1000
        };
        let total = term(self.length_milli, w.length)
            .saturating_add(term(self.congestion_milli, w.congestion))
            .saturating_add(term(self.jogs_milli, w.jogs));
        u64::try_from(total).map_or(Weight::MAX, Weight::from_milli)
    }
}

/// A graph whose scalar edge weights are derived from per-edge criteria
/// vectors through a [`Functional`].
///
/// Changing the functional (or any criteria vector) re-scalarizes the
/// affected weights; the inner [`Graph`] is what the routing algorithms
/// consume.
///
/// # Example
///
/// ```
/// use route_graph::multiweight::{Functional, MultiWeight, MultiWeightedGraph};
/// use route_graph::{Graph, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut base = Graph::with_nodes(2);
/// let n: Vec<_> = base.node_ids().collect();
/// let e = base.add_edge(n[0], n[1], Weight::UNIT)?;
/// let mut mw = MultiWeightedGraph::from_graph(base);
/// mw.set_criteria(e, MultiWeight {
///     length: Weight::UNIT,
///     congestion: Weight::from_units(2),
///     jogs: Weight::ZERO,
/// })?;
/// mw.set_functional(Functional { length_milli: 1000, congestion_milli: 1000, jogs_milli: 0 })?;
/// assert_eq!(mw.graph().weight(e)?, Weight::from_units(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiWeightedGraph {
    graph: Graph,
    criteria: Vec<MultiWeight>,
    functional: Functional,
}

impl MultiWeightedGraph {
    /// Wraps an existing graph; every edge's criteria vector starts as
    /// pure length equal to its current scalar weight.
    #[must_use]
    pub fn from_graph(graph: Graph) -> MultiWeightedGraph {
        let criteria = (0..graph.edge_count())
            .map(|i| {
                let w = graph
                    .weight(EdgeId::from_index(i))
                    .expect("edge ids are dense");
                MultiWeight::from_length(w)
            })
            .collect();
        MultiWeightedGraph {
            graph,
            criteria,
            functional: Functional::default(),
        }
    }

    /// The scalarized graph the algorithms route on.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the scalarized graph (resource removal etc.).
    /// Scalar weight edits made here are overwritten by the next
    /// re-scalarization; use [`set_criteria`](Self::set_criteria) instead.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The current functional.
    #[must_use]
    pub fn functional(&self) -> Functional {
        self.functional
    }

    /// The criteria vector of an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown edge.
    pub fn criteria(&self, e: EdgeId) -> Result<MultiWeight, GraphError> {
        self.criteria
            .get(e.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds(e))
    }

    /// Sets an edge's criteria vector and re-scalarizes its weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown edge.
    pub fn set_criteria(&mut self, e: EdgeId, w: MultiWeight) -> Result<(), GraphError> {
        let slot = self
            .criteria
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfBounds(e))?;
        *slot = w;
        let scalar = self.functional.evaluate(&w);
        self.graph.set_weight(e, scalar)
    }

    /// Adds `delta` to one edge's congestion component and re-scalarizes,
    /// saturating at [`Weight::MAX`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown edge.
    pub fn add_congestion(&mut self, e: EdgeId, delta: Weight) -> Result<(), GraphError> {
        let mut w = self.criteria(e)?;
        w.congestion = w.congestion.saturating_add(delta);
        self.set_criteria(e, w)
    }

    /// Installs a new functional and re-scalarizes every edge.
    ///
    /// # Errors
    ///
    /// Propagates weight-update errors (cannot occur for dense ids).
    pub fn set_functional(&mut self, functional: Functional) -> Result<(), GraphError> {
        self.functional = functional;
        for (i, w) in self.criteria.iter().enumerate() {
            let scalar = functional.evaluate(w);
            self.graph.set_weight(EdgeId::from_index(i), scalar)?;
        }
        Ok(())
    }

    /// Sums one criteria component over a set of edges — e.g. the true
    /// wirelength or jog count of a routing tree, independent of the
    /// functional used to construct it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown edge.
    pub fn component_total(
        &self,
        edges: &[EdgeId],
        component: impl Fn(&MultiWeight) -> Weight,
    ) -> Result<Weight, GraphError> {
        let mut total = Weight::ZERO;
        for &e in edges {
            total = total.saturating_add(component(&self.criteria(e)?));
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn line() -> (MultiWeightedGraph, Vec<EdgeId>) {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(2)).unwrap();
        let e1 = g.add_edge(n[1], n[2], Weight::from_units(3)).unwrap();
        (MultiWeightedGraph::from_graph(g), vec![e0, e1])
    }

    #[test]
    fn wrapping_preserves_scalar_weights() {
        let (mw, e) = line();
        assert_eq!(mw.graph().weight(e[0]).unwrap(), Weight::from_units(2));
        assert_eq!(
            mw.criteria(e[0]).unwrap().length,
            Weight::from_units(2)
        );
        assert_eq!(mw.criteria(e[0]).unwrap().congestion, Weight::ZERO);
    }

    #[test]
    fn functional_scalarizes_linearly() {
        let f = Functional {
            length_milli: 2000,
            congestion_milli: 500,
            jogs_milli: 100,
        };
        let w = MultiWeight {
            length: Weight::from_units(1),
            congestion: Weight::from_units(4),
            jogs: Weight::from_units(10),
        };
        assert_eq!(f.evaluate(&w), Weight::from_milli(2000 + 2000 + 1000));
    }

    #[test]
    fn congestion_updates_re_scalarize() {
        let (mut mw, e) = line();
        mw.set_functional(Functional {
            length_milli: 1000,
            congestion_milli: 2000,
            jogs_milli: 0,
        })
        .unwrap();
        mw.add_congestion(e[0], Weight::from_units(1)).unwrap();
        assert_eq!(mw.graph().weight(e[0]).unwrap(), Weight::from_units(4)); // 2 + 2·1
        mw.add_congestion(e[0], Weight::from_units(1)).unwrap();
        assert_eq!(mw.graph().weight(e[0]).unwrap(), Weight::from_units(6));
    }

    #[test]
    fn switching_functionals_rescalarizes_everything() {
        let (mut mw, e) = line();
        for edge in &e {
            mw.add_congestion(*edge, Weight::from_units(5)).unwrap();
        }
        // Pure-length view: weights unchanged.
        assert_eq!(mw.graph().weight(e[0]).unwrap(), Weight::from_units(2));
        // Congestion-only view.
        mw.set_functional(Functional {
            length_milli: 0,
            congestion_milli: 1000,
            jogs_milli: 0,
        })
        .unwrap();
        assert_eq!(mw.graph().weight(e[0]).unwrap(), Weight::from_units(5));
        assert_eq!(mw.graph().weight(e[1]).unwrap(), Weight::from_units(5));
    }

    #[test]
    fn component_totals_are_functional_independent() {
        let (mut mw, e) = line();
        mw.add_congestion(e[1], Weight::from_units(7)).unwrap();
        let wire = mw
            .component_total(&e, |w| w.length)
            .unwrap();
        let cong = mw
            .component_total(&e, |w| w.congestion)
            .unwrap();
        assert_eq!(wire, Weight::from_units(5));
        assert_eq!(cong, Weight::from_units(7));
    }

    #[test]
    fn evaluation_saturates_instead_of_overflowing() {
        // A unit coefficient on a MAX component reproduces MAX exactly.
        let f = Functional::default();
        let w = MultiWeight::from_length(Weight::MAX);
        assert_eq!(f.evaluate(&w), Weight::MAX);
        // Amplifying coefficients push past MAX: clamp, don't panic.
        let f = Functional {
            length_milli: u64::MAX,
            congestion_milli: u64::MAX,
            jogs_milli: u64::MAX,
        };
        let w = MultiWeight {
            length: Weight::MAX,
            congestion: Weight::MAX,
            jogs: Weight::MAX,
        };
        assert_eq!(f.evaluate(&w), Weight::MAX);
    }

    #[test]
    fn congestion_accumulation_saturates_at_max() {
        let (mut mw, e) = line();
        mw.add_congestion(e[0], Weight::MAX).unwrap();
        mw.add_congestion(e[0], Weight::MAX).unwrap();
        assert_eq!(mw.criteria(e[0]).unwrap().congestion, Weight::MAX);
        // The scalarized weight stays pinned at the sentinel too once the
        // functional looks at congestion.
        mw.set_functional(Functional {
            length_milli: 0,
            congestion_milli: 1000,
            jogs_milli: 0,
        })
        .unwrap();
        assert_eq!(mw.graph().weight(e[0]).unwrap(), Weight::MAX);
    }

    #[test]
    fn component_totals_saturate_at_max() {
        let (mut mw, e) = line();
        for edge in &e {
            let mut c = mw.criteria(*edge).unwrap();
            c.jogs = Weight::MAX;
            mw.set_criteria(*edge, c).unwrap();
        }
        let total = mw.component_total(&e, |w| w.jogs).unwrap();
        assert_eq!(total, Weight::MAX);
    }

    #[test]
    fn out_of_bounds_edges_are_rejected() {
        let (mut mw, _) = line();
        let ghost = EdgeId::from_index(9);
        assert!(mw.criteria(ghost).is_err());
        assert!(mw.set_criteria(ghost, MultiWeight::default()).is_err());
        assert!(mw.add_congestion(ghost, Weight::UNIT).is_err());
    }

    #[test]
    fn algorithms_route_on_the_scalarized_view() {
        // Two routes from a to c: direct (long, no jogs) vs via b (short
        // but jogged). The functional decides which one Dijkstra picks.
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let direct = g.add_edge(n[0], n[2], Weight::from_units(4)).unwrap();
        let hop1 = g.add_edge(n[0], n[1], Weight::from_units(1)).unwrap();
        let hop2 = g.add_edge(n[1], n[2], Weight::from_units(1)).unwrap();
        let mut mw = MultiWeightedGraph::from_graph(g);
        for e in [hop1, hop2] {
            let mut c = mw.criteria(e).unwrap();
            c.jogs = Weight::from_units(1);
            mw.set_criteria(e, c).unwrap();
        }
        // Jogs free: the two-hop route (cost 2) wins.
        let d = crate::dijkstra::minpath(mw.graph(), n[0], n[2]).unwrap();
        assert_eq!(d, Weight::from_units(2));
        // Heavy jog penalty: the direct edge (cost 4) wins.
        mw.set_functional(Functional {
            length_milli: 1000,
            congestion_milli: 0,
            jogs_milli: 3000,
        })
        .unwrap();
        let d = crate::dijkstra::minpath(mw.graph(), n[0], n[2]).unwrap();
        assert_eq!(d, Weight::from_units(4));
        let _ = direct;
    }

    #[test]
    fn saturating_add_clamps_each_component_independently() {
        let a = MultiWeight {
            length: Weight::from_units(2),
            congestion: Weight::MAX,
            jogs: Weight::ZERO,
        };
        let b = MultiWeight {
            length: Weight::from_units(3),
            congestion: Weight::UNIT,
            jogs: Weight::from_units(1),
        };
        let sum = a.saturating_add(b);
        assert_eq!(sum.length, Weight::from_units(5));
        assert_eq!(sum.congestion, Weight::MAX);
        assert_eq!(sum.jogs, Weight::from_units(1));
    }
}
