//! Exact fixed-point edge weights.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Number of fixed-point subdivisions per whole weight unit.
///
/// Edge weights in the paper start at `w = 1.00` on virgin routing graphs and
/// grow fractionally under congestion (e.g. the Table 1 congestion levels
/// raise the *average* edge weight to `w̄ = 1.28` and `w̄ = 1.55`). Storing
/// weights as integer multiples of `1/1000` keeps every sum exact, which the
/// graph-dominance tests of the arborescence heuristics require.
pub const MILLI_PER_UNIT: u64 = 1000;

/// An exact, non-negative edge/path weight.
///
/// `Weight` is a fixed-point quantity with [`MILLI_PER_UNIT`] subdivisions
/// per unit. All arithmetic is exact integer arithmetic, so equalities such
/// as the dominance relation
/// `minpath(n0, p) == minpath(n0, s) + minpath(s, p)` (paper Definition 4.1)
/// are decidable without tolerance fudging.
///
/// # Example
///
/// ```
/// use route_graph::Weight;
///
/// let a = Weight::from_units(2);
/// let b = Weight::from_milli(500); // 0.5
/// assert_eq!((a + b).as_f64(), 2.5);
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Weight(u64);

impl Weight {
    /// The zero weight.
    pub const ZERO: Weight = Weight(0);

    /// One whole unit (the weight of a virgin routing-graph edge).
    pub const UNIT: Weight = Weight(MILLI_PER_UNIT);

    /// The largest representable weight; useful as an "infinity" sentinel.
    pub const MAX: Weight = Weight(u64::MAX);

    /// Creates a weight of `units` whole units.
    #[must_use]
    pub const fn from_units(units: u64) -> Weight {
        Weight(units * MILLI_PER_UNIT)
    }

    /// Creates a weight from raw fixed-point `milli` subdivisions.
    #[must_use]
    pub const fn from_milli(milli: u64) -> Weight {
        Weight(milli)
    }

    /// Returns the raw fixed-point value in `milli` subdivisions.
    #[must_use]
    pub const fn as_milli(self) -> u64 {
        self.0
    }

    /// Returns the weight as a floating-point number of units.
    ///
    /// Intended for reporting only; algorithmic comparisons should use the
    /// exact integer representation.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MILLI_PER_UNIT as f64
    }

    /// Returns `true` if this is the zero weight.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Weight) -> Option<Weight> {
        self.0.checked_add(rhs.0).map(Weight)
    }

    /// Saturating addition, clamping at [`Weight::MAX`].
    #[must_use]
    pub fn saturating_add(self, rhs: Weight) -> Weight {
        Weight(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at [`Weight::ZERO`].
    #[must_use]
    pub fn saturating_sub(self, rhs: Weight) -> Weight {
        Weight(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies this weight by an integer scale factor.
    #[must_use]
    pub fn scale(self, factor: u64) -> Weight {
        Weight(self.0.saturating_mul(factor))
    }

    /// Saturating fused accumulate: `self + rhs·factor`, with both the
    /// product and the sum clamped at [`Weight::MAX`].
    ///
    /// History-cost accumulators in negotiated-congestion routing call
    /// this once per over-capacity node per iteration; on a grid already
    /// near `Weight::MAX` the total must degrade to "as expensive as
    /// representable", never wrap or panic.
    #[must_use]
    pub fn saturating_add_scaled(self, rhs: Weight, factor: u64) -> Weight {
        self.saturating_add(rhs.scale(factor))
    }
}

impl Add for Weight {
    type Output = Weight;

    fn add(self, rhs: Weight) -> Weight {
        Weight(
            self.0
                .checked_add(rhs.0)
                .expect("weight addition overflowed"),
        )
    }
}

impl AddAssign for Weight {
    fn add_assign(&mut self, rhs: Weight) {
        *self = *self + rhs;
    }
}

impl Sub for Weight {
    type Output = Weight;

    /// # Panics
    ///
    /// Panics if `rhs > self`; weights are non-negative.
    fn sub(self, rhs: Weight) -> Weight {
        Weight(
            self.0
                .checked_sub(rhs.0)
                .expect("weight subtraction underflowed"),
        )
    }
}

impl SubAssign for Weight {
    fn sub_assign(&mut self, rhs: Weight) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Weight {
    type Output = Weight;

    fn mul(self, rhs: u64) -> Weight {
        self.scale(rhs)
    }
}

impl Sum for Weight {
    /// Saturating at [`Weight::MAX`]: aggregate costs over saturated
    /// congestion weights must report "as expensive as representable", not
    /// panic.
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, |acc, w| acc.saturating_add(w))
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(MILLI_PER_UNIT) {
            write!(f, "{}", self.0 / MILLI_PER_UNIT)
        } else {
            write!(f, "{:.3}", self.as_f64())
        }
    }
}

impl From<u64> for Weight {
    /// Converts whole units into a `Weight` (`3u64` becomes `3.000`).
    fn from(units: u64) -> Weight {
        Weight::from_units(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_construction_round_trips() {
        assert_eq!(Weight::from_units(7).as_milli(), 7 * MILLI_PER_UNIT);
        assert_eq!(Weight::from_milli(1234).as_f64(), 1.234);
        assert_eq!(Weight::from(3u64), Weight::from_units(3));
    }

    #[test]
    fn weight_max_lands_in_the_last_histogram_bucket() {
        // Saturated weights get fed to latency histograms as raw milli
        // values; the top bucket must absorb `Weight::MAX` rather than
        // wrap or panic.
        use route_trace::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};
        assert_eq!(bucket_index(Weight::MAX.as_milli()), HISTOGRAM_BUCKETS - 1);
        assert_eq!(
            bucket_upper_bound(bucket_index(Weight::MAX.as_milli())),
            u64::MAX
        );
    }

    #[test]
    fn arithmetic_is_exact() {
        let w = Weight::from_milli(1);
        let mut acc = Weight::ZERO;
        for _ in 0..10_000 {
            acc += w;
        }
        assert_eq!(acc, Weight::from_units(10));
    }

    #[test]
    fn ordering_matches_magnitude() {
        assert!(Weight::from_units(2) < Weight::from_units(3));
        assert!(Weight::from_milli(999) < Weight::UNIT);
        assert_eq!(Weight::ZERO.min(Weight::UNIT), Weight::ZERO);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Weight = (1..=4u64).map(Weight::from_units).sum();
        assert_eq!(total, Weight::from_units(10));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(Weight::MAX.saturating_add(Weight::UNIT), Weight::MAX);
        assert_eq!(Weight::ZERO.saturating_sub(Weight::UNIT), Weight::ZERO);
    }

    #[test]
    fn saturating_add_scaled_clamps_product_and_sum() {
        // Exact when nothing overflows.
        assert_eq!(
            Weight::UNIT.saturating_add_scaled(Weight::from_milli(250), 4),
            Weight::from_milli(2000)
        );
        // Product overflow clamps.
        assert_eq!(
            Weight::ZERO.saturating_add_scaled(Weight::from_milli(u64::MAX / 2), 3),
            Weight::MAX
        );
        // Sum overflow clamps.
        assert_eq!(
            Weight::MAX.saturating_add_scaled(Weight::UNIT, 1),
            Weight::MAX
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Weight::ZERO - Weight::UNIT;
    }

    #[test]
    fn display_formats_units_and_fractions() {
        assert_eq!(Weight::from_units(5).to_string(), "5");
        assert_eq!(Weight::from_milli(1280).to_string(), "1.280");
    }

    #[test]
    fn is_zero_and_scale() {
        assert!(Weight::ZERO.is_zero());
        assert!(!Weight::UNIT.is_zero());
        assert_eq!(Weight::UNIT.scale(4), Weight::from_units(4));
        assert_eq!(Weight::UNIT * 4, Weight::from_units(4));
    }
}
