//! The *distance graph* over a terminal set, and a shortest-paths cache.
//!
//! The KMB and ZEL heuristics, the DOM arborescence construction, and both
//! iterated templates (IGMST, IDOM) all start from the complete graph `G'`
//! over a net `N` whose edge weights are shortest-path costs in `G` (paper
//! Appendix). Since the iterated constructions repeatedly re-evaluate their
//! base heuristic on `N ∪ S ∪ {t}` for thousands of candidates `t`, the
//! expensive part — one Dijkstra per terminal — must be shared across calls;
//! [`TerminalDistances`] provides exactly that factoring (paper §3:
//! "factoring out of H common computations, such as computing
//! shortest-paths").

use std::collections::HashMap;
use std::rc::Rc;

use crate::dijkstra::KernelScratch;
use crate::lowerbound::{Potential, ZeroPotential};
use crate::view::GraphView;
use crate::{GraphError, NodeId, Path, ShortestPaths, Weight};

/// Shortest-path distances (and paths) from every terminal of a net to
/// everywhere in the graph.
///
/// Conceptually this is the distance graph `G'` of the paper plus, for each
/// terminal, the full distance vector to all of `V` — which is what lets an
/// iterated construction price a Steiner candidate `t` against every
/// terminal without running any additional Dijkstra (the graph is
/// undirected, so `dist(t, n_i) = dist(n_i, t)`).
///
/// Terminals can be appended with [`push_terminal`], which is how accepted
/// Steiner points enter the working set of IGMST/IDOM.
///
/// [`push_terminal`]: TerminalDistances::push_terminal
///
/// # Example
///
/// ```
/// use route_graph::{Graph, TerminalDistances, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// let n: Vec<_> = g.node_ids().collect();
/// g.add_edge(n[0], n[1], Weight::from_units(2))?;
/// g.add_edge(n[1], n[2], Weight::from_units(2))?;
/// let td = TerminalDistances::compute(&g, &[n[0], n[2]])?;
/// assert_eq!(td.dist(0, 1), Some(Weight::from_units(4)));
/// assert_eq!(td.dist_to_node(0, n[1]), Some(Weight::from_units(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TerminalDistances {
    terminals: Vec<NodeId>,
    sp: Vec<Rc<ShortestPaths>>,
    /// When `Some`, every run was early-terminated once these nodes were
    /// settled; distances outside the set may be absent. `None` means
    /// full runs — distances to the whole live component are available.
    targets: Option<Vec<NodeId>>,
}

impl TerminalDistances {
    /// Runs one full Dijkstra per terminal.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyTerminalSet`] for an empty list,
    /// [`GraphError::DuplicateTerminal`] for repeats, and node-validity
    /// errors for removed/unknown terminals.
    pub fn compute<G: GraphView>(
        g: &G,
        terminals: &[NodeId],
    ) -> Result<TerminalDistances, GraphError> {
        Self::compute_inner(g, terminals, None, &ZeroPotential)
    }

    /// Like [`compute`](Self::compute), but each per-terminal Dijkstra
    /// stops as soon as every terminal and every **live** node of
    /// `extra_targets` is settled, instead of settling the whole
    /// component.
    ///
    /// For the target set, queried distances and paths are *exactly*
    /// those a full run would report (Dijkstra settles in nondecreasing
    /// distance order, so truncation never changes the settled prefix);
    /// distances to nodes outside the target set may be absent even when
    /// the node is reachable. Callers must therefore confine their
    /// queries — including [`push_terminal`](Self::push_terminal), whose
    /// new source must itself be a target — to
    /// `terminals ∪ extra_targets`. On chip-scale routing graphs this
    /// turns the per-net distance computation from whole-graph into a
    /// neighborhood-sized search, and (because only examined nodes enter
    /// the speculative [read set](crate::readset)) is what lets the
    /// parallel router accept speculation on spatially disjoint nets.
    ///
    /// # Errors
    ///
    /// As [`compute`](Self::compute).
    pub fn compute_to_targets<G: GraphView>(
        g: &G,
        terminals: &[NodeId],
        extra_targets: &[NodeId],
    ) -> Result<TerminalDistances, GraphError> {
        Self::compute_to_targets_guided(g, terminals, extra_targets, &ZeroPotential)
    }

    /// Goal-oriented variant of [`compute_to_targets`]: each per-terminal
    /// early-terminating Dijkstra is steered by `potential`, an admissible
    /// lower bound on the distance to the nearest member of
    /// `terminals ∪ extra_targets` (see [`lowerbound`](crate::lowerbound)).
    /// For every target-set query the distances and paths are exactly
    /// those of the plain computation — the guidance only shrinks the set
    /// of *extra* nodes each run happens to settle on the way.
    ///
    /// [`push_terminal`](Self::push_terminal) on a guided instance runs
    /// unguided (the potential is not retained); the appended terminal's
    /// distances are identical either way.
    ///
    /// # Errors
    ///
    /// As [`compute`](Self::compute).
    ///
    /// [`compute_to_targets`]: Self::compute_to_targets
    pub fn compute_to_targets_guided<G: GraphView, P: Potential>(
        g: &G,
        terminals: &[NodeId],
        extra_targets: &[NodeId],
        potential: &P,
    ) -> Result<TerminalDistances, GraphError> {
        let mut targets: Vec<NodeId> = terminals.to_vec();
        // Dead extras can never settle and would defeat early
        // termination, silently degrading to a full-component run.
        targets.extend(extra_targets.iter().copied().filter(|&v| g.is_node_live(v)));
        targets.sort_unstable();
        targets.dedup();
        Self::compute_inner(g, terminals, Some(targets), potential)
    }

    fn compute_inner<G: GraphView, P: Potential>(
        g: &G,
        terminals: &[NodeId],
        targets: Option<Vec<NodeId>>,
        potential: &P,
    ) -> Result<TerminalDistances, GraphError> {
        if terminals.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        let mut seen = vec![false; g.node_count()];
        for &t in terminals {
            g.require_live_node(t)?;
            if seen[t.index()] {
                return Err(GraphError::DuplicateTerminal(t));
            }
            seen[t.index()] = true;
        }
        let sp = if crate::par::dijkstra_fanout() > 1 && terminals.len() > 1 {
            Self::fanned_runs(g, terminals, &targets, potential)?
        } else {
            terminals
                .iter()
                .map(|&t| Self::one_run(g, t, &targets, potential).map(Rc::new))
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(TerminalDistances {
            terminals: terminals.to_vec(),
            sp,
            targets,
        })
    }

    fn one_run<G: GraphView, P: Potential>(
        g: &G,
        t: NodeId,
        targets: &Option<Vec<NodeId>>,
        potential: &P,
    ) -> Result<ShortestPaths, GraphError> {
        match targets {
            Some(set) => ShortestPaths::run_to_targets_guided(g, t, set, potential),
            None => ShortestPaths::run_guided(g, t, potential),
        }
    }

    /// Runs the per-terminal Dijkstras on scoped worker threads — the
    /// intra-net fallback the wavefront scheduler enables (through
    /// [`par`](crate::par)) when its conflict DAG exposes fewer ready
    /// nets than it has workers.
    ///
    /// Results are slotted by terminal index, so the output (and any
    /// error: the lowest-indexed failing terminal wins, matching the
    /// sequential loop) is independent of thread scheduling. Each thread
    /// records into its own read-set recorder and the union is merged
    /// back into the calling worker's recorder afterwards — without
    /// this, reads made on the fan-out threads would escape the
    /// speculative conflict check and acceptance would be unsound. The
    /// merged set can only be a superset of the sequential one (threads
    /// past a failing terminal keep running), which is conservative.
    fn fanned_runs<G: GraphView, P: Potential>(
        g: &G,
        terminals: &[NodeId],
        targets: &Option<Vec<NodeId>>,
        potential: &P,
    ) -> Result<Vec<Rc<ShortestPaths>>, GraphError> {
        let workers = crate::par::dijkstra_fanout().min(terminals.len());
        let parent_recording = crate::readset::is_active();
        let parent_span = route_trace::current_span();
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::DijkstraFanouts, 1);
        }
        let mut slots: Vec<Option<Result<ShortestPaths, GraphError>>> =
            (0..terminals.len()).map(|_| None).collect();
        let mut merged_reads: Vec<NodeId> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        route_trace::adopt_parent(parent_span);
                        if parent_recording {
                            crate::readset::begin();
                        }
                        let runs: Vec<(usize, Result<ShortestPaths, GraphError>)> = terminals
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, &t)| (i, Self::one_run(g, t, targets, potential)))
                            .collect();
                        let reads = if parent_recording {
                            crate::readset::take()
                        } else {
                            Vec::new()
                        };
                        (runs, reads)
                    })
                })
                .collect();
            for handle in handles {
                let (runs, reads) = handle.join().expect("distance worker panicked");
                for (i, r) in runs {
                    slots[i] = Some(r);
                }
                merged_reads.extend_from_slice(&reads);
            }
        });
        crate::readset::extend(&merged_reads);
        slots
            .into_iter()
            .map(|slot| slot.expect("every terminal computed").map(Rc::new))
            .collect()
    }

    /// The terminal list, in index order.
    #[must_use]
    pub fn terminals(&self) -> &[NodeId] {
        &self.terminals
    }

    /// Number of terminals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terminals.len()
    }

    /// Returns `true` if there are no terminals (never, post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terminals.is_empty()
    }

    /// Index of `v` within the terminal list, if it is a terminal.
    #[must_use]
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.terminals.iter().position(|&t| t == v)
    }

    /// Distance-graph edge weight between terminals `i` and `j`, or `None`
    /// if they are disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is not a valid terminal index.
    #[must_use]
    pub fn dist(&self, i: usize, j: usize) -> Option<Weight> {
        self.sp[i].dist(self.terminals[j])
    }

    /// Distance from terminal `i` to an arbitrary node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid terminal index.
    #[must_use]
    pub fn dist_to_node(&self, i: usize, v: NodeId) -> Option<Weight> {
        self.sp[i].dist(v)
    }

    /// Concrete shortest path between terminals `i` and `j`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if no path exists.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is not a valid terminal index.
    pub fn path(&self, i: usize, j: usize) -> Result<Path, GraphError> {
        self.sp[i].path_to(self.terminals[j])
    }

    /// Concrete shortest path from terminal `i` to an arbitrary node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if no path exists.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid terminal index.
    pub fn path_to_node(&self, i: usize, v: NodeId) -> Result<Path, GraphError> {
        self.sp[i].path_to(v)
    }

    /// The full single-source run for terminal `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid terminal index.
    #[must_use]
    pub fn shortest_paths(&self, i: usize) -> &ShortestPaths {
        &self.sp[i]
    }

    /// Like [`shortest_paths`](Self::shortest_paths) but returns the shared
    /// handle, letting callers retain runs beyond the lifetime of this
    /// structure (PFA keeps runs for its merge bookkeeping).
    #[must_use]
    pub fn shared_shortest_paths(&self, i: usize) -> Rc<ShortestPaths> {
        Rc::clone(&self.sp[i])
    }

    /// Appends a new terminal (e.g. an accepted Steiner point), running one
    /// more Dijkstra. Returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateTerminal`] if `v` is already a
    /// terminal, plus node-validity errors.
    pub fn push_terminal<G: GraphView>(&mut self, g: &G, v: NodeId) -> Result<usize, GraphError> {
        if self.index_of(v).is_some() {
            return Err(GraphError::DuplicateTerminal(v));
        }
        g.require_live_node(v)?;
        // A target-restricted instance keeps the restriction: the new
        // run stops at the same target set, so cross-queries between any
        // two members (all members are targets) remain exact.
        let run = match &self.targets {
            Some(set) => ShortestPaths::run_to_targets(g, v, set)?,
            None => ShortestPaths::run(g, v)?,
        };
        self.sp.push(Rc::new(run));
        self.terminals.push(v);
        Ok(self.terminals.len() - 1)
    }

    /// Returns `true` if every terminal can reach every other terminal.
    #[must_use]
    pub fn all_connected(&self) -> bool {
        (0..self.len()).all(|j| self.dist(0, j).is_some())
    }
}

/// A lazy, memoizing cache of [`ShortestPaths`] runs keyed by source node.
///
/// Useful when an algorithm discovers which sources it needs on the fly —
/// the PFA heuristic runs Dijkstra from every `MaxDom` merge point it
/// creates, and reuses runs when merge points repeat.
///
/// The oracle does not borrow a graph; each [`DistanceOracle::paths`] call
/// takes the view to answer against and remembers its [`GraphView::epoch`].
/// When a later call arrives with a different epoch — the graph was mutated,
/// or a different graph/overlay was passed — every cached run is stale and
/// the cache is flushed before answering.
#[derive(Debug, Default)]
pub struct DistanceOracle {
    cache: HashMap<NodeId, Rc<ShortestPaths>>,
    epoch: Option<u64>,
    /// Reusable kernel buffers for the uncached query entry points below
    /// ([`minpath`](Self::minpath), [`run_to_targets`](Self::run_to_targets)).
    scratch: KernelScratch,
}

impl DistanceOracle {
    /// Creates an empty oracle.
    #[must_use]
    pub fn new() -> DistanceOracle {
        DistanceOracle::default()
    }

    /// Returns (computing and caching on first use) the shortest-paths run
    /// from `source` in `g`.
    ///
    /// If `g`'s epoch differs from the epoch of the view that populated the
    /// cache, the stale entries are discarded first, so answers always
    /// reflect the view as passed.
    ///
    /// # Errors
    ///
    /// Returns node-validity errors for an invalid source.
    pub fn paths<G: GraphView>(
        &mut self,
        g: &G,
        source: NodeId,
    ) -> Result<Rc<ShortestPaths>, GraphError> {
        if self.epoch != Some(g.epoch()) {
            self.cache.clear();
            self.epoch = Some(g.epoch());
        }
        if let Some(sp) = self.cache.get(&source) {
            return Ok(Rc::clone(sp));
        }
        let sp = Rc::new(ShortestPaths::run(g, source)?);
        self.cache.insert(source, Rc::clone(&sp));
        Ok(sp)
    }

    /// Computes `minpath_G(u, v)` over the oracle's scratch arena: the
    /// heap, distance array, and read buffer are reused across calls
    /// instead of being reallocated per query. The answer is exactly
    /// [`dijkstra::minpath`](crate::dijkstra::minpath)'s, always computed
    /// fresh against `g` (no caching, so no epoch staleness to manage).
    ///
    /// # Errors
    ///
    /// As [`dijkstra::minpath`](crate::dijkstra::minpath).
    pub fn minpath<G: GraphView>(
        &mut self,
        g: &G,
        u: NodeId,
        v: NodeId,
    ) -> Result<Weight, GraphError> {
        crate::dijkstra::minpath_with(g, u, v, &mut self.scratch)
    }

    /// Early-terminating run over the oracle's scratch arena; identical
    /// results to [`ShortestPaths::run_to_targets`], minus the per-call
    /// heap and target-flag allocations.
    ///
    /// # Errors
    ///
    /// As [`ShortestPaths::run_to_targets`].
    pub fn run_to_targets<G: GraphView>(
        &mut self,
        g: &G,
        source: NodeId,
        targets: &[NodeId],
    ) -> Result<ShortestPaths, GraphError> {
        ShortestPaths::run_to_targets_with(g, source, targets, &mut self.scratch)
    }

    /// Number of distinct sources cached for the current epoch.
    #[must_use]
    pub fn cached_sources(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(n);
        let ids: Vec<NodeId> = g.node_ids().collect();
        for i in 1..n {
            g.add_edge(ids[i - 1], ids[i], Weight::UNIT).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn pairwise_distances_on_a_path() {
        let (g, n) = path_graph(5);
        let td = TerminalDistances::compute(&g, &[n[0], n[2], n[4]]).unwrap();
        assert_eq!(td.dist(0, 1), Some(Weight::from_units(2)));
        assert_eq!(td.dist(0, 2), Some(Weight::from_units(4)));
        assert_eq!(td.dist(1, 2), Some(Weight::from_units(2)));
        assert!(td.all_connected());
    }

    #[test]
    fn distances_are_symmetric() {
        let (g, n) = path_graph(6);
        let td = TerminalDistances::compute(&g, &[n[1], n[4], n[5]]).unwrap();
        for i in 0..td.len() {
            for j in 0..td.len() {
                assert_eq!(td.dist(i, j), td.dist(j, i));
            }
        }
    }

    #[test]
    fn rejects_empty_and_duplicate_terminals() {
        let (g, n) = path_graph(3);
        assert_eq!(
            TerminalDistances::compute(&g, &[]).unwrap_err(),
            GraphError::EmptyTerminalSet
        );
        assert_eq!(
            TerminalDistances::compute(&g, &[n[0], n[0]]).unwrap_err(),
            GraphError::DuplicateTerminal(n[0])
        );
    }

    #[test]
    fn push_terminal_extends() {
        let (g, n) = path_graph(4);
        let mut td = TerminalDistances::compute(&g, &[n[0], n[3]]).unwrap();
        let idx = td.push_terminal(&g, n[1]).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(td.dist(2, 1), Some(Weight::from_units(2)));
        assert_eq!(
            td.push_terminal(&g, n[1]).unwrap_err(),
            GraphError::DuplicateTerminal(n[1])
        );
    }

    #[test]
    fn dist_to_arbitrary_node_and_paths() {
        let (g, n) = path_graph(5);
        let td = TerminalDistances::compute(&g, &[n[0], n[4]]).unwrap();
        assert_eq!(td.dist_to_node(1, n[2]), Some(Weight::from_units(2)));
        let p = td.path(0, 1).unwrap();
        assert_eq!(p.nodes(), &[n[0], n[1], n[2], n[3], n[4]]);
        let q = td.path_to_node(1, n[3]).unwrap();
        assert_eq!(q.nodes(), &[n[4], n[3]]);
    }

    #[test]
    fn disconnection_is_visible() {
        let (mut g, n) = path_graph(4);
        // Break the path between n1 and n2.
        let e = g
            .edge_ids()
            .find(|&e| g.endpoints(e).unwrap() == (n[1], n[2]))
            .unwrap();
        g.remove_edge(e).unwrap();
        let td = TerminalDistances::compute(&g, &[n[0], n[3]]).unwrap();
        assert_eq!(td.dist(0, 1), None);
        assert!(!td.all_connected());
    }

    #[test]
    fn target_restricted_distances_match_full_runs_on_targets() {
        let (g, n) = path_graph(8);
        let terminals = [n[0], n[4]];
        let pool = [n[1], n[2], n[3]];
        let full = TerminalDistances::compute(&g, &terminals).unwrap();
        let local = TerminalDistances::compute_to_targets(&g, &terminals, &pool).unwrap();
        for i in 0..terminals.len() {
            for j in 0..terminals.len() {
                assert_eq!(local.dist(i, j), full.dist(i, j));
            }
            for &v in &pool {
                assert_eq!(local.dist_to_node(i, v), full.dist_to_node(i, v));
                assert_eq!(
                    local.path_to_node(i, v).unwrap().nodes(),
                    full.path_to_node(i, v).unwrap().nodes()
                );
            }
        }
        // Far nodes beyond the target set are not settled...
        assert_eq!(local.dist_to_node(0, n[7]), None);
        // ...but the full computation still reaches them.
        assert_eq!(full.dist_to_node(0, n[7]), Some(Weight::from_units(7)));
    }

    #[test]
    fn target_restriction_survives_push_terminal() {
        let (g, n) = path_graph(8);
        let mut local =
            TerminalDistances::compute_to_targets(&g, &[n[0], n[4]], &[n[2]]).unwrap();
        let idx = local.push_terminal(&g, n[2]).unwrap();
        // The new member's run covers the target set exactly...
        assert_eq!(local.dist(idx, 0), Some(Weight::from_units(2)));
        assert_eq!(local.dist(idx, 1), Some(Weight::from_units(2)));
        // ...and still stops early.
        assert_eq!(local.dist_to_node(idx, n[7]), None);
    }

    #[test]
    fn dead_extra_targets_do_not_block_early_termination() {
        let (mut g, n) = path_graph(8);
        g.remove_node(n[6]).unwrap();
        let local =
            TerminalDistances::compute_to_targets(&g, &[n[0], n[2]], &[n[1], n[6]]).unwrap();
        assert_eq!(local.dist(0, 1), Some(Weight::from_units(2)));
        // The dead extra was dropped from the target set, so the run
        // terminated at n2 instead of flooding to the end of the path.
        assert_eq!(local.dist_to_node(0, n[5]), None);
    }

    #[test]
    fn fanned_runs_match_sequential() {
        let (g, n) = path_graph(9);
        let terminals = [n[0], n[4], n[8]];
        let sequential = TerminalDistances::compute(&g, &terminals).unwrap();
        let fanned = {
            let _guard = crate::par::FanoutGuard::new(3);
            TerminalDistances::compute(&g, &terminals).unwrap()
        };
        for i in 0..terminals.len() {
            for j in 0..terminals.len() {
                assert_eq!(fanned.dist(i, j), sequential.dist(i, j), "({i}, {j})");
            }
            for &v in &n {
                assert_eq!(fanned.dist_to_node(i, v), sequential.dist_to_node(i, v));
            }
        }
        assert_eq!(
            fanned.path(0, 2).unwrap().nodes(),
            sequential.path(0, 2).unwrap().nodes()
        );
    }

    #[test]
    fn fanned_target_restricted_runs_match_sequential() {
        let (g, n) = path_graph(10);
        let terminals = [n[0], n[5]];
        let pool = [n[1], n[2], n[3], n[4]];
        let sequential =
            TerminalDistances::compute_to_targets(&g, &terminals, &pool).unwrap();
        let fanned = {
            let _guard = crate::par::FanoutGuard::new(2);
            TerminalDistances::compute_to_targets(&g, &terminals, &pool).unwrap()
        };
        for i in 0..terminals.len() {
            for &v in &pool {
                assert_eq!(fanned.dist_to_node(i, v), sequential.dist_to_node(i, v));
            }
        }
        // Early termination survives the fan-out.
        assert_eq!(fanned.dist_to_node(0, n[9]), None);
    }

    #[test]
    fn fanned_runs_merge_worker_read_sets() {
        use std::collections::HashSet;
        let (g, n) = path_graph(6);
        let terminals = [n[0], n[5]];
        crate::readset::begin();
        TerminalDistances::compute(&g, &terminals).unwrap();
        let sequential: HashSet<NodeId> = crate::readset::take().into_iter().collect();
        crate::readset::begin();
        {
            let _guard = crate::par::FanoutGuard::new(2);
            TerminalDistances::compute(&g, &terminals).unwrap();
        }
        let fanned: HashSet<NodeId> = crate::readset::take().into_iter().collect();
        // Reads made on the fan-out threads must flow back into the
        // calling worker's recorder — losing them would let speculation
        // escape the conflict check.
        assert!(
            fanned.is_superset(&sequential),
            "fanned read set lost nodes: {:?}",
            sequential.difference(&fanned).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_caches_runs() {
        let (g, n) = path_graph(4);
        let mut oracle = DistanceOracle::new();
        let a = oracle.paths(&g, n[0]).unwrap();
        let b = oracle.paths(&g, n[0]).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(oracle.cached_sources(), 1);
        oracle.paths(&g, n[2]).unwrap();
        assert_eq!(oracle.cached_sources(), 2);
    }

    #[test]
    fn oracle_invalidates_on_epoch_change() {
        let (mut g, n) = path_graph(4);
        let mut oracle = DistanceOracle::new();
        let before = oracle.paths(&g, n[0]).unwrap();
        assert_eq!(before.dist(n[3]), Some(Weight::from_units(3)));

        // Mutating the graph bumps its epoch; the oracle must not serve
        // the stale run afterwards.
        let e = g.edge_ids().next().unwrap();
        g.add_weight(e, Weight::from_units(10)).unwrap();
        let after = oracle.paths(&g, n[0]).unwrap();
        assert!(!Rc::ptr_eq(&before, &after));
        assert_eq!(after.dist(n[3]), Some(Weight::from_units(13)));
        // The flush dropped every pre-mutation entry.
        assert_eq!(oracle.cached_sources(), 1);
    }
}
