//! # route-graph
//!
//! Weighted-graph substrate for performance-driven FPGA routing, built for the
//! reproduction of *New Performance-Driven FPGA Routing Algorithms*
//! (Alexander & Robins, DAC 1995).
//!
//! The paper's algorithms (KMB, ZEL, IGMST, DJKA, DOM, PFA, IDOM) all operate
//! on arbitrary weighted undirected graphs whose topology mirrors an FPGA's
//! programmable interconnect. This crate provides that foundation:
//!
//! * [`Graph`] — an undirected weighted graph with *removable* nodes and
//!   edges, so a router can commit resources to a net and make them
//!   unavailable to subsequent nets (paper §5), and *mutable* edge weights,
//!   so congestion can be folded into the metric (paper §2, Figure 3).
//! * [`Weight`] — an exact fixed-point weight type. Exactness matters: the
//!   graph-dominance relation of the paper's arborescence heuristics
//!   (Definition 4.1) tests `minpath(n0, p) == minpath(n0, s) + minpath(s, p)`
//!   and would be meaningless under floating-point drift.
//! * [`ShortestPaths`] — Dijkstra single-source shortest paths with parent
//!   links and path extraction, backed by the [`heap::IndexedBinaryHeap`]
//!   decrease-key priority queue. Goal-oriented (A*) variants (`run_guided`,
//!   `run_to_targets_guided`, `minpath_guided`) reorder the frontier by an
//!   admissible lower bound while settling bit-identical distances and paths.
//! * [`lowerbound`] — the admissible potentials steering those variants:
//!   grid-Manhattan bounds for RR-graph-shaped grids and ALT landmark
//!   tables for general graphs, all in saturating [`Weight`] math.
//! * [`csr`] — flat compressed-sparse-row adjacency snapshots
//!   ([`csr::CsrView`]) packing `(neighbor, edge, weight)` into contiguous
//!   arrays for cache-friendly relaxation sweeps; serves both [`GraphView`]
//!   and [`OverlayBase`], so per-worker overlays bind over it unchanged.
//! * [`TerminalDistances`] — the *distance graph* over a net's terminals
//!   (the complete graph whose edge weights are shortest-path costs in `G`),
//!   the shared primitive of KMB, ZEL, DOM and the iterated constructions.
//! * [`mst`] — Prim over complete distance matrices and Kruskal over edge
//!   subsets (with [`dsu::UnionFind`]).
//! * [`grid`] — the `n × m` grid graphs used throughout the paper's Table 1
//!   experiments, with Manhattan coordinates.
//! * [`random`] — seeded random graph / net workload generators.
//! * [`rng`] — a vendored SplitMix64 PRNG so the workspace builds with no
//!   network access (no crates.io dependencies).
//! * [`readset`] — thread-local recording of the nodes a shortest-path
//!   run examined, the conflict-detection primitive of the speculative
//!   parallel router.
//! * [`view`] / [`overlay`] — the [`GraphView`] read abstraction served by
//!   both [`Graph`] and the epoch-tagged copy-on-write [`GraphOverlay`],
//!   which gives the parallel router O(changed) per-worker snapshots with
//!   O(1) restore instead of full clones.
//! * [`shared`] — the wavefront scheduler's single-writer/many-reader
//!   atomic pass graph ([`SharedPassGraph`]), which lets the in-order
//!   committer mutate the pass state while workers keep speculating
//!   against it, with visibility anchored by a published commit sequence.
//! * [`par`] — the thread-local fan-out gate that lets a scheduler worker
//!   spend idle cores on per-terminal Dijkstra parallelism inside one net
//!   when too few disjoint nets are ready.
//! * [`floyd`] — Floyd–Warshall all-pairs shortest paths, used as a test
//!   oracle against Dijkstra.
//!
//! ## Example
//!
//! ```
//! use route_graph::{Graph, Weight, ShortestPaths};
//!
//! # fn main() -> Result<(), route_graph::GraphError> {
//! let mut g = Graph::with_nodes(3);
//! let n = g.node_ids().collect::<Vec<_>>();
//! g.add_edge(n[0], n[1], Weight::from_units(2))?;
//! g.add_edge(n[1], n[2], Weight::from_units(3))?;
//! let sp = ShortestPaths::run(&g, n[0])?;
//! assert_eq!(sp.dist(n[2]), Some(Weight::from_units(5)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod dijkstra;
pub mod distgraph;
pub mod dsu;
mod error;
pub mod floyd;
pub mod graph;
pub mod grid;
pub mod heap;
mod ids;
pub mod lowerbound;
pub mod mst;
pub mod multiweight;
pub mod overlay;
pub mod par;
pub mod path;
pub mod random;
pub mod readset;
pub mod rng;
pub mod shared;
pub mod view;
mod weight;

pub use csr::CsrView;
pub use dijkstra::{KernelScratch, ShortestPaths};
pub use distgraph::{DistanceOracle, TerminalDistances};
pub use lowerbound::{GridPotential, LandmarkPotential, Potential, ZeroPotential};
pub use error::GraphError;
pub use graph::Graph;
pub use grid::GridGraph;
pub use ids::{EdgeId, NodeId};
pub use overlay::{GraphOverlay, OverlayArena, OverlayBase};
pub use path::Path;
pub use shared::{SharedPassGraph, SharedPassView, SharedPassWriter};
pub use view::{GraphView, GraphViewMut};
pub use weight::{Weight, MILLI_PER_UNIT};
