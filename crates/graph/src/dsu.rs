//! Union-find (disjoint set union) with path compression and union by rank.

/// A disjoint-set forest over dense `usize` elements.
///
/// Used by Kruskal's MST (paper Appendix, KMB step 3) and by tree-validity
/// checking.
///
/// # Example
///
/// ```
/// use route_graph::dsu::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    #[must_use]
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Returns the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn redundant_union_returns_false() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn spanning_unions_leave_one_set() {
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.set_count(), 1);
        for i in 0..10 {
            assert!(uf.connected(0, i));
        }
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        assert_eq!(uf.set_count(), 0);
    }
}
