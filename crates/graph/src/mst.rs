//! Minimum spanning trees: Prim over complete distance matrices and Kruskal
//! over edge subsets of any [`GraphView`].
//!
//! Both flavours appear in the KMB heuristic (paper Appendix): `MST(G')`
//! over the complete *distance graph* on the net's terminals, and
//! `MST(G'')` over the subgraph formed by expanding distance-graph edges
//! into concrete shortest paths.

use crate::dsu::UnionFind;
use crate::view::GraphView;
use crate::{EdgeId, NodeId, Weight};

/// A minimum spanning tree of a complete graph over `0..n`, as produced by
/// [`prim_complete`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteMst {
    /// Tree edges as index pairs `(i, j)` with `i, j < n`.
    pub edges: Vec<(usize, usize)>,
    /// Sum of the tree's edge weights.
    pub cost: Weight,
}

/// Computes a minimum spanning tree of the complete graph on `0..n` whose
/// edge weights are given by `dist(i, j)`.
///
/// `dist` may return `None` to indicate that `i` and `j` are disconnected in
/// the underlying graph (an absent distance-graph edge); if the complete
/// graph cannot be spanned, `None` is returned. `dist` is assumed symmetric
/// and is only consulted with `i != j`.
///
/// Runs in `O(n^2)`, which is optimal for dense inputs and is the per-call
/// cost the paper cites for the DOM subroutine.
///
/// # Example
///
/// ```
/// use route_graph::{mst::prim_complete, Weight};
///
/// let w = [[0u64, 1, 4], [1, 0, 2], [4, 2, 0]];
/// let t = prim_complete(3, |i, j| Some(Weight::from_units(w[i][j]))).unwrap();
/// assert_eq!(t.cost, Weight::from_units(3));
/// ```
#[must_use]
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix formulation
pub fn prim_complete(
    n: usize,
    dist: impl Fn(usize, usize) -> Option<Weight>,
) -> Option<CompleteMst> {
    if n == 0 {
        return Some(CompleteMst {
            edges: Vec::new(),
            cost: Weight::ZERO,
        });
    }
    let mut in_tree = vec![false; n];
    let mut best: Vec<Option<(Weight, usize)>> = vec![None; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut cost = Weight::ZERO;
    in_tree[0] = true;
    for j in 1..n {
        best[j] = dist(0, j).map(|w| (w, 0));
    }
    for _ in 1..n {
        let mut pick: Option<(Weight, usize)> = None;
        for (j, entry) in best.iter().enumerate() {
            if in_tree[j] {
                continue;
            }
            if let Some((w, _)) = entry {
                if pick.is_none_or(|(pw, _)| *w < pw) {
                    pick = Some((*w, j));
                }
            }
        }
        let (w, j) = pick?;
        let (_, parent) = best[j].expect("picked node has a best edge");
        in_tree[j] = true;
        edges.push((parent.min(j), parent.max(j)));
        cost = cost.saturating_add(w);
        for (k, entry) in best.iter_mut().enumerate() {
            if in_tree[k] {
                continue;
            }
            if let Some(w) = dist(j, k) {
                if entry.is_none_or(|(ew, _)| w < ew) {
                    *entry = Some((w, j));
                }
            }
        }
    }
    Some(CompleteMst { edges, cost })
}

/// A minimum spanning forest of a subgraph, as produced by
/// [`kruskal_subgraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphMst {
    /// Chosen forest edges.
    pub edges: Vec<EdgeId>,
    /// Sum of the forest's edge weights.
    pub cost: Weight,
    /// `true` if the forest spans all nodes touched by the input edge set in
    /// a single component.
    pub connected: bool,
}

/// Computes a minimum spanning forest of the subgraph of `g` induced by the
/// given edge set (Kruskal).
///
/// Duplicate edge ids are tolerated and used once. Unusable (removed) edges
/// are skipped. The node set of the subgraph is exactly the set of endpoints
/// of usable input edges.
///
/// # Example
///
/// ```
/// use route_graph::{mst::kruskal_subgraph, Graph, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// let n: Vec<_> = g.node_ids().collect();
/// let e0 = g.add_edge(n[0], n[1], Weight::from_units(1))?;
/// let e1 = g.add_edge(n[1], n[2], Weight::from_units(2))?;
/// let e2 = g.add_edge(n[0], n[2], Weight::from_units(9))?;
/// let mst = kruskal_subgraph(&g, &[e0, e1, e2]);
/// assert_eq!(mst.edges, vec![e0, e1]);
/// assert_eq!(mst.cost, Weight::from_units(3));
/// assert!(mst.connected);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn kruskal_subgraph<G: GraphView>(g: &G, edges: &[EdgeId]) -> SubgraphMst {
    let mut seen_edge = vec![false; g.edge_count()];
    let mut sorted: Vec<(Weight, EdgeId)> = Vec::with_capacity(edges.len());
    let mut touched: Vec<NodeId> = Vec::new();
    let mut node_seen = vec![false; g.node_count()];
    for &e in edges {
        if e.index() >= seen_edge.len() || seen_edge[e.index()] || !g.is_edge_usable(e) {
            continue;
        }
        seen_edge[e.index()] = true;
        let w = g.weight(e).expect("usable edge has weight");
        sorted.push((w, e));
        let (a, b) = g.endpoints(e).expect("usable edge has endpoints");
        for v in [a, b] {
            if !node_seen[v.index()] {
                node_seen[v.index()] = true;
                touched.push(v);
            }
        }
    }
    sorted.sort();
    // Compact node indices for the DSU.
    let mut compact = vec![usize::MAX; g.node_count()];
    for (i, &v) in touched.iter().enumerate() {
        compact[v.index()] = i;
    }
    let mut uf = UnionFind::new(touched.len());
    let mut chosen = Vec::new();
    let mut cost = Weight::ZERO;
    for (w, e) in sorted {
        let (a, b) = g.endpoints(e).expect("usable edge has endpoints");
        if uf.union(compact[a.index()], compact[b.index()]) {
            chosen.push(e);
            cost = cost.saturating_add(w);
        }
    }
    let connected = uf.set_count() <= 1;
    SubgraphMst {
        edges: chosen,
        cost,
        connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, GraphError};

    #[test]
    fn prim_matches_known_mst() {
        // Complete K4 with weights forming a known MST of cost 6.
        let w = [
            [0u64, 1, 3, 4],
            [1, 0, 2, 5],
            [3, 2, 0, 3],
            [4, 5, 3, 0],
        ];
        let t = prim_complete(4, |i, j| Some(Weight::from_units(w[i][j]))).unwrap();
        assert_eq!(t.cost, Weight::from_units(6));
        assert_eq!(t.edges.len(), 3);
    }

    #[test]
    fn prim_handles_trivial_sizes() {
        let t0 = prim_complete(0, |_, _| None).unwrap();
        assert!(t0.edges.is_empty());
        let t1 = prim_complete(1, |_, _| None).unwrap();
        assert!(t1.edges.is_empty());
        assert_eq!(t1.cost, Weight::ZERO);
    }

    #[test]
    fn prim_detects_disconnection() {
        // Node 2 unreachable.
        let t = prim_complete(3, |i, j| {
            ((i != 2) && (j != 2)).then(|| Weight::from_units(1))
        });
        assert!(t.is_none());
    }

    #[test]
    fn prim_vs_kruskal_on_random_complete_graphs() {
        use crate::rng::Rng;
        let mut rng = crate::rng::SplitMix64::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(2..9usize);
            let mut g = Graph::with_nodes(n);
            let ids: Vec<NodeId> = g.node_ids().collect();
            let mut w = vec![vec![Weight::ZERO; n]; n];
            let mut all_edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    let wt = Weight::from_units(rng.gen_range(1..50u64));
                    w[i][j] = wt;
                    w[j][i] = wt;
                    all_edges.push(g.add_edge(ids[i], ids[j], wt).unwrap());
                }
            }
            let prim = prim_complete(n, |i, j| Some(w[i][j])).unwrap();
            let kruskal = kruskal_subgraph(&g, &all_edges);
            assert_eq!(prim.cost, kruskal.cost);
            assert!(kruskal.connected);
        }
    }

    #[test]
    fn kruskal_skips_removed_and_duplicate_edges() -> Result<(), GraphError> {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(1))?;
        let e1 = g.add_edge(n[1], n[2], Weight::from_units(2))?;
        g.remove_edge(e1)?;
        let mst = kruskal_subgraph(&g, &[e0, e0, e1]);
        assert_eq!(mst.edges, vec![e0]);
        assert!(mst.connected); // only n0, n1 are touched by usable edges
        Ok(())
    }

    #[test]
    fn kruskal_reports_disconnected_forest() -> Result<(), GraphError> {
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(1))?;
        let e1 = g.add_edge(n[2], n[3], Weight::from_units(1))?;
        let mst = kruskal_subgraph(&g, &[e0, e1]);
        assert_eq!(mst.edges.len(), 2);
        assert!(!mst.connected);
        Ok(())
    }

    #[test]
    fn kruskal_empty_input() {
        let g = Graph::with_nodes(3);
        let mst = kruskal_subgraph(&g, &[]);
        assert!(mst.edges.is_empty());
        assert_eq!(mst.cost, Weight::ZERO);
        assert!(mst.connected);
    }
}
