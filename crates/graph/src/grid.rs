//! Grid graphs with Manhattan coordinates.
//!
//! The paper's Table 1 experiments route random nets on `20 × 20` weighted
//! grid graphs, and Figure 3 observes that a virgin routing graph "resembles
//! a grid-graph with shortest paths between nodes reflecting rectilinear
//! distance". [`GridGraph`] provides that substrate, keeping the coordinate
//! map so workloads and renderers can reason geometrically.

use crate::{EdgeId, Graph, GraphError, NodeId, Weight};

/// A `rows × cols` four-connected grid graph.
///
/// Node `(r, c)` is adjacent to its N/S/E/W neighbours; all edges are
/// created with a uniform initial weight (the paper uses `w = 1.00`).
/// The underlying [`Graph`] is exposed mutably so congestion modelling can
/// reweight edges in place.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let grid = GridGraph::new(3, 4, Weight::UNIT)?;
/// assert_eq!(grid.graph().node_count(), 12);
/// assert_eq!(grid.graph().edge_count(), 3 * 3 + 2 * 4);
/// let a = grid.node_at(0, 0)?;
/// let b = grid.node_at(2, 3)?;
/// assert_eq!(grid.manhattan(a, b), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridGraph {
    graph: Graph,
    rows: usize,
    cols: usize,
}

impl GridGraph {
    /// Builds the grid with every edge at `unit_weight`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyTerminalSet`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize, unit_weight: Weight) -> Result<GridGraph, GraphError> {
        if rows == 0 || cols == 0 {
            return Err(GraphError::EmptyTerminalSet);
        }
        let mut graph = Graph::with_nodes(rows * cols);
        let id = |r: usize, c: usize| NodeId::from_index(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    graph.add_edge(id(r, c), id(r, c + 1), unit_weight)?;
                }
                if r + 1 < rows {
                    graph.add_edge(id(r, c), id(r + 1, c), unit_weight)?;
                }
            }
        }
        Ok(GridGraph { graph, rows, cols })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying graph (congestion reweighting,
    /// resource removal).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Consumes the grid, returning the underlying graph.
    #[must_use]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The node at grid position `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if the position is outside
    /// the grid.
    pub fn node_at(&self, row: usize, col: usize) -> Result<NodeId, GraphError> {
        if row < self.rows && col < self.cols {
            Ok(NodeId::from_index(row * self.cols + col))
        } else {
            Err(GraphError::NodeOutOfBounds(NodeId::from_index(
                row * self.cols + col,
            )))
        }
    }

    /// The `(row, col)` position of a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for a node not in this grid.
    pub fn position(&self, v: NodeId) -> Result<(usize, usize), GraphError> {
        if v.index() < self.rows * self.cols {
            Ok((v.index() / self.cols, v.index() % self.cols))
        } else {
            Err(GraphError::NodeOutOfBounds(v))
        }
    }

    /// Manhattan (rectilinear) distance between two grid nodes, in grid
    /// hops.
    ///
    /// # Panics
    ///
    /// Panics if either node is not part of this grid.
    #[must_use]
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> usize {
        let (ra, ca) = self.position(a).expect("node in grid");
        let (rb, cb) = self.position(b).expect("node in grid");
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// The edge joining two adjacent grid positions, if present.
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.graph
            .neighbors(a)
            .find(|&(u, _, _)| u == b)
            .map(|(_, e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShortestPaths;

    #[test]
    fn dimensions_and_counts() {
        let g = GridGraph::new(4, 5, Weight::UNIT).unwrap();
        assert_eq!(g.rows(), 4);
        assert_eq!(g.cols(), 5);
        assert_eq!(g.graph().node_count(), 20);
        // 4 rows × 4 horizontal edges + 3 vertical gaps × 5 columns
        assert_eq!(g.graph().edge_count(), 4 * 4 + 3 * 5);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(GridGraph::new(0, 3, Weight::UNIT).is_err());
        assert!(GridGraph::new(3, 0, Weight::UNIT).is_err());
    }

    #[test]
    fn positions_round_trip() {
        let g = GridGraph::new(3, 7, Weight::UNIT).unwrap();
        for r in 0..3 {
            for c in 0..7 {
                let v = g.node_at(r, c).unwrap();
                assert_eq!(g.position(v).unwrap(), (r, c));
            }
        }
        assert!(g.node_at(3, 0).is_err());
        assert!(g.position(NodeId::from_index(21)).is_err());
    }

    #[test]
    fn shortest_paths_reflect_rectilinear_distance() {
        // Paper Figure 3(a): on a virgin unit grid, shortest paths equal
        // Manhattan distance.
        let g = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let src = g.node_at(2, 3).unwrap();
        let sp = ShortestPaths::run(g.graph(), src).unwrap();
        for r in 0..6 {
            for c in 0..6 {
                let v = g.node_at(r, c).unwrap();
                assert_eq!(
                    sp.dist(v).unwrap(),
                    Weight::from_units(g.manhattan(src, v) as u64)
                );
            }
        }
    }

    #[test]
    fn detours_after_removal() {
        // Paper Figure 3(b): removing resources forces detours.
        let mut g = GridGraph::new(3, 3, Weight::UNIT).unwrap();
        let a = g.node_at(1, 0).unwrap();
        let mid = g.node_at(1, 1).unwrap();
        let b = g.node_at(1, 2).unwrap();
        g.graph_mut().remove_node(mid).unwrap();
        let sp = ShortestPaths::run(g.graph(), a).unwrap();
        assert_eq!(sp.dist(b), Some(Weight::from_units(4)));
    }

    #[test]
    fn edge_between_adjacent_nodes() {
        let g = GridGraph::new(2, 2, Weight::UNIT).unwrap();
        let a = g.node_at(0, 0).unwrap();
        let b = g.node_at(0, 1).unwrap();
        let d = g.node_at(1, 1).unwrap();
        assert!(g.edge_between(a, b).is_some());
        assert!(g.edge_between(a, d).is_none());
    }

    #[test]
    fn manhattan_distance() {
        let g = GridGraph::new(10, 10, Weight::UNIT).unwrap();
        let a = g.node_at(1, 8).unwrap();
        let b = g.node_at(4, 2).unwrap();
        assert_eq!(g.manhattan(a, b), 9);
        assert_eq!(g.manhattan(a, a), 0);
    }
}
