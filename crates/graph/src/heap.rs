//! An indexed binary min-heap with decrease-key.
//!
//! Dijkstra's algorithm and Prim's algorithm both want a priority queue that
//! supports lowering the priority of an element already in the queue. This
//! heap indexes elements by a dense `usize` key (a node index), so
//! decrease-key is `O(log n)` with no allocation per operation.

/// An indexed binary min-heap over dense `usize` keys with priorities `P`.
///
/// Each key may be present at most once; [`push`](IndexedBinaryHeap::push)
/// inserts or decreases (never increases) the priority of a key.
///
/// # Example
///
/// ```
/// use route_graph::heap::IndexedBinaryHeap;
///
/// let mut h = IndexedBinaryHeap::new(4);
/// h.push(2, 30u64);
/// h.push(0, 10);
/// h.push(1, 20);
/// h.push(2, 5); // decrease-key
/// assert_eq!(h.pop(), Some((2, 5)));
/// assert_eq!(h.pop(), Some((0, 10)));
/// assert_eq!(h.pop(), Some((1, 20)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedBinaryHeap<P> {
    /// `heap[i] = (priority, key)`
    heap: Vec<(P, usize)>,
    /// `pos[key] = Some(index into heap)` while the key is queued.
    pos: Vec<Option<usize>>,
}

impl<P> Default for IndexedBinaryHeap<P> {
    /// An empty heap with no key capacity; grow it with
    /// [`ensure_keys`](IndexedBinaryHeap::ensure_keys) before pushing.
    fn default() -> IndexedBinaryHeap<P> {
        IndexedBinaryHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }
}

impl<P: Ord + Copy> IndexedBinaryHeap<P> {
    /// Creates a heap able to hold keys `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> IndexedBinaryHeap<P> {
        IndexedBinaryHeap {
            heap: Vec::with_capacity(capacity.min(1024)),
            pos: vec![None; capacity],
        }
    }

    /// Grows the key capacity to at least `capacity`, keeping queued
    /// entries intact. New keys start unqueued.
    pub fn ensure_keys(&mut self, capacity: usize) {
        if self.pos.len() < capacity {
            self.pos.resize(capacity, None);
        }
    }

    /// Empties the heap in `O(len)` without releasing its allocations, so
    /// a scratch arena can reuse one heap across kernel queries instead of
    /// reallocating `pos` (`O(node_count)`) per call.
    pub fn clear(&mut self) {
        for &(_, key) in &self.heap {
            self.pos[key] = None;
        }
        self.heap.clear();
    }

    /// Number of queued keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no key is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the queued priority of `key`, if any.
    #[must_use]
    pub fn priority(&self, key: usize) -> Option<P> {
        let i = self.pos.get(key).copied().flatten()?;
        Some(self.heap[i].0)
    }

    /// Inserts `key` with `priority`, or decreases its priority if already
    /// queued with a higher one. Returns `true` if the heap changed.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the capacity given to
    /// [`new`](IndexedBinaryHeap::new).
    pub fn push(&mut self, key: usize, priority: P) -> bool {
        match self.pos[key] {
            Some(i) => {
                if priority < self.heap[i].0 {
                    self.heap[i].0 = priority;
                    self.sift_up(i);
                    true
                } else {
                    false
                }
            }
            None => {
                let i = self.heap.len();
                self.heap.push((priority, key));
                self.pos[key] = Some(i);
                self.sift_up(i);
                true
            }
        }
    }

    /// Removes and returns the `(key, priority)` with minimum priority.
    pub fn pop(&mut self) -> Option<(usize, P)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let (priority, key) = self.heap.pop().expect("nonempty");
        self.pos[key] = None;
        if !self.heap.is_empty() {
            self.pos[self.heap[0].1] = Some(0);
            self.sift_down(0);
        }
        Some((key, priority))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 < self.heap[parent].0 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].0 < self.heap[smallest].0 {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].0 < self.heap[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].1] = Some(i);
        self.pos[self.heap[j].1] = Some(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = IndexedBinaryHeap::new(10);
        for (k, p) in [(3, 7u64), (1, 2), (4, 9), (0, 1), (2, 5)] {
            h.push(k, p);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedBinaryHeap::new(3);
        h.push(0, 10u64);
        h.push(1, 20);
        h.push(2, 30);
        assert!(h.push(2, 1));
        assert_eq!(h.pop(), Some((2, 1)));
    }

    #[test]
    fn increase_attempt_is_ignored() {
        let mut h = IndexedBinaryHeap::new(2);
        h.push(0, 5u64);
        assert!(!h.push(0, 50));
        assert_eq!(h.priority(0), Some(5));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn priority_lookup() {
        let mut h = IndexedBinaryHeap::new(4);
        assert_eq!(h.priority(1), None);
        h.push(1, 42u64);
        assert_eq!(h.priority(1), Some(42));
        h.pop();
        assert_eq!(h.priority(1), None);
    }

    #[test]
    fn reinsert_after_pop() {
        let mut h = IndexedBinaryHeap::new(2);
        h.push(0, 1u64);
        assert_eq!(h.pop(), Some((0, 1)));
        h.push(0, 2);
        assert_eq!(h.pop(), Some((0, 2)));
        assert!(h.is_empty());
    }

    #[test]
    fn clear_resets_without_reallocation() {
        let mut h = IndexedBinaryHeap::new(4);
        h.push(0, 3u64);
        h.push(1, 1);
        h.push(3, 2);
        h.pop();
        h.clear();
        assert!(h.is_empty());
        for k in 0..4 {
            assert_eq!(h.priority(k), None);
        }
        // The heap must be fully usable again after clearing.
        h.push(3, 9);
        h.push(0, 4);
        assert_eq!(h.pop(), Some((0, 4)));
        assert_eq!(h.pop(), Some((3, 9)));
    }

    #[test]
    fn ensure_keys_grows_capacity() {
        let mut h = IndexedBinaryHeap::new(2);
        h.push(1, 5u64);
        h.ensure_keys(8);
        h.push(7, 1);
        assert_eq!(h.pop(), Some((7, 1)));
        assert_eq!(h.pop(), Some((1, 5)));
    }

    #[test]
    fn tuple_priorities_order_lexicographically() {
        let mut h = IndexedBinaryHeap::new(3);
        h.push(0, (2u64, 9u64));
        h.push(1, (2, 1));
        h.push(2, (1, 99));
        assert_eq!(h.pop(), Some((2, (1, 99))));
        assert_eq!(h.pop(), Some((1, (2, 1))));
        assert_eq!(h.pop(), Some((0, (2, 9))));
    }

    #[test]
    fn randomized_against_sort() {
        use crate::rng::Rng;
        let mut rng = crate::rng::SplitMix64::seed_from_u64(7);
        for _ in 0..20 {
            let n = 64;
            let mut h = IndexedBinaryHeap::new(n);
            let mut best = vec![u64::MAX; n];
            for _ in 0..300 {
                let k = rng.gen_range(0..n);
                let p = rng.gen_range(0..1000u64);
                h.push(k, p);
                if best[k] == u64::MAX || p < best[k] {
                    best[k] = p.min(best[k]);
                }
            }
            let mut expect: Vec<(u64, usize)> = best
                .iter()
                .enumerate()
                .filter(|(_, &p)| p != u64::MAX)
                .map(|(k, &p)| (p, k))
                .collect();
            expect.sort();
            let mut got = Vec::new();
            while let Some((k, p)) = h.pop() {
                got.push((p, k));
            }
            let mut got_sorted = got.clone();
            got_sorted.sort();
            assert_eq!(got_sorted, expect);
            // priorities themselves must come out nondecreasing
            assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }
}
