//! Error type shared by all graph operations.

use std::error::Error;
use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced by graph construction, mutation, and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referred to an index the graph has never allocated.
    NodeOutOfBounds(NodeId),
    /// An edge id referred to an index the graph has never allocated.
    EdgeOutOfBounds(EdgeId),
    /// An operation required a live node, but the node has been removed.
    NodeRemoved(NodeId),
    /// An operation required a usable edge, but the edge (or one of its
    /// endpoints) has been removed.
    EdgeRemoved(EdgeId),
    /// Self-loop edges are rejected; routing graphs never need them.
    SelfLoop(NodeId),
    /// A terminal set was empty where at least one terminal is required.
    EmptyTerminalSet,
    /// Two nodes that an algorithm must connect are in different components
    /// of the (live part of the) graph.
    Disconnected {
        /// Source side of the failed connection.
        from: NodeId,
        /// Unreachable target.
        to: NodeId,
    },
    /// A terminal list contained the same node twice.
    DuplicateTerminal(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds(n) => write!(f, "node {n} is out of bounds"),
            GraphError::EdgeOutOfBounds(e) => write!(f, "edge {e} is out of bounds"),
            GraphError::NodeRemoved(n) => write!(f, "node {n} has been removed"),
            GraphError::EdgeRemoved(e) => write!(f, "edge {e} is unusable (removed)"),
            GraphError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
            GraphError::EmptyTerminalSet => write!(f, "terminal set is empty"),
            GraphError::Disconnected { from, to } => {
                write!(f, "no path from {from} to {to} in the live graph")
            }
            GraphError::DuplicateTerminal(n) => {
                write!(f, "terminal {n} appears more than once")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            GraphError::NodeOutOfBounds(NodeId::from_index(1)).to_string(),
            GraphError::EdgeOutOfBounds(EdgeId::from_index(2)).to_string(),
            GraphError::NodeRemoved(NodeId::from_index(3)).to_string(),
            GraphError::EdgeRemoved(EdgeId::from_index(4)).to_string(),
            GraphError::SelfLoop(NodeId::from_index(5)).to_string(),
            GraphError::EmptyTerminalSet.to_string(),
            GraphError::Disconnected {
                from: NodeId::from_index(0),
                to: NodeId::from_index(9),
            }
            .to_string(),
            GraphError::DuplicateTerminal(NodeId::from_index(6)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with('n'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
