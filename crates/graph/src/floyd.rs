//! Floyd–Warshall all-pairs shortest paths (test oracle).
//!
//! An `O(|V|^3)` reference implementation used to validate Dijkstra and the
//! distance-graph machinery on small instances. Not intended for production
//! routing graphs.

use crate::{Graph, NodeId, Weight};

/// All-pairs shortest-path distances, indexed by dense node indices.
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    dist: Vec<Option<Weight>>,
}

impl AllPairs {
    /// Runs Floyd–Warshall over the live part of `g`.
    #[must_use]
    pub fn run(g: &Graph) -> AllPairs {
        let n = g.node_count();
        let mut dist: Vec<Option<Weight>> = vec![None; n * n];
        for v in g.node_ids() {
            dist[v.index() * n + v.index()] = Some(Weight::ZERO);
        }
        for e in g.edge_ids() {
            let (a, b) = g.endpoints(e).expect("usable edge");
            let w = g.weight(e).expect("usable edge");
            for (i, j) in [(a.index(), b.index()), (b.index(), a.index())] {
                let slot = &mut dist[i * n + j];
                if slot.is_none_or(|d| w < d) {
                    *slot = Some(w);
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                let Some(dik) = dist[i * n + k] else {
                    continue;
                };
                for j in 0..n {
                    let Some(dkj) = dist[k * n + j] else {
                        continue;
                    };
                    let via = dik + dkj;
                    let slot = &mut dist[i * n + j];
                    if slot.is_none_or(|d| via < d) {
                        *slot = Some(via);
                    }
                }
            }
        }
        AllPairs { n, dist }
    }

    /// Distance from `a` to `b`, or `None` if disconnected (or either node
    /// is removed).
    #[must_use]
    pub fn dist(&self, a: NodeId, b: NodeId) -> Option<Weight> {
        if a.index() < self.n && b.index() < self.n {
            self.dist[a.index() * self.n + b.index()]
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridGraph, ShortestPaths};
    use crate::rng::Rng;

    #[test]
    fn agrees_with_dijkstra_on_random_graphs() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(3);
        for _ in 0..10 {
            let n = rng.gen_range(2..20usize);
            let mut g = Graph::with_nodes(n);
            let ids: Vec<NodeId> = g.node_ids().collect();
            let m = rng.gen_range(0..n * 2);
            for _ in 0..m {
                let a = ids[rng.gen_range(0..n)];
                let b = ids[rng.gen_range(0..n)];
                if a != b {
                    g.add_edge(a, b, Weight::from_units(rng.gen_range(0..10u64)))
                        .unwrap();
                }
            }
            let ap = AllPairs::run(&g);
            for &s in &ids {
                let sp = ShortestPaths::run(&g, s).unwrap();
                for &t in &ids {
                    assert_eq!(sp.dist(t), ap.dist(s, t), "source {s}, target {t}");
                }
            }
        }
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let grid = GridGraph::new(4, 4, Weight::UNIT).unwrap();
        let ap = AllPairs::run(grid.graph());
        for a in grid.graph().node_ids() {
            for b in grid.graph().node_ids() {
                assert_eq!(
                    ap.dist(a, b),
                    Some(Weight::from_units(grid.manhattan(a, b) as u64))
                );
            }
        }
    }

    #[test]
    fn removed_nodes_are_invisible() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(ids[0], ids[1], Weight::UNIT).unwrap();
        g.add_edge(ids[1], ids[2], Weight::UNIT).unwrap();
        g.remove_node(ids[1]).unwrap();
        let ap = AllPairs::run(&g);
        assert_eq!(ap.dist(ids[0], ids[2]), None);
        assert_eq!(ap.dist(ids[1], ids[1]), None);
        assert_eq!(ap.dist(ids[0], ids[0]), Some(Weight::ZERO));
    }
}
