//! Typed node and edge identifiers.

use std::fmt;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices assigned in insertion order; they remain valid
/// for the lifetime of the graph even when the node is
/// [removed](crate::Graph::remove_node) (removal is a reversible *mask*, not
/// a deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge in a [`Graph`](crate::Graph).
///
/// Edge ids are dense indices assigned in insertion order and, like node
/// ids, survive removal of the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// Callers are responsible for the index being meaningful for the graph
    /// it is used with; out-of-range ids are rejected by graph methods with
    /// [`GraphError::NodeOutOfBounds`](crate::GraphError::NodeOutOfBounds).
    #[must_use]
    pub const fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a raw dense index.
    #[must_use]
    pub const fn from_index(index: usize) -> EdgeId {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_indices() {
        assert_eq!(NodeId::from_index(42).index(), 42);
        assert_eq!(EdgeId::from_index(7).index(), 7);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(EdgeId::from_index(9).to_string(), "e9");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(1));
    }
}
