//! Admissible lower-bound potentials for goal-oriented (A*) kernel queries.
//!
//! The router's hot path is repeated multi-target Dijkstra fan-outs, and a
//! plain Dijkstra run floods a cost ball around the source until the last
//! target settles. Goal-oriented search ("Dijkstra meets Steiner") reorders
//! the frontier by `dist(v) + h(v)` where `h` is an *admissible* lower bound
//! on the remaining cost to the nearest target, pruning most of the ball
//! while provably settling the same distances.
//!
//! Two providers are implemented:
//!
//! * [`GridPotential`] — for RR-graph-shaped grids: `h(v)` is the Manhattan
//!   distance to the nearest target scaled by the smallest per-hop edge
//!   cost. This is the natural bound for the paper's Table 1/Table 5 grid
//!   substrates where shortest paths reflect rectilinear distance.
//! * [`LandmarkPotential`] — ALT landmarks for general graphs: a small set
//!   of full Dijkstra tables from far-apart landmark nodes, combined via
//!   the triangle inequality into a bound on the distance to the nearest
//!   target.
//!
//! Both providers use *consistent* potentials (`h(v) <= w(v,u) + h(u)` for
//! every live edge), which is what lets the guided kernel settle each node
//! at its true distance on first pop, exactly like plain Dijkstra. All
//! arithmetic saturates at [`Weight::MAX`] / [`Weight::ZERO`] so potentials
//! built over congestion-saturated weights degrade to "no information"
//! instead of wrapping (see DESIGN.md §5g for the correctness argument).

use crate::dijkstra::ShortestPaths;
use crate::view::GraphView;
use crate::{GraphError, GridGraph, NodeId, Weight};

/// An admissible future-cost lower bound for goal-oriented search.
///
/// Implementations must be *admissible* with respect to the target set the
/// potential was built for — `h(v) <= true_dist(v, nearest target)` for
/// every node `v` — and should be *consistent* so the guided kernel never
/// re-expands a settled node. `Sync` is required so the distance-graph
/// fan-out can share one potential across worker threads.
pub trait Potential: Sync {
    /// The lower bound on the cost from `v` to the nearest target.
    fn h(&self, v: NodeId) -> Weight;

    /// `true` for the trivial zero potential, letting the kernel skip
    /// A*-specific accounting (pruning telemetry) on plain runs.
    fn is_zero(&self) -> bool {
        false
    }
}

impl<P: Potential + ?Sized> Potential for &P {
    fn h(&self, v: NodeId) -> Weight {
        (**self).h(v)
    }

    fn is_zero(&self) -> bool {
        (**self).is_zero()
    }
}

/// The trivial potential `h ≡ 0`: guided search degenerates to plain
/// Dijkstra (the kernel's frontier order is bit-identical, see
/// `dijkstra.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroPotential;

impl Potential for ZeroPotential {
    fn h(&self, _v: NodeId) -> Weight {
        Weight::ZERO
    }

    fn is_zero(&self) -> bool {
        true
    }
}

/// Grid-Manhattan distance potential for RR-graph-shaped grids.
///
/// `h(v) = unit_bound · manhattan(v, nearest target)` where `unit_bound`
/// is the minimum over live edges of `weight / manhattan_span`. Any path
/// from `v` to a target `t` crosses at least `manhattan(v, t)` units of
/// rectilinear span, each costing at least `unit_bound`, so the bound is
/// admissible; it is consistent because crossing one edge changes the
/// Manhattan term by at most that edge's span.
///
/// # Example
///
/// ```
/// use route_graph::lowerbound::{GridPotential, Potential};
/// use route_graph::{GridGraph, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let grid = GridGraph::new(8, 8, Weight::UNIT)?;
/// let target = grid.node_at(7, 7)?;
/// let pot = GridPotential::new(&grid, &[target])?;
/// let corner = grid.node_at(0, 0)?;
/// assert_eq!(pot.h(corner), Weight::from_units(14));
/// assert_eq!(pot.h(target), Weight::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridPotential {
    rows: usize,
    cols: usize,
    /// Conservative per-Manhattan-hop cost floor (milli-exact).
    unit_bound: Weight,
    /// Target positions as `(row, col)` pairs.
    targets: Vec<(usize, usize)>,
}

impl GridPotential {
    /// Builds the potential for `targets` over the grid's current live
    /// edge weights.
    ///
    /// The bound is computed against the weights at build time; it stays
    /// admissible as long as no live edge's weight *decreases* below the
    /// captured floor (congestion pricing only raises weights, so rebuild
    /// after any discount pass).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyTerminalSet`] if `targets` is empty, or
    /// [`GraphError::NodeOutOfBounds`] if a target is not a grid node.
    pub fn new(grid: &GridGraph, targets: &[NodeId]) -> Result<GridPotential, GraphError> {
        if targets.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        let g = grid.graph();
        // Floor of cost-per-Manhattan-hop over live edges. Edges that span
        // more than one hop (chords added on top of the grid) divide their
        // weight across the span, keeping the bound admissible; zero-span
        // self-loops never advance a path and are skipped.
        let mut unit_bound = Weight::MAX;
        for e in g.edge_ids() {
            if !g.is_edge_usable(e) {
                continue;
            }
            let Ok((a, b)) = g.endpoints(e) else {
                continue;
            };
            let span = grid.manhattan(a, b) as u64;
            if span == 0 {
                continue;
            }
            let Ok(w) = g.weight(e) else { continue };
            let per_hop = Weight::from_milli(w.as_milli() / span);
            unit_bound = unit_bound.min(per_hop);
        }
        if unit_bound == Weight::MAX {
            // No usable edges: nothing is reachable, so the only honest
            // admissible bound is "unknown" — degrade to zero.
            unit_bound = Weight::ZERO;
        }
        let positions = targets
            .iter()
            .map(|&t| grid.position(t))
            .collect::<Result<Vec<_>, _>>()?;
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::LowerboundBuilds, 1);
        }
        Ok(GridPotential {
            rows: grid.rows(),
            cols: grid.cols(),
            unit_bound,
            targets: positions,
        })
    }
}

impl Potential for GridPotential {
    fn h(&self, v: NodeId) -> Weight {
        if v.index() >= self.rows.saturating_mul(self.cols) {
            return Weight::ZERO; // off-grid nodes get no information
        }
        let (r, c) = (v.index() / self.cols, v.index() % self.cols);
        let mut best = Weight::MAX;
        for &(tr, tc) in &self.targets {
            let hops = (r.abs_diff(tr)).saturating_add(c.abs_diff(tc)) as u64;
            best = best.min(self.unit_bound.scale(hops));
        }
        if best == Weight::MAX {
            Weight::ZERO
        } else {
            best
        }
    }
}

/// ALT (A*, Landmarks, Triangle inequality) potential for general graphs.
///
/// A small set of landmark nodes is chosen by deterministic farthest-point
/// selection; a full Dijkstra table is computed from each. For a landmark
/// `l` with `lo = min_t d(l, t)` and `hi = max_t d(l, t)` over reachable
/// targets, the triangle inequality on an undirected graph gives two lower
/// bounds on the distance from `v` to *every* target, hence to the nearest:
///
/// ```text
/// d(v, t) >= d(l, v) - d(l, t) >= d(l, v) ⊖ hi
/// d(v, t) >= d(l, t) - d(l, v) >= lo ⊖ d(l, v)
/// ```
///
/// The potential is the max of both bounds over all landmarks (saturating
/// subtraction keeps them valid — and merely loose — when table distances
/// saturate at [`Weight::MAX`]).
#[derive(Debug, Clone)]
pub struct LandmarkPotential {
    /// One full single-source table per landmark.
    tables: Vec<ShortestPaths>,
    /// Per landmark: `(min, max)` table distance over reachable targets.
    bounds: Vec<(Weight, Weight)>,
}

impl LandmarkPotential {
    /// Builds a `k`-landmark potential for `targets` over the live part of
    /// `g`.
    ///
    /// Landmark selection is deterministic: the first landmark is the
    /// lowest-index live target, and each subsequent landmark is the live
    /// node maximizing the minimum table distance to the landmarks chosen
    /// so far (lowest index wins ties), which spreads landmarks toward the
    /// graph periphery where the triangle bounds are tightest.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyTerminalSet`] if `targets` is empty or
    /// contains no live node, and propagates invalid-node errors from the
    /// underlying Dijkstra runs.
    pub fn build<G: GraphView>(
        g: &G,
        k: usize,
        targets: &[NodeId],
    ) -> Result<LandmarkPotential, GraphError> {
        let first = targets
            .iter()
            .copied()
            .filter(|&t| g.is_node_live(t))
            .min_by_key(|t| t.index())
            .ok_or(GraphError::EmptyTerminalSet)?;
        let mut tables: Vec<ShortestPaths> = Vec::new();
        let mut picked: Vec<NodeId> = Vec::new();
        let mut next = first;
        for _ in 0..k.max(1) {
            if picked.contains(&next) {
                break; // graph exhausted: every candidate already chosen
            }
            tables.push(ShortestPaths::run(g, next)?);
            picked.push(next);
            // Farthest-point step: maximize the minimum distance to the
            // chosen set, considering only nodes every landmark reaches.
            let mut best: Option<(Weight, NodeId)> = None;
            for v in g.node_ids() {
                if !g.is_node_live(v) || picked.contains(&v) {
                    continue;
                }
                let Some(closest) = tables
                    .iter()
                    .map(|t| t.dist(v))
                    .try_fold(Weight::MAX, |acc, d| d.map(|d| acc.min(d)))
                else {
                    continue;
                };
                let better = match best {
                    None => true,
                    Some((bd, bv)) => closest > bd || (closest == bd && v.index() < bv.index()),
                };
                if better {
                    best = Some((closest, v));
                }
            }
            match best {
                Some((_, v)) => next = v,
                None => break,
            }
        }
        let mut kept_tables = Vec::new();
        let mut bounds = Vec::new();
        for table in tables {
            let mut lo = Weight::MAX;
            let mut hi = Weight::ZERO;
            let mut reachable = 0usize;
            for &t in targets {
                if let Some(d) = table.dist(t) {
                    lo = lo.min(d);
                    hi = hi.max(d);
                    reachable = reachable.saturating_add(1);
                }
            }
            // A landmark that reaches only part of the target set cannot
            // bound the distance to the unreachable rest; keep it only
            // when it covers every target, otherwise the `lo ⊖ d(l,v)`
            // term could exceed the true nearest-target distance.
            if reachable == targets.len() && reachable > 0 {
                kept_tables.push(table);
                bounds.push((lo, hi));
            }
        }
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::LowerboundBuilds, 1);
        }
        Ok(LandmarkPotential {
            tables: kept_tables,
            bounds,
        })
    }

    /// Number of landmarks retained (those covering the full target set).
    #[must_use]
    pub fn landmark_count(&self) -> usize {
        self.tables.len()
    }
}

impl Potential for LandmarkPotential {
    fn h(&self, v: NodeId) -> Weight {
        let mut best = Weight::ZERO;
        for (table, &(lo, hi)) in self.tables.iter().zip(&self.bounds) {
            let Some(dlv) = table.dist(v) else {
                continue; // v unreachable from this landmark: no information
            };
            best = best.max(dlv.saturating_sub(hi));
            best = best.max(lo.saturating_sub(dlv));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, GridGraph};

    #[test]
    fn zero_potential_is_zero_everywhere() {
        let pot = ZeroPotential;
        assert!(pot.is_zero());
        assert_eq!(pot.h(NodeId::from_index(17)), Weight::ZERO);
        // The blanket reference impl forwards both methods.
        let by_ref: &ZeroPotential = &pot;
        assert!(Potential::is_zero(&by_ref));
        assert_eq!(Potential::h(&by_ref, NodeId::from_index(3)), Weight::ZERO);
    }

    #[test]
    fn grid_potential_matches_manhattan_on_uniform_grid() {
        let grid = GridGraph::new(5, 7, Weight::UNIT).unwrap();
        let t = grid.node_at(4, 6).unwrap();
        let pot = GridPotential::new(&grid, &[t]).unwrap();
        assert!(!pot.is_zero());
        for r in 0..5 {
            for c in 0..7 {
                let v = grid.node_at(r, c).unwrap();
                assert_eq!(
                    pot.h(v),
                    Weight::from_units(grid.manhattan(v, t) as u64),
                    "h({r},{c})"
                );
            }
        }
    }

    #[test]
    fn grid_potential_takes_nearest_of_many_targets() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let t1 = grid.node_at(0, 5).unwrap();
        let t2 = grid.node_at(5, 0).unwrap();
        let pot = GridPotential::new(&grid, &[t1, t2]).unwrap();
        let v = grid.node_at(4, 1).unwrap();
        let nearest = grid.manhattan(v, t1).min(grid.manhattan(v, t2)) as u64;
        assert_eq!(pot.h(v), Weight::from_units(nearest));
    }

    #[test]
    fn grid_potential_uses_min_edge_weight() {
        let mut grid = GridGraph::new(3, 3, Weight::from_units(4)).unwrap();
        let a = grid.node_at(0, 0).unwrap();
        let b = grid.node_at(0, 1).unwrap();
        let e = grid.edge_between(a, b).unwrap();
        grid.graph_mut().set_weight(e, Weight::from_milli(500)).unwrap();
        let t = grid.node_at(2, 2).unwrap();
        let pot = GridPotential::new(&grid, &[t]).unwrap();
        // Floor is 0.5 per hop; corner is 4 hops away.
        assert_eq!(pot.h(a), Weight::from_milli(4 * 500));
    }

    #[test]
    fn grid_potential_rejects_empty_and_foreign_targets() {
        let grid = GridGraph::new(3, 3, Weight::UNIT).unwrap();
        assert!(matches!(
            GridPotential::new(&grid, &[]),
            Err(GraphError::EmptyTerminalSet)
        ));
        assert!(matches!(
            GridPotential::new(&grid, &[NodeId::from_index(99)]),
            Err(GraphError::NodeOutOfBounds(_))
        ));
    }

    #[test]
    fn landmark_potential_is_admissible_and_exact_at_landmark_targets() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let t = grid.node_at(5, 5).unwrap();
        let pot = LandmarkPotential::build(grid.graph(), 3, &[t]).unwrap();
        assert!(pot.landmark_count() >= 1);
        let truth = ShortestPaths::run(grid.graph(), t).unwrap();
        for v in grid.graph().node_ids() {
            let bound = pot.h(v);
            let exact = truth.dist(v).unwrap();
            assert!(bound <= exact, "h({v}) = {bound} > {exact}");
        }
        // The first landmark is the target itself, so the bound is exact.
        let far = grid.node_at(0, 0).unwrap();
        assert_eq!(pot.h(far), truth.dist(far).unwrap());
    }

    #[test]
    fn landmark_potential_skips_partial_coverage() {
        // Two disconnected components: a landmark in one cannot bound
        // distances to targets split across both, so it must be dropped.
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        g.add_edge(n[2], n[3], Weight::UNIT).unwrap();
        let pot = LandmarkPotential::build(&g, 2, &[n[0], n[2]]).unwrap();
        assert_eq!(pot.landmark_count(), 0);
        assert_eq!(pot.h(n[3]), Weight::ZERO);
    }

    #[test]
    fn landmark_potential_requires_live_targets() {
        let mut g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.remove_node(n[0]).unwrap();
        assert!(matches!(
            LandmarkPotential::build(&g, 2, &[n[0]]),
            Err(GraphError::EmptyTerminalSet)
        ));
    }
}
