//! Dijkstra single-source shortest paths.

use crate::heap::IndexedBinaryHeap;
use crate::view::GraphView;
use crate::{EdgeId, GraphError, NodeId, Path, Weight};

/// The result of a Dijkstra run from one source: distances and parent links
/// for every reachable live node.
///
/// This is the workhorse of every heuristic in the paper — `minpath_G(u, v)`
/// queries, distance-graph construction (KMB/ZEL/DOM), shortest-path trees
/// (DJKA), and the dominance relation of Definition 4.1 are all answered
/// from `ShortestPaths` instances.
///
/// Removed nodes and removed edges are ignored, so the same API serves both
/// virgin routing graphs and graphs with resources already committed to
/// earlier nets.
///
/// # Example
///
/// ```
/// use route_graph::{Graph, ShortestPaths, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::with_nodes(4);
/// let n: Vec<_> = g.node_ids().collect();
/// g.add_edge(n[0], n[1], Weight::from_units(1))?;
/// g.add_edge(n[1], n[3], Weight::from_units(1))?;
/// g.add_edge(n[0], n[2], Weight::from_units(5))?;
/// g.add_edge(n[2], n[3], Weight::from_units(5))?;
/// let sp = ShortestPaths::run(&g, n[0])?;
/// assert_eq!(sp.dist(n[3]), Some(Weight::from_units(2)));
/// assert_eq!(sp.path_to(n[3])?.nodes(), &[n[0], n[1], n[3]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Option<Weight>>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from `source` over the live part of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    pub fn run<G: GraphView>(g: &G, source: NodeId) -> Result<ShortestPaths, GraphError> {
        Self::run_until(g, source, |_| false)
    }

    /// Runs Dijkstra from `source`, stopping early once every node in
    /// `targets` has been settled. Distances to unsettled nodes are absent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    pub fn run_to_targets<G: GraphView>(
        g: &G,
        source: NodeId,
        targets: &[NodeId],
    ) -> Result<ShortestPaths, GraphError> {
        let mut remaining: Vec<bool> = vec![false; g.node_count()];
        let mut missing = 0usize;
        for &t in targets {
            if t.index() < remaining.len() && !remaining[t.index()] {
                remaining[t.index()] = true;
                missing += 1;
            }
        }
        Self::run_until(g, source, move |settled: NodeId| {
            if remaining[settled.index()] {
                remaining[settled.index()] = false;
                missing -= 1;
            }
            missing == 0
        })
    }

    fn run_until<G: GraphView>(
        g: &G,
        source: NodeId,
        done: impl FnMut(NodeId) -> bool,
    ) -> Result<ShortestPaths, GraphError> {
        // Monomorphize the hot loop on the two instrumentation flags so
        // the common disabled/disabled case carries no tally counters, no
        // read buffer, and no branches — the relaxation loop is the
        // router's hottest path and even well-predicted branches there
        // are measurable in the timing bench.
        match (route_trace::enabled(), crate::readset::is_active()) {
            (false, false) => Self::run_until_impl::<G, false, false>(g, source, done),
            (false, true) => Self::run_until_impl::<G, false, true>(g, source, done),
            (true, false) => Self::run_until_impl::<G, true, false>(g, source, done),
            (true, true) => Self::run_until_impl::<G, true, true>(g, source, done),
        }
    }

    fn run_until_impl<G: GraphView, const TRACED: bool, const RECORDING: bool>(
        g: &G,
        source: NodeId,
        mut done: impl FnMut(NodeId) -> bool,
    ) -> Result<ShortestPaths, GraphError> {
        g.require_live_node(source)?;
        // Tally locally and flush once at the end: a thread-local lookup
        // per edge would be measurable. Wall-clock is captured under the
        // same TRACED gate — untraced runs never touch the clock.
        let started = if TRACED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut pops = 0u64;
        let mut relaxations = 0u64;
        // Read-set recording for speculative routing: every settled node
        // and every relaxed neighbor is a node whose liveness or incident
        // edge weights this run observed. Same local-buffer discipline as
        // the counters above.
        let mut reads: Vec<NodeId> = Vec::new();
        let n = g.node_count();
        let mut dist: Vec<Option<Weight>> = vec![None; n];
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap = IndexedBinaryHeap::new(n);
        heap.push(source.index(), Weight::ZERO);
        while let Some((vi, d)) = heap.pop() {
            if TRACED {
                pops += 1;
            }
            let v = NodeId::from_index(vi);
            dist[vi] = Some(d);
            if RECORDING {
                reads.push(v);
            }
            if done(v) {
                break;
            }
            for (u, e, w) in g.neighbors(v) {
                if TRACED {
                    relaxations += 1;
                }
                if RECORDING {
                    reads.push(u);
                }
                if dist[u.index()].is_some() {
                    continue; // settled
                }
                // Saturate: near-`Weight::MAX` congestion weights must rank
                // as "infinitely far", not panic the relaxation.
                let nd = d.saturating_add(w);
                if heap.push(u.index(), nd) {
                    parent[u.index()] = Some((v, e));
                }
            }
        }
        if TRACED {
            route_trace::count(route_trace::Counter::DijkstraRuns, 1);
            route_trace::count(route_trace::Counter::DijkstraHeapPops, pops);
            route_trace::count(route_trace::Counter::DijkstraRelaxations, relaxations);
            if let Some(started) = started {
                route_trace::record_duration(
                    route_trace::Metric::DijkstraRunNs,
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
        }
        if RECORDING {
            crate::readset::extend(&reads);
        }
        Ok(ShortestPaths {
            source,
            dist,
            parent,
        })
    }

    /// The source this run started from.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest-path distance to `v`, or `None` if `v` was unreachable (or
    /// not settled under early termination).
    #[must_use]
    pub fn dist(&self, v: NodeId) -> Option<Weight> {
        self.dist.get(v.index()).copied().flatten()
    }

    /// The parent `(node, edge)` of `v` in the shortest-path tree.
    ///
    /// `None` for the source and for unreached nodes.
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent.get(v.index()).copied().flatten()
    }

    /// Extracts the shortest path from the source to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if `target` was not reached.
    pub fn path_to(&self, target: NodeId) -> Result<Path, GraphError> {
        let cost = self.dist(target).ok_or(GraphError::Disconnected {
            from: self.source,
            to: target,
        })?;
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.parent(cur) {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Ok(Path::from_raw(nodes, edges, cost))
    }

    /// Iterates over all `(node, distance)` pairs that were settled.
    pub fn reached(&self) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (NodeId::from_index(i), d)))
    }
}

/// Computes `minpath_G(u, v)` — the cost of a shortest path between two
/// nodes — with an early-terminating Dijkstra.
///
/// # Errors
///
/// Returns [`GraphError::NodeRemoved`] / [`GraphError::NodeOutOfBounds`] for
/// an invalid endpoint, or [`GraphError::Disconnected`] if no path exists.
pub fn minpath<G: GraphView>(g: &G, u: NodeId, v: NodeId) -> Result<Weight, GraphError> {
    g.require_live_node(v)?;
    let sp = ShortestPaths::run_to_targets(g, u, &[v])?;
    sp.dist(v)
        .ok_or(GraphError::Disconnected { from: u, to: v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// The 6-node example commonly used to exercise Dijkstra.
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(6);
        let n: Vec<NodeId> = g.node_ids().collect();
        let w = Weight::from_units;
        g.add_edge(n[0], n[1], w(7)).unwrap();
        g.add_edge(n[0], n[2], w(9)).unwrap();
        g.add_edge(n[0], n[5], w(14)).unwrap();
        g.add_edge(n[1], n[2], w(10)).unwrap();
        g.add_edge(n[1], n[3], w(15)).unwrap();
        g.add_edge(n[2], n[3], w(11)).unwrap();
        g.add_edge(n[2], n[5], w(2)).unwrap();
        g.add_edge(n[3], n[4], w(6)).unwrap();
        g.add_edge(n[4], n[5], w(9)).unwrap();
        (g, n)
    }

    #[test]
    fn classic_distances() {
        let (g, n) = diamond();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        let d = |i: usize| sp.dist(n[i]).unwrap().as_milli() / 1000;
        assert_eq!(d(0), 0);
        assert_eq!(d(1), 7);
        assert_eq!(d(2), 9);
        assert_eq!(d(3), 20);
        assert_eq!(d(4), 20);
        assert_eq!(d(5), 11);
    }

    #[test]
    fn path_extraction_matches_distance() {
        let (g, n) = diamond();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        for &t in &n {
            let p = sp.path_to(t).unwrap();
            assert_eq!(p.cost(), sp.dist(t).unwrap());
            assert_eq!(p.source(), n[0]);
            assert_eq!(p.target(), t);
        }
    }

    #[test]
    fn unreachable_is_none() {
        let g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[1]), None);
        assert!(matches!(
            sp.path_to(n[1]),
            Err(GraphError::Disconnected { .. })
        ));
        assert!(matches!(
            minpath(&g, n[0], n[1]),
            Err(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn respects_removed_edges() {
        let (mut g, n) = diamond();
        // Remove the cheap 0-2-5 corridor; 0→5 must fall back to the direct
        // 14-weight edge.
        let e = g
            .edge_ids()
            .find(|&e| {
                let (a, b) = g.endpoints(e).unwrap();
                (a == n[2] && b == n[5]) || (a == n[5] && b == n[2])
            })
            .unwrap();
        g.remove_edge(e).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[5]), Some(Weight::from_units(14)));
    }

    #[test]
    fn respects_removed_nodes() {
        let (mut g, n) = diamond();
        g.remove_node(n[2]).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[5]), Some(Weight::from_units(14)));
        assert_eq!(sp.dist(n[2]), None);
    }

    #[test]
    fn removed_source_is_an_error() {
        let (mut g, n) = diamond();
        g.remove_node(n[0]).unwrap();
        assert!(matches!(
            ShortestPaths::run(&g, n[0]),
            Err(GraphError::NodeRemoved(_))
        ));
    }

    #[test]
    fn early_termination_settles_targets() {
        let (g, n) = diamond();
        let sp = ShortestPaths::run_to_targets(&g, n[0], &[n[1], n[2]]).unwrap();
        assert_eq!(sp.dist(n[1]), Some(Weight::from_units(7)));
        assert_eq!(sp.dist(n[2]), Some(Weight::from_units(9)));
        // Distant node 3 (distance 20) must not have been settled.
        assert_eq!(sp.dist(n[3]), None);
    }

    #[test]
    fn minpath_is_symmetric() {
        let (g, n) = diamond();
        for &u in &n {
            for &v in &n {
                assert_eq!(
                    minpath(&g, u, v).unwrap(),
                    minpath(&g, v, u).unwrap(),
                    "minpath({u},{v})"
                );
            }
        }
    }

    #[test]
    fn zero_weight_edges_are_handled() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::ZERO).unwrap();
        g.add_edge(n[1], n[2], Weight::ZERO).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[2]), Some(Weight::ZERO));
        assert_eq!(sp.path_to(n[2]).unwrap().len(), 2);
    }

    #[test]
    fn parallel_edges_pick_cheaper() {
        let mut g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::from_units(5)).unwrap();
        let cheap = g.add_edge(n[0], n[1], Weight::from_units(2)).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[1]), Some(Weight::from_units(2)));
        assert_eq!(sp.path_to(n[1]).unwrap().edges(), &[cheap]);
    }
}
