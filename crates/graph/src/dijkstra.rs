//! Dijkstra single-source shortest paths, plain and goal-oriented.
//!
//! One generic kernel serves both modes. The heap priority is the tuple
//! `(dist + h(v), dist)`: under the zero potential that is `(d, d)`, which
//! compares exactly like the bare distance the historical kernel queued,
//! so plain runs are bit-identical to the pre-A* implementation. Under an
//! admissible consistent potential the same loop becomes goal-oriented A*
//! — settled distances are unchanged and, with the canonical parent
//! tie-break below, returned paths are too (DESIGN.md §5g).

use crate::heap::IndexedBinaryHeap;
use crate::lowerbound::{Potential, ZeroPotential};
use crate::view::GraphView;
use crate::{EdgeId, GraphError, NodeId, Path, Weight};

/// Heap priority of a frontier node: `(dist ⊕ h(node), dist)`. The second
/// component makes key ties pop in ascending true distance, which the
/// identical-paths guarantee of the guided kernel relies on.
type Rank = (Weight, Weight);

/// The result of a Dijkstra run from one source: distances and parent links
/// for every reachable live node.
///
/// This is the workhorse of every heuristic in the paper — `minpath_G(u, v)`
/// queries, distance-graph construction (KMB/ZEL/DOM), shortest-path trees
/// (DJKA), and the dominance relation of Definition 4.1 are all answered
/// from `ShortestPaths` instances.
///
/// Removed nodes and removed edges are ignored, so the same API serves both
/// virgin routing graphs and graphs with resources already committed to
/// earlier nets.
///
/// # Example
///
/// ```
/// use route_graph::{Graph, ShortestPaths, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::with_nodes(4);
/// let n: Vec<_> = g.node_ids().collect();
/// g.add_edge(n[0], n[1], Weight::from_units(1))?;
/// g.add_edge(n[1], n[3], Weight::from_units(1))?;
/// g.add_edge(n[0], n[2], Weight::from_units(5))?;
/// g.add_edge(n[2], n[3], Weight::from_units(5))?;
/// let sp = ShortestPaths::run(&g, n[0])?;
/// assert_eq!(sp.dist(n[3]), Some(Weight::from_units(2)));
/// assert_eq!(sp.path_to(n[3])?.nodes(), &[n[0], n[1], n[3]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Option<Weight>>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from `source` over the live part of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    pub fn run<G: GraphView>(g: &G, source: NodeId) -> Result<ShortestPaths, GraphError> {
        let mut heap = IndexedBinaryHeap::new(g.node_count());
        Self::run_until(g, source, &ZeroPotential, &mut heap, |_| false)
    }

    /// Runs goal-oriented (A*) search from `source`, ordering the frontier
    /// by `dist + h(v)`. With an admissible consistent potential the
    /// settled distances — and, for positive edge weights, the returned
    /// paths — are exactly those of [`run`](ShortestPaths::run).
    ///
    /// Without an early exit the guidance only reorders work, so this
    /// variant pays off through [`run_to_targets_guided`]-style early
    /// termination; it exists so full-table callers can share one entry
    /// point when a potential is already in hand.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    ///
    /// [`run_to_targets_guided`]: ShortestPaths::run_to_targets_guided
    pub fn run_guided<G: GraphView, P: Potential>(
        g: &G,
        source: NodeId,
        potential: &P,
    ) -> Result<ShortestPaths, GraphError> {
        let mut heap = IndexedBinaryHeap::new(g.node_count());
        Self::run_until(g, source, potential, &mut heap, |_| false)
    }

    /// Runs Dijkstra from `source`, stopping early once every node in
    /// `targets` has been settled. Distances to unsettled nodes are absent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    pub fn run_to_targets<G: GraphView>(
        g: &G,
        source: NodeId,
        targets: &[NodeId],
    ) -> Result<ShortestPaths, GraphError> {
        Self::run_to_targets_guided(g, source, targets, &ZeroPotential)
    }

    /// Goal-oriented variant of [`run_to_targets`]: the frontier is ordered
    /// by `dist + h(v)`, so with a potential built for (a superset of)
    /// `targets` the search explores a corridor toward them instead of a
    /// full cost ball. Settled targets carry exactly the plain-Dijkstra
    /// distances and paths; *unsettled* nodes may differ (the guided run
    /// settles fewer of them — that is the speedup).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    ///
    /// [`run_to_targets`]: ShortestPaths::run_to_targets
    pub fn run_to_targets_guided<G: GraphView, P: Potential>(
        g: &G,
        source: NodeId,
        targets: &[NodeId],
        potential: &P,
    ) -> Result<ShortestPaths, GraphError> {
        let mut remaining: Vec<bool> = vec![false; g.node_count()];
        let mut missing = 0usize;
        for &t in targets {
            if t.index() < remaining.len() && !remaining[t.index()] {
                remaining[t.index()] = true;
                missing += 1;
            }
        }
        let mut heap = IndexedBinaryHeap::new(g.node_count());
        Self::run_until(g, source, potential, &mut heap, move |settled: NodeId| {
            if remaining[settled.index()] {
                remaining[settled.index()] = false;
                missing -= 1;
            }
            missing == 0
        })
    }

    /// Scratch-arena variant of [`run_to_targets`]: reuses the caller's
    /// heap and target-flag buffers instead of allocating per query. The
    /// result is identical to the allocating entry point.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`]
    /// if the source is invalid.
    ///
    /// [`run_to_targets`]: ShortestPaths::run_to_targets
    pub fn run_to_targets_with<G: GraphView>(
        g: &G,
        source: NodeId,
        targets: &[NodeId],
        scratch: &mut KernelScratch,
    ) -> Result<ShortestPaths, GraphError> {
        let n = g.node_count();
        scratch.reserve(n);
        let KernelScratch { heap, flags, .. } = scratch;
        heap.clear();
        let mut missing = 0usize;
        for &t in targets.iter() {
            if t.index() < n && !flags[t.index()] {
                flags[t.index()] = true;
                missing += 1;
            }
        }
        let res = Self::run_until(g, source, &ZeroPotential, heap, |settled: NodeId| {
            if flags[settled.index()] {
                flags[settled.index()] = false;
                missing -= 1;
            }
            missing == 0
        });
        // Leave the flag buffer all-false for the next query (early exit
        // clears settled targets; unsettled ones are cleared here).
        for &t in targets.iter() {
            if t.index() < n {
                flags[t.index()] = false;
            }
        }
        res
    }

    fn run_until<G: GraphView, P: Potential>(
        g: &G,
        source: NodeId,
        potential: &P,
        heap: &mut IndexedBinaryHeap<Rank>,
        done: impl FnMut(NodeId) -> bool,
    ) -> Result<ShortestPaths, GraphError> {
        // Monomorphize the hot loop on the two instrumentation flags so
        // the common disabled/disabled case carries no tally counters, no
        // read buffer, and no branches — the relaxation loop is the
        // router's hottest path and even well-predicted branches there
        // are measurable in the timing bench.
        match (route_trace::enabled(), crate::readset::is_active()) {
            (false, false) => Self::run_until_impl::<G, P, false, false>(g, source, potential, heap, done),
            (false, true) => Self::run_until_impl::<G, P, false, true>(g, source, potential, heap, done),
            (true, false) => Self::run_until_impl::<G, P, true, false>(g, source, potential, heap, done),
            (true, true) => Self::run_until_impl::<G, P, true, true>(g, source, potential, heap, done),
        }
    }

    fn run_until_impl<G: GraphView, P: Potential, const TRACED: bool, const RECORDING: bool>(
        g: &G,
        source: NodeId,
        potential: &P,
        heap: &mut IndexedBinaryHeap<Rank>,
        mut done: impl FnMut(NodeId) -> bool,
    ) -> Result<ShortestPaths, GraphError> {
        g.require_live_node(source)?;
        // Tally locally and flush once at the end: a thread-local lookup
        // per edge would be measurable. Wall-clock is captured under the
        // same TRACED gate — untraced runs never touch the clock.
        let started = if TRACED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut pops = 0u64;
        let mut relaxations = 0u64;
        let mut pushes = 0u64;
        // Read-set recording for speculative routing: every settled node
        // and every relaxed neighbor is a node whose liveness or incident
        // edge weights this run observed. Same local-buffer discipline as
        // the counters above.
        let mut reads: Vec<NodeId> = Vec::new();
        let n = g.node_count();
        let mut dist: Vec<Option<Weight>> = vec![None; n];
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        heap.ensure_keys(n);
        heap.push(source.index(), (potential.h(source), Weight::ZERO));
        if TRACED {
            pushes += 1;
        }
        while let Some((vi, (_, d))) = heap.pop() {
            if TRACED {
                pops += 1;
            }
            let v = NodeId::from_index(vi);
            dist[vi] = Some(d);
            if RECORDING {
                reads.push(v);
            }
            if done(v) {
                break;
            }
            for (u, e, w) in g.neighbors(v) {
                if TRACED {
                    relaxations += 1;
                }
                if RECORDING {
                    reads.push(u);
                }
                if dist[u.index()].is_some() {
                    continue; // settled
                }
                // Saturate: near-`Weight::MAX` congestion weights must rank
                // as "infinitely far", not panic the relaxation.
                let nd = d.saturating_add(w);
                let rank: Rank = (nd.saturating_add(potential.h(u)), nd);
                if heap.push(u.index(), rank) {
                    if TRACED {
                        pushes += 1;
                    }
                    parent[u.index()] = Some((v, e));
                } else if heap.priority(u.index()) == Some(rank) {
                    // Canonical tie-break: among equal-cost predecessors,
                    // keep the lexicographically smallest (node, edge)
                    // pair. This makes the chosen parent a function of the
                    // *set* of achieving predecessors rather than of their
                    // relaxation order, which is what lets the guided and
                    // plain kernels return bit-identical paths even though
                    // they relax in different orders (DESIGN.md §5g).
                    if let Some((pv, pe)) = parent[u.index()] {
                        if (v.index(), e.index()) < (pv.index(), pe.index()) {
                            parent[u.index()] = Some((v, e));
                        }
                    }
                }
            }
        }
        if TRACED {
            route_trace::count(route_trace::Counter::DijkstraRuns, 1);
            route_trace::count(route_trace::Counter::DijkstraHeapPops, pops);
            route_trace::count(route_trace::Counter::DijkstraRelaxations, relaxations);
            route_trace::count(route_trace::Counter::HeapPushes, pushes);
            if !potential.is_zero() {
                // Whatever the early exit left queued is frontier work a
                // plain run would (mostly) have settled — the A* dividend.
                route_trace::count(route_trace::Counter::AstarPrunedNodes, heap.len() as u64);
            }
            if let Some(started) = started {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                route_trace::record_duration(route_trace::Metric::DijkstraRunNs, ns);
                route_trace::record_duration(route_trace::Metric::KernelQueryNs, ns);
            }
        }
        if RECORDING {
            crate::readset::extend(&reads);
        }
        Ok(ShortestPaths {
            source,
            dist,
            parent,
        })
    }

    /// The source this run started from.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest-path distance to `v`, or `None` if `v` was unreachable (or
    /// not settled under early termination).
    #[must_use]
    pub fn dist(&self, v: NodeId) -> Option<Weight> {
        self.dist.get(v.index()).copied().flatten()
    }

    /// The parent `(node, edge)` of `v` in the shortest-path tree.
    ///
    /// `None` for the source and for unreached nodes.
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent.get(v.index()).copied().flatten()
    }

    /// Extracts the shortest path from the source to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if `target` was not reached.
    pub fn path_to(&self, target: NodeId) -> Result<Path, GraphError> {
        let cost = self.dist(target).ok_or(GraphError::Disconnected {
            from: self.source,
            to: target,
        })?;
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.parent(cur) {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Ok(Path::from_raw(nodes, edges, cost))
    }

    /// Iterates over all `(node, distance)` pairs that were settled.
    pub fn reached(&self) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (NodeId::from_index(i), d)))
    }
}

/// Reusable per-query buffers for the shortest-path kernel.
///
/// One query's transient state — the indexed heap, the target-flag vector,
/// and a generation-stamped distance array for point-to-point queries —
/// amounts to several `O(node_count)` allocations. A scratch arena (held
/// by [`DistanceOracle`](crate::DistanceOracle)) amortizes them across the
/// thousands of kernel queries a routing pass issues.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// Frontier heap, cleared (not reallocated) between queries.
    heap: IndexedBinaryHeap<Rank>,
    /// Target marks for early termination, all-false between queries.
    flags: Vec<bool>,
    /// Generation stamp validating `dist` entries without clearing them.
    stamp: u64,
    /// `dist[i]` is meaningful iff `dist_stamp[i] == stamp`.
    dist_stamp: Vec<u64>,
    dist: Vec<Weight>,
    /// Read-set buffer reused across recorded queries.
    reads: Vec<NodeId>,
}

impl KernelScratch {
    /// An empty scratch arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> KernelScratch {
        KernelScratch::default()
    }

    /// Grows every buffer to cover node indices `0..n`.
    fn reserve(&mut self, n: usize) {
        self.heap.ensure_keys(n);
        if self.flags.len() < n {
            self.flags.resize(n, false);
        }
        if self.dist_stamp.len() < n {
            self.dist_stamp.resize(n, 0);
            self.dist.resize(n, Weight::ZERO);
        }
    }
}

/// Computes `minpath_G(u, v)` — the cost of a shortest path between two
/// nodes — with an early-terminating Dijkstra.
///
/// # Errors
///
/// Returns [`GraphError::NodeRemoved`] / [`GraphError::NodeOutOfBounds`] for
/// an invalid endpoint, or [`GraphError::Disconnected`] if no path exists.
pub fn minpath<G: GraphView>(g: &G, u: NodeId, v: NodeId) -> Result<Weight, GraphError> {
    g.require_live_node(v)?;
    let sp = ShortestPaths::run_to_targets(g, u, &[v])?;
    sp.dist(v)
        .ok_or(GraphError::Disconnected { from: u, to: v })
}

/// Goal-oriented variant of [`minpath`]: the early-terminating query is
/// steered by `potential` (built for a target set containing `v`). The
/// returned cost is identical to [`minpath`]'s.
///
/// # Errors
///
/// Returns [`GraphError::NodeRemoved`] / [`GraphError::NodeOutOfBounds`] for
/// an invalid endpoint, or [`GraphError::Disconnected`] if no path exists.
pub fn minpath_guided<G: GraphView, P: Potential>(
    g: &G,
    u: NodeId,
    v: NodeId,
    potential: &P,
) -> Result<Weight, GraphError> {
    g.require_live_node(v)?;
    let sp = ShortestPaths::run_to_targets_guided(g, u, &[v], potential)?;
    sp.dist(v)
        .ok_or(GraphError::Disconnected { from: u, to: v })
}

/// Allocation-free variant of [`minpath`] over a scratch arena: the heap,
/// distance array, and read buffer are reused across queries, and no
/// `ShortestPaths` table is materialized. Returns exactly what [`minpath`]
/// returns for the same arguments.
///
/// # Errors
///
/// Returns [`GraphError::NodeRemoved`] / [`GraphError::NodeOutOfBounds`] for
/// an invalid endpoint, or [`GraphError::Disconnected`] if no path exists.
pub fn minpath_with<G: GraphView>(
    g: &G,
    u: NodeId,
    v: NodeId,
    scratch: &mut KernelScratch,
) -> Result<Weight, GraphError> {
    g.require_live_node(v)?;
    g.require_live_node(u)?;
    let traced = route_trace::enabled();
    let recording = crate::readset::is_active();
    let started = if traced {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let n = g.node_count();
    scratch.reserve(n);
    scratch.stamp = scratch.stamp.wrapping_add(1);
    let stamp = scratch.stamp;
    let KernelScratch {
        heap,
        dist_stamp,
        dist,
        reads,
        ..
    } = scratch;
    heap.clear();
    reads.clear();
    let mut pops = 0u64;
    let mut relaxations = 0u64;
    let mut pushes = 1u64;
    heap.push(u.index(), (Weight::ZERO, Weight::ZERO));
    let mut found: Option<Weight> = None;
    while let Some((vi, (_, d))) = heap.pop() {
        pops += 1;
        dist_stamp[vi] = stamp;
        dist[vi] = d;
        if recording {
            reads.push(NodeId::from_index(vi));
        }
        if vi == v.index() {
            found = Some(d);
            break;
        }
        for (w_node, _, w) in g.neighbors(NodeId::from_index(vi)) {
            relaxations += 1;
            if recording {
                reads.push(w_node);
            }
            if dist_stamp[w_node.index()] == stamp {
                continue; // settled this query
            }
            let nd = d.saturating_add(w);
            if heap.push(w_node.index(), (nd, nd)) {
                pushes += 1;
            }
        }
    }
    if traced {
        route_trace::count(route_trace::Counter::DijkstraRuns, 1);
        route_trace::count(route_trace::Counter::DijkstraHeapPops, pops);
        route_trace::count(route_trace::Counter::DijkstraRelaxations, relaxations);
        route_trace::count(route_trace::Counter::HeapPushes, pushes);
        if let Some(started) = started {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            route_trace::record_duration(route_trace::Metric::DijkstraRunNs, ns);
            route_trace::record_duration(route_trace::Metric::KernelQueryNs, ns);
        }
    }
    if recording {
        crate::readset::extend(reads);
    }
    found.ok_or(GraphError::Disconnected { from: u, to: v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// The 6-node example commonly used to exercise Dijkstra.
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(6);
        let n: Vec<NodeId> = g.node_ids().collect();
        let w = Weight::from_units;
        g.add_edge(n[0], n[1], w(7)).unwrap();
        g.add_edge(n[0], n[2], w(9)).unwrap();
        g.add_edge(n[0], n[5], w(14)).unwrap();
        g.add_edge(n[1], n[2], w(10)).unwrap();
        g.add_edge(n[1], n[3], w(15)).unwrap();
        g.add_edge(n[2], n[3], w(11)).unwrap();
        g.add_edge(n[2], n[5], w(2)).unwrap();
        g.add_edge(n[3], n[4], w(6)).unwrap();
        g.add_edge(n[4], n[5], w(9)).unwrap();
        (g, n)
    }

    #[test]
    fn classic_distances() {
        let (g, n) = diamond();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        let d = |i: usize| sp.dist(n[i]).unwrap().as_milli() / 1000;
        assert_eq!(d(0), 0);
        assert_eq!(d(1), 7);
        assert_eq!(d(2), 9);
        assert_eq!(d(3), 20);
        assert_eq!(d(4), 20);
        assert_eq!(d(5), 11);
    }

    #[test]
    fn path_extraction_matches_distance() {
        let (g, n) = diamond();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        for &t in &n {
            let p = sp.path_to(t).unwrap();
            assert_eq!(p.cost(), sp.dist(t).unwrap());
            assert_eq!(p.source(), n[0]);
            assert_eq!(p.target(), t);
        }
    }

    #[test]
    fn unreachable_is_none() {
        let g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[1]), None);
        assert!(matches!(
            sp.path_to(n[1]),
            Err(GraphError::Disconnected { .. })
        ));
        assert!(matches!(
            minpath(&g, n[0], n[1]),
            Err(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn respects_removed_edges() {
        let (mut g, n) = diamond();
        // Remove the cheap 0-2-5 corridor; 0→5 must fall back to the direct
        // 14-weight edge.
        let e = g
            .edge_ids()
            .find(|&e| {
                let (a, b) = g.endpoints(e).unwrap();
                (a == n[2] && b == n[5]) || (a == n[5] && b == n[2])
            })
            .unwrap();
        g.remove_edge(e).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[5]), Some(Weight::from_units(14)));
    }

    #[test]
    fn respects_removed_nodes() {
        let (mut g, n) = diamond();
        g.remove_node(n[2]).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[5]), Some(Weight::from_units(14)));
        assert_eq!(sp.dist(n[2]), None);
    }

    #[test]
    fn removed_source_is_an_error() {
        let (mut g, n) = diamond();
        g.remove_node(n[0]).unwrap();
        assert!(matches!(
            ShortestPaths::run(&g, n[0]),
            Err(GraphError::NodeRemoved(_))
        ));
    }

    #[test]
    fn early_termination_settles_targets() {
        let (g, n) = diamond();
        let sp = ShortestPaths::run_to_targets(&g, n[0], &[n[1], n[2]]).unwrap();
        assert_eq!(sp.dist(n[1]), Some(Weight::from_units(7)));
        assert_eq!(sp.dist(n[2]), Some(Weight::from_units(9)));
        // Distant node 3 (distance 20) must not have been settled.
        assert_eq!(sp.dist(n[3]), None);
    }

    #[test]
    fn minpath_is_symmetric() {
        let (g, n) = diamond();
        for &u in &n {
            for &v in &n {
                assert_eq!(
                    minpath(&g, u, v).unwrap(),
                    minpath(&g, v, u).unwrap(),
                    "minpath({u},{v})"
                );
            }
        }
    }

    #[test]
    fn zero_weight_edges_are_handled() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::ZERO).unwrap();
        g.add_edge(n[1], n[2], Weight::ZERO).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[2]), Some(Weight::ZERO));
        assert_eq!(sp.path_to(n[2]).unwrap().len(), 2);
    }

    #[test]
    fn parallel_edges_pick_cheaper() {
        let mut g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::from_units(5)).unwrap();
        let cheap = g.add_edge(n[0], n[1], Weight::from_units(2)).unwrap();
        let sp = ShortestPaths::run(&g, n[0]).unwrap();
        assert_eq!(sp.dist(n[1]), Some(Weight::from_units(2)));
        assert_eq!(sp.path_to(n[1]).unwrap().edges(), &[cheap]);
    }
}
