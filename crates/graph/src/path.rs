//! Concrete node/edge paths through a graph.

use crate::{EdgeId, Graph, GraphError, NodeId, Weight};

/// A walk through a [`Graph`]: a node sequence plus the edge used for each
/// hop, with its total cost.
///
/// Invariant: `nodes.len() == edges.len() + 1`; the path may consist of a
/// single node and no edges.
///
/// # Example
///
/// ```
/// use route_graph::{Graph, ShortestPaths, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// let n: Vec<_> = g.node_ids().collect();
/// g.add_edge(n[0], n[1], Weight::UNIT)?;
/// g.add_edge(n[1], n[2], Weight::UNIT)?;
/// let sp = ShortestPaths::run(&g, n[0])?;
/// let path = sp.path_to(n[2])?;
/// assert_eq!(path.len(), 2);
/// assert_eq!(path.cost(), Weight::from_units(2));
/// assert_eq!(path.source(), n[0]);
/// assert_eq!(path.target(), n[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
    cost: Weight,
}

impl Path {
    /// Creates the trivial single-node path.
    #[must_use]
    pub fn trivial(node: NodeId) -> Path {
        Path {
            nodes: vec![node],
            edges: Vec::new(),
            cost: Weight::ZERO,
        }
    }

    /// Builds a path from its parts, validating the walk against `g`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequences are inconsistent with each other or
    /// with the graph (wrong arity, an edge not joining consecutive nodes,
    /// or an unusable edge).
    pub fn from_parts(
        g: &Graph,
        nodes: Vec<NodeId>,
        edges: Vec<EdgeId>,
    ) -> Result<Path, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        if nodes.len() != edges.len() + 1 {
            return Err(GraphError::EmptyTerminalSet);
        }
        let mut cost = Weight::ZERO;
        for (i, &e) in edges.iter().enumerate() {
            if !g.is_edge_usable(e) {
                return Err(GraphError::EdgeRemoved(e));
            }
            let (a, b) = g.endpoints(e)?;
            let (u, v) = (nodes[i], nodes[i + 1]);
            if !((a == u && b == v) || (a == v && b == u)) {
                return Err(GraphError::EdgeOutOfBounds(e));
            }
            cost = cost.saturating_add(g.weight(e)?);
        }
        Ok(Path { nodes, edges, cost })
    }

    /// The node sequence, source first.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence, one per hop.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of hops (edges).
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for the trivial single-node path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total weight of the walk.
    #[must_use]
    pub fn cost(&self) -> Weight {
        self.cost
    }

    /// First node of the walk.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the walk.
    #[must_use]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("paths are never empty")
    }

    /// Reverses the walk in place.
    pub fn reverse(&mut self) {
        self.nodes.reverse();
        self.edges.reverse();
    }

    pub(crate) fn from_raw(nodes: Vec<NodeId>, edges: Vec<EdgeId>, cost: Weight) -> Path {
        debug_assert_eq!(nodes.len(), edges.len() + 1);
        Path { nodes, edges, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(2)).unwrap();
        let e1 = g.add_edge(n[1], n[2], Weight::from_units(3)).unwrap();
        (g, n, vec![e0, e1])
    }

    #[test]
    fn from_parts_computes_cost() {
        let (g, n, e) = line();
        let p = Path::from_parts(&g, n.clone(), e).unwrap();
        assert_eq!(p.cost(), Weight::from_units(5));
        assert_eq!(p.source(), n[0]);
        assert_eq!(p.target(), n[2]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn from_parts_rejects_bad_arity() {
        let (g, n, e) = line();
        assert!(Path::from_parts(&g, n[..2].to_vec(), e).is_err());
        assert!(Path::from_parts(&g, Vec::new(), Vec::new()).is_err());
    }

    #[test]
    fn from_parts_rejects_mismatched_edge() {
        let (g, n, e) = line();
        // e[1] does not join n0 and n1
        assert!(Path::from_parts(&g, vec![n[0], n[1]], vec![e[1]]).is_err());
    }

    #[test]
    fn from_parts_rejects_removed_edge() {
        let (mut g, n, e) = line();
        g.remove_edge(e[0]).unwrap();
        assert!(Path::from_parts(&g, n, e).is_err());
    }

    #[test]
    fn trivial_path() {
        let (_, n, _) = line();
        let p = Path::trivial(n[1]);
        assert!(p.is_empty());
        assert_eq!(p.cost(), Weight::ZERO);
        assert_eq!(p.source(), p.target());
    }

    #[test]
    fn reverse_flips_endpoints() {
        let (g, n, e) = line();
        let mut p = Path::from_parts(&g, n.clone(), e).unwrap();
        p.reverse();
        assert_eq!(p.source(), n[2]);
        assert_eq!(p.target(), n[0]);
        assert_eq!(p.cost(), Weight::from_units(5));
    }
}
