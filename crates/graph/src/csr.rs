//! Flat-CSR adjacency snapshots for cache-conscious kernel iteration.
//!
//! [`Graph`](crate::Graph) stores one heap-allocated adjacency `Vec` per
//! node, so a Dijkstra relaxation sweep hops between scattered
//! allocations and re-checks liveness flags per entry. [`CsrView`] packs
//! two contiguous compressed-sparse-row arenas: the *raw* adjacency
//! (tombstones included, insertion order — the [`OverlayBase`] surface),
//! and a *prefiltered* `(neighbor, edge, weight)` lane holding only
//! usable edges between live nodes. The snapshot is immutable, so
//! liveness is resolved once at build time and the relaxation hot loop
//! is a branch-free walk over sequential triples.
//!
//! A `CsrView` is an immutable snapshot: it captures liveness flags,
//! weights, and the base epoch at build time. It implements both
//! [`GraphView`] (route directly against it) and [`OverlayBase`] (bind a
//! [`GraphOverlay`](crate::GraphOverlay) over it when a worker needs the
//! usual per-net mutations — pin masking, congestion exclusion). Because
//! the raw entries and flags are copied verbatim, iteration order — and
//! therefore every routed tree — is bit-identical to iterating the source
//! graph or an overlay bound to it.

use crate::overlay::OverlayBase;
use crate::view::GraphView;
use crate::{EdgeId, GraphError, NodeId, Weight};

/// A contiguous, immutable CSR snapshot of an [`OverlayBase`] graph.
///
/// # Example
///
/// ```
/// use route_graph::{csr::CsrView, Graph, GraphView, ShortestPaths, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// let n: Vec<_> = g.node_ids().collect();
/// g.add_edge(n[0], n[1], Weight::from_units(2))?;
/// g.add_edge(n[1], n[2], Weight::from_units(3))?;
/// let csr = CsrView::build(&g);
/// let sp = ShortestPaths::run(&csr, n[0])?;
/// assert_eq!(sp.dist(n[2]), Some(Weight::from_units(5)));
/// assert_eq!(csr.epoch(), g.epoch());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrView {
    /// `adj[offsets[v]..offsets[v + 1]]` are `v`'s raw adjacency entries.
    offsets: Vec<usize>,
    /// Raw `(neighbor, edge)` pairs in base insertion order, tombstones
    /// included — the [`OverlayBase`] surface, which overlays re-filter
    /// against their own liveness deltas.
    adj: Vec<(NodeId, EdgeId)>,
    /// `live_adj[live_offsets[v]..live_offsets[v + 1]]` are `v`'s *usable*
    /// `(neighbor, edge, weight)` triples, prefiltered at build time (the
    /// snapshot is immutable, so liveness cannot change underneath). The
    /// relaxation hot loop walks this lane with no per-entry flag checks.
    live_offsets: Vec<usize>,
    live_adj: Vec<(NodeId, EdgeId, Weight)>,
    node_alive: Vec<bool>,
    /// Per-edge own removal flag (endpoint liveness excluded).
    edge_alive: Vec<bool>,
    endpoints: Vec<(NodeId, NodeId)>,
    weights: Vec<Weight>,
    live_nodes: usize,
    live_edge_flags: usize,
    epoch: u64,
}

impl CsrView {
    /// Snapshots `base` into flat arrays. `O(nodes + edges)`; the
    /// pathfinder amortizes one build per iteration across every net it
    /// routes against the snapshot.
    pub fn build<B: OverlayBase>(base: &B) -> CsrView {
        let n = base.node_count();
        let m = base.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        let mut node_alive = Vec::with_capacity(n);
        offsets.push(0);
        for i in 0..n {
            let v = NodeId::from_index(i);
            adj.extend_from_slice(base.base_adj(v));
            offsets.push(adj.len());
            node_alive.push(base.is_node_live(v));
        }
        let mut edge_alive = Vec::with_capacity(m);
        let mut endpoints = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        for i in 0..m {
            let e = EdgeId::from_index(i);
            edge_alive.push(base.base_edge_alive(e));
            endpoints.push(base.endpoints(e).expect("edge id below edge_count"));
            weights.push(base.weight(e).expect("edge id below edge_count"));
        }
        let mut live_offsets = Vec::with_capacity(n + 1);
        let mut live_adj = Vec::new();
        live_offsets.push(0);
        for i in 0..n {
            if node_alive[i] {
                for &(u, e) in &adj[offsets[i]..offsets[i + 1]] {
                    if edge_alive[e.index()] && node_alive[u.index()] {
                        live_adj.push((u, e, weights[e.index()]));
                    }
                }
            }
            live_offsets.push(live_adj.len());
        }
        CsrView {
            offsets,
            adj,
            live_offsets,
            live_adj,
            node_alive,
            edge_alive,
            endpoints,
            weights,
            live_nodes: base.live_node_count(),
            live_edge_flags: base.live_edge_count(),
            epoch: base.epoch(),
        }
    }

    /// The raw adjacency index range of `v` (empty for unknown nodes).
    fn adj_range(&self, v: NodeId) -> std::ops::Range<usize> {
        if v.index() < self.node_alive.len() {
            self.offsets[v.index()]..self.offsets[v.index() + 1]
        } else {
            0..0
        }
    }
}

impl GraphView for CsrView {
    fn node_count(&self) -> usize {
        self.node_alive.len()
    }

    fn edge_count(&self) -> usize {
        self.edge_alive.len()
    }

    fn live_node_count(&self) -> usize {
        self.live_nodes
    }

    fn live_edge_count(&self) -> usize {
        self.live_edge_flags
    }

    fn is_node_live(&self, v: NodeId) -> bool {
        self.node_alive.get(v.index()).copied().unwrap_or(false)
    }

    fn is_edge_usable(&self, e: EdgeId) -> bool {
        self.edge_alive.get(e.index()).is_some_and(|&alive| {
            let (a, b) = self.endpoints[e.index()];
            alive && self.node_alive[a.index()] && self.node_alive[b.index()]
        })
    }

    fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        self.endpoints
            .get(e.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds(e))
    }

    fn weight(&self, e: EdgeId) -> Result<Weight, GraphError> {
        self.weights
            .get(e.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds(e))
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        let range = if v.index() < self.node_alive.len() {
            self.live_offsets[v.index()]..self.live_offsets[v.index() + 1]
        } else {
            0..0
        };
        self.live_adj[range].iter().copied()
    }

    fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_alive
            .iter()
            .enumerate()
            .filter(|(_, &alive)| alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_alive.len())
            .map(EdgeId::from_index)
            .filter(|&e| self.is_edge_usable(e))
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl OverlayBase for CsrView {
    fn base_adj(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[self.adj_range(v)]
    }

    fn base_edge_alive(&self, e: EdgeId) -> bool {
        self.edge_alive.get(e.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, GraphOverlay, GraphViewMut, OverlayArena, ShortestPaths};

    /// A small graph with removed nodes, removed edges, and parallel
    /// edges — every liveness case the snapshot must preserve.
    fn mutated_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(6);
        let n: Vec<NodeId> = g.node_ids().collect();
        let w = Weight::from_units;
        g.add_edge(n[0], n[1], w(1)).unwrap();
        g.add_edge(n[1], n[2], w(2)).unwrap();
        let dup = g.add_edge(n[1], n[2], w(1)).unwrap();
        g.add_edge(n[2], n[3], w(3)).unwrap();
        let cut = g.add_edge(n[0], n[3], w(1)).unwrap();
        g.add_edge(n[3], n[4], w(1)).unwrap();
        g.add_edge(n[4], n[5], w(2)).unwrap();
        g.remove_edge(cut).unwrap();
        g.remove_node(n[5]).unwrap();
        let _ = dup;
        (g, n)
    }

    #[test]
    fn snapshot_matches_source_view_surface() {
        let (g, _) = mutated_graph();
        let csr = CsrView::build(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.live_node_count(), g.live_node_count());
        assert_eq!(csr.live_edge_count(), g.live_edge_count());
        assert_eq!(csr.epoch(), g.epoch());
        assert_eq!(
            csr.node_ids().collect::<Vec<_>>(),
            g.node_ids().collect::<Vec<_>>()
        );
        assert_eq!(
            GraphView::edge_ids(&csr).collect::<Vec<_>>(),
            g.edge_ids().collect::<Vec<_>>()
        );
        for i in 0..g.edge_count() {
            let e = EdgeId::from_index(i);
            assert_eq!(csr.is_edge_usable(e), g.is_edge_usable(e), "{e}");
            assert_eq!(GraphView::weight(&csr, e).ok(), g.weight(e).ok());
            assert_eq!(GraphView::endpoints(&csr, e).ok(), g.endpoints(e).ok());
        }
        for v in (0..g.node_count()).map(NodeId::from_index) {
            assert_eq!(
                csr.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>(),
                "adjacency of {v} must match in content and order"
            );
        }
    }

    #[test]
    fn shortest_paths_agree_with_source() {
        let (g, n) = mutated_graph();
        let csr = CsrView::build(&g);
        let on_graph = ShortestPaths::run(&g, n[0]).unwrap();
        let on_csr = ShortestPaths::run(&csr, n[0]).unwrap();
        for &v in &n {
            assert_eq!(on_csr.dist(v), on_graph.dist(v));
            assert_eq!(on_csr.parent(v), on_graph.parent(v));
        }
    }

    #[test]
    fn overlay_over_csr_matches_overlay_over_graph() {
        let (g, n) = mutated_graph();
        let csr = CsrView::build(&g);
        let mut arena_g = OverlayArena::new();
        let mut arena_c = OverlayArena::new();
        let mut over_g = GraphOverlay::bind(&g, &mut arena_g);
        let mut over_c = GraphOverlay::bind(&csr, &mut arena_c);
        // The router's per-net mutations: mask a pin, price an edge up.
        let e0 = g.edge_ids().next().unwrap();
        over_g.apply(n[2], e0);
        over_c.apply(n[2], e0);
        for v in (0..g.node_count()).map(NodeId::from_index) {
            assert_eq!(
                over_c.neighbors(v).collect::<Vec<_>>(),
                over_g.neighbors(v).collect::<Vec<_>>(),
                "overlaid adjacency of {v}"
            );
        }
        let sp_g = ShortestPaths::run(&over_g, n[0]).unwrap();
        let sp_c = ShortestPaths::run(&over_c, n[0]).unwrap();
        for &v in &n {
            assert_eq!(sp_c.dist(v), sp_g.dist(v));
            assert_eq!(sp_c.parent(v), sp_g.parent(v));
        }
    }

    /// Helper trait so the test above applies identical mutations to two
    /// differently-typed overlays.
    trait FnMutProbe {
        fn apply(&mut self, mask: NodeId, price: EdgeId);
    }

    impl<B: OverlayBase> FnMutProbe for GraphOverlay<'_, B> {
        fn apply(&mut self, mask: NodeId, price: EdgeId) {
            self.remove_node(mask).unwrap();
            self.add_weight(price, Weight::from_units(7)).unwrap();
        }
    }

    #[test]
    fn unknown_ids_are_rejected_not_panicked() {
        let (g, _) = mutated_graph();
        let csr = CsrView::build(&g);
        let far_node = NodeId::from_index(99);
        let far_edge = EdgeId::from_index(99);
        assert!(!csr.is_node_live(far_node));
        assert!(!csr.is_edge_usable(far_edge));
        assert!(!csr.base_edge_alive(far_edge));
        assert_eq!(csr.neighbors(far_node).count(), 0);
        assert!(csr.base_adj(far_node).is_empty());
        assert!(matches!(
            GraphView::weight(&csr, far_edge),
            Err(GraphError::EdgeOutOfBounds(_))
        ));
    }
}
