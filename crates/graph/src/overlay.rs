//! Epoch-tagged copy-on-write overlays over a shared base [`Graph`].
//!
//! The parallel routing engine speculates many nets against one immutable
//! pass snapshot. Cloning the snapshot per worker per batch wave costs
//! O(nodes + edges) each time; a [`GraphOverlay`] instead layers a
//! per-worker delta (weight changes, removed/restored nodes and edges)
//! over a borrowed base graph. Every delta slot is tagged with the
//! arena's current *generation*: a slot is live only while its tag equals
//! the generation, so [`GraphOverlay::reset`] — "forget everything this
//! worker scribbled" — is a single generation increment, O(1), no matter
//! how large the graph is.
//!
//! The backing [`OverlayArena`] owns the slot arrays and persists across
//! batch waves (and passes): after the first [`bind`](GraphOverlay::bind)
//! sizes it, later binds cost O(1) plus the O(changed) writes the worker
//! actually performs.
//!
//! Observationally, a bound overlay behaves exactly like `base.clone()`
//! mutated the same way — including adjacency iteration order, which the
//! bit-identity guarantees of the parallel engine rely on. The property
//! tests in `crates/graph/tests/proptest_overlay.rs` assert this under
//! random interleavings.

use crate::view::{GraphView, GraphViewMut};
use crate::{EdgeId, Graph, GraphError, NodeId, Weight};

/// A graph an overlay can layer deltas over.
///
/// Beyond the [`GraphView`] read surface, the overlay needs two raw
/// accessors to preserve base adjacency order exactly: the unfiltered
/// adjacency list of a node (so tombstoned entries are filtered by the
/// *overlay's* liveness, never reordered) and an edge's own removal flag
/// (endpoint liveness excluded, since the overlay re-derives that from
/// its own node state).
///
/// Implemented by [`Graph`] (the batch engine's per-pass snapshot), by
/// [`SharedPassView`](crate::SharedPassView) (the wavefront scheduler's
/// atomically-updated shared pass graph), and by
/// [`CsrView`](crate::csr::CsrView) (the flat-CSR arena the negotiated
/// router snapshots its priced graph into each iteration), so workers can
/// bind the same overlay machinery over any of them.
pub trait OverlayBase: GraphView {
    /// Raw adjacency entries of `v` in insertion order, including entries
    /// whose edge or neighbor is currently removed.
    fn base_adj(&self, v: NodeId) -> &[(NodeId, EdgeId)];

    /// The edge's own removal flag, ignoring endpoint liveness.
    fn base_edge_alive(&self, e: EdgeId) -> bool;
}

impl OverlayBase for Graph {
    fn base_adj(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        self.adj_entries(v)
    }

    fn base_edge_alive(&self, e: EdgeId) -> bool {
        self.edge_alive_flag(e)
    }
}

/// Reusable delta storage for [`GraphOverlay`].
///
/// One arena per worker; it holds epoch-tagged slots for node liveness,
/// edge liveness, and edge weights. All slots whose tag differs from the
/// current generation are *stale* and read through to the base graph.
#[derive(Debug, Clone, Default)]
pub struct OverlayArena {
    /// Current generation; slots are live iff tagged with this value.
    /// Starts at 0 and is bumped to ≥ 1 by the first bind, so zero-filled
    /// slot tags are always stale.
    generation: u64,
    node_epoch: Vec<u64>,
    node_alive: Vec<bool>,
    edge_epoch: Vec<u64>,
    edge_alive: Vec<bool>,
    weight_epoch: Vec<u64>,
    weights: Vec<Weight>,
}

impl OverlayArena {
    /// Creates an empty arena; the first bind sizes it to its base graph.
    #[must_use]
    pub fn new() -> OverlayArena {
        OverlayArena::default()
    }

    /// Grows the slot arrays to cover `nodes`/`edges` ids. Newly added
    /// slots carry tag 0, which is stale for every generation ≥ 1.
    fn ensure_capacity(&mut self, nodes: usize, edges: usize) {
        if self.node_epoch.len() < nodes {
            self.node_epoch.resize(nodes, 0);
            self.node_alive.resize(nodes, false);
        }
        if self.edge_epoch.len() < edges {
            self.edge_epoch.resize(edges, 0);
            self.edge_alive.resize(edges, false);
            self.weight_epoch.resize(edges, 0);
            self.weights.resize(edges, Weight::ZERO);
        }
    }
}

/// A copy-on-write view: a borrowed immutable base [`Graph`] plus this
/// worker's epoch-tagged delta.
///
/// Implements [`GraphView`] and [`GraphViewMut`], so the entire routing
/// stack (Dijkstra, distance graphs, every Steiner construction, the
/// router's net pipeline) runs against it unchanged. Restoring to the
/// pristine base after a net is [`reset`](GraphOverlay::reset) — O(1).
///
/// # Example
///
/// ```
/// use route_graph::{Graph, GraphOverlay, GraphView, GraphViewMut, OverlayArena, Weight};
///
/// # fn main() -> Result<(), route_graph::GraphError> {
/// let mut base = Graph::with_nodes(2);
/// let n: Vec<_> = base.node_ids().collect();
/// let e = base.add_edge(n[0], n[1], Weight::UNIT)?;
/// let mut arena = OverlayArena::new();
/// let mut view = GraphOverlay::bind(&base, &mut arena);
/// view.add_weight(e, Weight::UNIT)?;
/// assert_eq!(view.weight(e)?, Weight::from_units(2));
/// view.reset(); // O(1): back to the base state
/// assert_eq!(view.weight(e)?, Weight::UNIT);
/// assert_eq!(base.weight(e)?, Weight::UNIT); // base never changed
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GraphOverlay<'a, B: OverlayBase = Graph> {
    base: &'a B,
    arena: &'a mut OverlayArena,
    live_nodes: usize,
    live_edge_flags: usize,
    epoch: u64,
}

impl<'a, B: OverlayBase> GraphOverlay<'a, B> {
    /// Binds `arena` over `base`, discarding any deltas a previous bind
    /// left in the arena.
    ///
    /// The first bind against a graph of a given size allocates the slot
    /// arrays (O(nodes + edges), once per worker); every later bind is a
    /// generation bump plus two counter copies.
    pub fn bind(base: &'a B, arena: &'a mut OverlayArena) -> GraphOverlay<'a, B> {
        arena.ensure_capacity(base.node_count(), base.edge_count());
        arena.generation += 1;
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::OverlayBinds, 1);
        }
        GraphOverlay {
            live_nodes: base.live_node_count(),
            live_edge_flags: base.live_edge_count(),
            epoch: base.epoch(),
            base,
            arena,
        }
    }

    /// Discards every delta, restoring the view to the pristine base
    /// state in O(1) (a generation increment).
    pub fn reset(&mut self) {
        self.arena.generation += 1;
        self.live_nodes = self.base.live_node_count();
        self.live_edge_flags = self.base.live_edge_count();
        self.epoch += 1;
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::OverlayResets, 1);
        }
    }

    /// The borrowed base graph.
    #[must_use]
    pub fn base(&self) -> &B {
        self.base
    }

    fn node_alive(&self, v: NodeId) -> bool {
        let i = v.index();
        if i >= self.base.node_count() {
            return false;
        }
        if self.arena.node_epoch[i] == self.arena.generation {
            self.arena.node_alive[i]
        } else {
            self.base.is_node_live(v)
        }
    }

    /// The edge's own removal flag (endpoint liveness not considered).
    fn edge_alive(&self, e: EdgeId) -> bool {
        let i = e.index();
        if i >= self.base.edge_count() {
            return false;
        }
        if self.arena.edge_epoch[i] == self.arena.generation {
            self.arena.edge_alive[i]
        } else {
            self.base.base_edge_alive(e)
        }
    }

    fn weight_of(&self, e: EdgeId) -> Weight {
        let i = e.index();
        if self.arena.weight_epoch[i] == self.arena.generation {
            self.arena.weights[i]
        } else {
            // lint: allow(panic-hygiene): e comes from the base graph's own adjacency, so it is in range by construction
            self.base.weight(e).expect("in-range edge has a weight")
        }
    }

    fn set_node_alive(&mut self, v: NodeId, alive: bool) {
        let i = v.index();
        self.arena.node_epoch[i] = self.arena.generation;
        self.arena.node_alive[i] = alive;
        self.epoch += 1;
    }

    fn set_edge_alive(&mut self, e: EdgeId, alive: bool) {
        let i = e.index();
        self.arena.edge_epoch[i] = self.arena.generation;
        self.arena.edge_alive[i] = alive;
        self.epoch += 1;
    }

    fn check_edge(&self, e: EdgeId) -> Result<(), GraphError> {
        if e.index() < self.base.edge_count() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfBounds(e))
        }
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.base.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds(v))
        }
    }
}

impl<B: OverlayBase> GraphView for GraphOverlay<'_, B> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    fn edge_count(&self) -> usize {
        self.base.edge_count()
    }

    fn live_node_count(&self) -> usize {
        self.live_nodes
    }

    fn live_edge_count(&self) -> usize {
        self.live_edge_flags
    }

    fn is_node_live(&self, v: NodeId) -> bool {
        self.node_alive(v)
    }

    fn is_edge_usable(&self, e: EdgeId) -> bool {
        if !self.edge_alive(e) {
            return false;
        }
        // lint: allow(panic-hygiene): e comes from the base graph's own adjacency, so it is in range by construction
        let (a, b) = self.base.endpoints(e).expect("in-range edge has endpoints");
        self.node_alive(a) && self.node_alive(b)
    }

    fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        self.base.endpoints(e)
    }

    fn weight(&self, e: EdgeId) -> Result<Weight, GraphError> {
        self.check_edge(e)?;
        Ok(self.weight_of(e))
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        let live = self.node_alive(v);
        self.base
            .base_adj(v)
            .iter()
            .filter(move |&&(u, e)| live && self.edge_alive(e) && self.node_alive(u))
            .map(move |&(u, e)| (u, e, self.weight_of(e)))
    }

    fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.base.node_count())
            .map(NodeId::from_index)
            .filter(|&v| self.node_alive(v))
    }

    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.base.edge_count())
            .map(EdgeId::from_index)
            .filter(|&e| self.is_edge_usable(e))
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<B: OverlayBase> GraphViewMut for GraphOverlay<'_, B> {
    fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<(), GraphError> {
        self.check_edge(e)?;
        let i = e.index();
        self.arena.weight_epoch[i] = self.arena.generation;
        self.arena.weights[i] = weight;
        self.epoch += 1;
        Ok(())
    }

    fn add_weight(&mut self, e: EdgeId, delta: Weight) -> Result<(), GraphError> {
        self.check_edge(e)?;
        let next = self.weight_of(e).saturating_add(delta);
        self.set_weight(e, next)
    }

    fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        self.check_edge(e)?;
        if self.edge_alive(e) {
            self.set_edge_alive(e, false);
            self.live_edge_flags -= 1;
        }
        Ok(())
    }

    fn restore_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        self.check_edge(e)?;
        if !self.edge_alive(e) {
            self.set_edge_alive(e, true);
            self.live_edge_flags += 1;
        }
        Ok(())
    }

    fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.check_node(v)?;
        if self.node_alive(v) {
            self.set_node_alive(v, false);
            self.live_nodes -= 1;
        }
        Ok(())
    }

    fn restore_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.check_node(v)?;
        if !self.node_alive(v) {
            self.set_node_alive(v, true);
            self.live_nodes += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        let e0 = g.add_edge(n[0], n[1], Weight::from_units(1)).unwrap();
        let e1 = g.add_edge(n[1], n[2], Weight::from_units(2)).unwrap();
        let e2 = g.add_edge(n[0], n[2], Weight::from_units(4)).unwrap();
        (g, [n[0], n[1], n[2]], [e0, e1, e2])
    }

    #[test]
    fn pristine_overlay_mirrors_the_base() {
        let (g, n, e) = triangle();
        let mut arena = OverlayArena::new();
        let view = GraphOverlay::bind(&g, &mut arena);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.live_node_count(), 3);
        assert_eq!(view.live_edge_count(), 3);
        assert_eq!(view.weight(e[1]).unwrap(), Weight::from_units(2));
        assert!(view.is_edge_usable(e[0]));
        let nbrs: Vec<NodeId> = view.neighbors(n[0]).map(|(u, _, _)| u).collect();
        let base_nbrs: Vec<NodeId> = g.neighbors(n[0]).map(|(u, _, _)| u).collect();
        assert_eq!(nbrs, base_nbrs, "adjacency order matches the base");
    }

    #[test]
    fn deltas_shadow_without_touching_the_base() {
        let (g, n, e) = triangle();
        let mut arena = OverlayArena::new();
        let mut view = GraphOverlay::bind(&g, &mut arena);
        view.set_weight(e[0], Weight::from_units(9)).unwrap();
        view.remove_edge(e[1]).unwrap();
        view.remove_node(n[2]).unwrap();
        assert_eq!(view.weight(e[0]).unwrap(), Weight::from_units(9));
        assert!(!view.is_edge_usable(e[1]));
        assert!(!view.is_node_live(n[2]));
        assert!(!view.is_edge_usable(e[2]), "dead endpoint masks the edge");
        assert_eq!(view.live_node_count(), 2);
        assert_eq!(view.live_edge_count(), 2);
        // The base saw none of it.
        assert_eq!(g.weight(e[0]).unwrap(), Weight::from_units(1));
        assert!(g.is_edge_usable(e[1]));
        assert!(g.is_node_live(n[2]));
    }

    #[test]
    fn reset_restores_in_o1() {
        let (g, n, e) = triangle();
        let mut arena = OverlayArena::new();
        let mut view = GraphOverlay::bind(&g, &mut arena);
        view.set_weight(e[0], Weight::MAX).unwrap();
        view.remove_node(n[1]).unwrap();
        let before = view.epoch();
        view.reset();
        assert!(view.epoch() > before);
        assert_eq!(view.weight(e[0]).unwrap(), Weight::from_units(1));
        assert!(view.is_node_live(n[1]));
        assert_eq!(view.live_node_count(), 3);
        assert_eq!(view.live_edge_count(), 3);
    }

    #[test]
    fn rebinding_a_dirty_arena_starts_pristine() {
        let (g, n, _) = triangle();
        let mut arena = OverlayArena::new();
        {
            let mut view = GraphOverlay::bind(&g, &mut arena);
            view.remove_node(n[0]).unwrap();
            assert_eq!(view.live_node_count(), 2);
        }
        let view = GraphOverlay::bind(&g, &mut arena);
        assert!(view.is_node_live(n[0]));
        assert_eq!(view.live_node_count(), 3);
    }

    #[test]
    fn overlay_tracks_base_removals_through_stale_slots() {
        let (mut g, n, e) = triangle();
        g.remove_edge(e[2]).unwrap();
        g.remove_node(n[1]).unwrap();
        let mut arena = OverlayArena::new();
        let mut view = GraphOverlay::bind(&g, &mut arena);
        assert!(!view.is_edge_usable(e[2]));
        assert!(!view.is_node_live(n[1]));
        assert_eq!(view.live_node_count(), 2);
        // Restoring through the overlay resurrects them in the view only.
        view.restore_node(n[1]).unwrap();
        view.restore_edge(e[2]).unwrap();
        assert!(view.is_node_live(n[1]));
        assert!(view.is_edge_usable(e[2]));
        assert!(!g.is_node_live(n[1]));
    }

    #[test]
    fn out_of_bounds_ids_error_like_the_base() {
        let (g, _, _) = triangle();
        let mut arena = OverlayArena::new();
        let mut view = GraphOverlay::bind(&g, &mut arena);
        let ghost_e = EdgeId::from_index(99);
        let ghost_n = NodeId::from_index(99);
        assert_eq!(
            view.weight(ghost_e),
            Err(GraphError::EdgeOutOfBounds(ghost_e))
        );
        assert_eq!(
            view.set_weight(ghost_e, Weight::UNIT),
            Err(GraphError::EdgeOutOfBounds(ghost_e))
        );
        assert_eq!(
            view.remove_node(ghost_n),
            Err(GraphError::NodeOutOfBounds(ghost_n))
        );
        assert!(!view.is_node_live(ghost_n));
        assert!(!view.is_edge_usable(ghost_e));
        assert_eq!(
            view.require_live_node(ghost_n),
            Err(GraphError::NodeOutOfBounds(ghost_n))
        );
    }

    #[test]
    fn arena_grows_to_the_largest_bound_base() {
        let small = Graph::with_nodes(2);
        let (big, _, e) = triangle();
        let mut arena = OverlayArena::new();
        {
            let view = GraphOverlay::bind(&small, &mut arena);
            assert_eq!(view.node_count(), 2);
        }
        let view = GraphOverlay::bind(&big, &mut arena);
        assert_eq!(view.node_count(), 3);
        assert!(view.is_edge_usable(e[2]));
    }
}
