//! Read (and write) views over routing graphs.
//!
//! [`GraphView`] abstracts the read surface shared by [`Graph`],
//! [`GraphOverlay`](crate::overlay::GraphOverlay), and the flat-CSR
//! snapshot [`CsrView`](crate::csr::CsrView): every shortest-path routine
//! and Steiner construction is generic over it, so the same code routes
//! against the real pass graph, against a per-worker copy-on-write
//! overlay during speculative parallel routing, or against the
//! cache-packed CSR arena the kernel benches and the pathfinder's route
//! phase iterate.
//! [`GraphViewMut`] adds the mutations the router needs while building a
//! net (pin masking and congestion feedback).
//!
//! The traits use `impl Trait` in return position, so they are not object
//! safe; all users are monomorphized. [`Graph`] remains the default type
//! parameter everywhere (`SteinerHeuristic<G = Graph>`), which keeps
//! existing non-generic call sites compiling unchanged.

use crate::{EdgeId, Graph, GraphError, NodeId, Weight};

/// Read access to a (possibly overlaid) routing graph.
///
/// Semantics mirror [`Graph`]'s inherent methods exactly; see those for
/// detailed contracts. Implementations must agree with `Graph` on
/// iteration order: [`neighbors`](GraphView::neighbors) yields incident
/// edges in insertion order and [`node_ids`](GraphView::node_ids) /
/// [`edge_ids`](GraphView::edge_ids) ascend by index, so routing against
/// a view is bit-identical to routing against an equivalent `Graph`.
///
/// `Sync` is a supertrait so a view can be shared by reference across
/// scoped worker threads — the per-terminal Dijkstra fan-out in
/// [`TerminalDistances`](crate::TerminalDistances) runs several sources
/// of one net concurrently against the same `&G`. Every existing
/// implementation is plain data (or atomics) and satisfies it for free.
pub trait GraphView: Sync {
    /// Total number of nodes ever added (live or removed).
    fn node_count(&self) -> usize;

    /// Total number of edges ever added (live or removed).
    fn edge_count(&self) -> usize;

    /// Number of live (not removed) nodes.
    fn live_node_count(&self) -> usize;

    /// Number of edges whose own removal flag is live.
    fn live_edge_count(&self) -> usize;

    /// Returns `true` if `v` exists and has not been removed.
    fn is_node_live(&self, v: NodeId) -> bool;

    /// Returns `true` if `e` exists, is not removed, and both endpoints
    /// are live.
    fn is_edge_usable(&self, e: EdgeId) -> bool;

    /// Returns the endpoints `(a, b)` of edge `e` in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError>;

    /// Returns the weight of edge `e` (including removed edges).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    fn weight(&self, e: EdgeId) -> Result<Weight, GraphError>;

    /// Iterates over the usable incident edges of a live node `v`,
    /// yielding `(neighbor, edge, weight)` in edge-insertion order.
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_;

    /// Iterates over the ids of all live nodes in ascending index order.
    fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_;

    /// Iterates over the ids of all usable edges in ascending index order.
    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_;

    /// A monotone stamp that advances whenever the viewed graph state may
    /// have changed. Caches keyed on a view ([`DistanceOracle`]) compare
    /// epochs to detect staleness.
    ///
    /// [`DistanceOracle`]: crate::DistanceOracle
    fn epoch(&self) -> u64;

    /// Returns the endpoint of `e` that is not `v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown edge, and
    /// [`GraphError::NodeOutOfBounds`] if `v` is not an endpoint of `e`.
    fn other_endpoint(&self, e: EdgeId, v: NodeId) -> Result<NodeId, GraphError> {
        let (a, b) = self.endpoints(e)?;
        if v == a {
            Ok(b)
        } else if v == b {
            Ok(a)
        } else {
            Err(GraphError::NodeOutOfBounds(v))
        }
    }

    /// Degree of `v` counting only usable edges.
    fn live_degree(&self, v: NodeId) -> usize {
        self.neighbors(v).count()
    }

    /// Sum of the weights of all usable edges.
    fn total_weight(&self) -> Weight {
        self.edge_ids()
            .map(|e| self.weight(e).expect("usable edge has a weight"))
            .sum()
    }

    /// Mean weight over usable edges, or `None` if no edge is usable.
    fn mean_edge_weight(&self) -> Option<f64> {
        let mut count = 0u64;
        let mut total = 0f64;
        for e in self.edge_ids() {
            total += self.weight(e).expect("usable edge has a weight").as_f64();
            count += 1;
        }
        (count > 0).then(|| total / count as f64)
    }

    /// Validates that `v` exists and is live.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::NodeRemoved`].
    fn require_live_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() >= self.node_count() {
            Err(GraphError::NodeOutOfBounds(v))
        } else if self.is_node_live(v) {
            Ok(())
        } else {
            Err(GraphError::NodeRemoved(v))
        }
    }
}

/// Mutation access layered on top of [`GraphView`]: the operations the
/// router performs while building one net (pin masking, congestion
/// feedback). Semantics mirror the [`Graph`] methods of the same names.
pub trait GraphViewMut: GraphView {
    /// Sets the weight of edge `e`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<(), GraphError>;

    /// Adds `delta` to the weight of edge `e`, saturating at [`Weight::MAX`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    fn add_weight(&mut self, e: EdgeId, delta: Weight) -> Result<(), GraphError> {
        let w = self.weight(e)?;
        self.set_weight(e, w.saturating_add(delta))
    }

    /// Removes edge `e` (reversible; no-op when already removed).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError>;

    /// Restores a previously removed edge (no-op when live).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for an unknown id.
    fn restore_edge(&mut self, e: EdgeId) -> Result<(), GraphError>;

    /// Removes node `v` (reversible; no-op when already removed).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for an unknown id.
    fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError>;

    /// Restores a previously removed node (no-op when live).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for an unknown id.
    fn restore_node(&mut self, v: NodeId) -> Result<(), GraphError>;
}

impl GraphView for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn live_node_count(&self) -> usize {
        Graph::live_node_count(self)
    }

    fn live_edge_count(&self) -> usize {
        Graph::live_edge_count(self)
    }

    fn is_node_live(&self, v: NodeId) -> bool {
        Graph::is_node_live(self, v)
    }

    fn is_edge_usable(&self, e: EdgeId) -> bool {
        Graph::is_edge_usable(self, e)
    }

    fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        Graph::endpoints(self, e)
    }

    fn weight(&self, e: EdgeId) -> Result<Weight, GraphError> {
        Graph::weight(self, e)
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        Graph::neighbors(self, v)
    }

    fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        Graph::node_ids(self)
    }

    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        Graph::edge_ids(self)
    }

    fn epoch(&self) -> u64 {
        Graph::epoch(self)
    }

    fn other_endpoint(&self, e: EdgeId, v: NodeId) -> Result<NodeId, GraphError> {
        Graph::other_endpoint(self, e, v)
    }

    fn live_degree(&self, v: NodeId) -> usize {
        Graph::live_degree(self, v)
    }

    fn total_weight(&self) -> Weight {
        Graph::total_weight(self)
    }

    fn mean_edge_weight(&self) -> Option<f64> {
        Graph::mean_edge_weight(self)
    }

    fn require_live_node(&self, v: NodeId) -> Result<(), GraphError> {
        Graph::require_live_node(self, v)
    }
}

impl GraphViewMut for Graph {
    fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<(), GraphError> {
        Graph::set_weight(self, e, weight)
    }

    fn add_weight(&mut self, e: EdgeId, delta: Weight) -> Result<(), GraphError> {
        Graph::add_weight(self, e, delta)
    }

    fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        Graph::remove_edge(self, e)
    }

    fn restore_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        Graph::restore_edge(self, e)
    }

    fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        Graph::remove_node(self, v)
    }

    fn restore_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        Graph::restore_node(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        let ids: Vec<NodeId> = g.node_ids().collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], Weight::UNIT).unwrap();
        }
        g
    }

    /// Exercise a `Graph` purely through the trait surface.
    fn describe<G: GraphView>(g: &G) -> (usize, usize, Weight) {
        (
            g.live_node_count(),
            g.live_edge_count(),
            g.total_weight(),
        )
    }

    #[test]
    fn graph_serves_the_view_trait() {
        let g = line(4);
        let (nodes, edges, total) = describe(&g);
        assert_eq!(nodes, 4);
        assert_eq!(edges, 3);
        assert_eq!(total, Weight::from_units(3));
        let v = GraphView::node_ids(&g).next().unwrap();
        assert_eq!(GraphView::live_degree(&g, v), 1);
        assert!(GraphView::require_live_node(&g, v).is_ok());
    }

    #[test]
    fn mutations_through_the_trait_match_inherent_behaviour() {
        let mut g = line(3);
        let e = GraphView::edge_ids(&g).next().unwrap();
        let before = GraphView::epoch(&g);
        GraphViewMut::add_weight(&mut g, e, Weight::UNIT).unwrap();
        assert_eq!(GraphView::weight(&g, e).unwrap(), Weight::from_units(2));
        GraphViewMut::remove_edge(&mut g, e).unwrap();
        assert!(!GraphView::is_edge_usable(&g, e));
        GraphViewMut::restore_edge(&mut g, e).unwrap();
        assert!(GraphView::is_edge_usable(&g, e));
        assert!(GraphView::epoch(&g) > before, "mutations advance the epoch");
    }
}
