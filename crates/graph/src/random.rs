//! Seeded random workload generators.
//!
//! The paper evaluates on "random nets, uniformly distributed in 20×20
//! weighted grid graphs" (Table 1) and reports CPU times on "random graphs
//! with |V| = 50, |E| = 1000" (§5). These generators reproduce those
//! workloads deterministically from a seed.

use crate::rng::SliceRandom;
use crate::rng::Rng;

use crate::{Graph, GraphError, NodeId, Weight};

/// Samples `k` distinct live nodes of `g` uniformly at random.
///
/// The first sampled node is conventionally treated as the net's source.
///
/// # Errors
///
/// Returns [`GraphError::EmptyTerminalSet`] if `k == 0` or if the graph has
/// fewer than `k` live nodes.
pub fn random_net<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Result<Vec<NodeId>, GraphError> {
    let live: Vec<NodeId> = g.node_ids().collect();
    if k == 0 || live.len() < k {
        return Err(GraphError::EmptyTerminalSet);
    }
    Ok(live.choose_multiple(rng, k).copied().collect())
}

/// Generates a random connected multigraph with `n` nodes and exactly `m`
/// edges (`m >= n - 1`), with integer-unit edge weights drawn uniformly from
/// `weight_range`.
///
/// A random spanning tree guarantees connectivity; the remaining edges are
/// sampled uniformly from all node pairs (parallel edges permitted, matching
/// the paper's dense `|V| = 50, |E| = 1000` timing graphs).
///
/// # Errors
///
/// Returns [`GraphError::EmptyTerminalSet`] if `n == 0`, if `m < n - 1`, or
/// if `n == 1 && m > 0` (no self-loops exist to absorb extra edges).
pub fn random_connected_graph<R: Rng>(
    n: usize,
    m: usize,
    weight_range: std::ops::Range<u64>,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 || m + 1 < n || (n == 1 && m > 0) {
        return Err(GraphError::EmptyTerminalSet);
    }
    let mut g = Graph::with_nodes(n);
    let ids: Vec<NodeId> = g.node_ids().collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let weight = |rng: &mut R| Weight::from_units(rng.gen_range(weight_range.clone()).max(1));
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let w = weight(rng);
        g.add_edge(ids[order[i]], ids[parent], w)?;
    }
    let mut extra = m + 1 - n;
    while extra > 0 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let w = weight(rng);
        g.add_edge(ids[a], ids[b], w)?;
        extra -= 1;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShortestPaths;

    #[test]
    fn random_net_is_distinct_and_sized() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(1);
        let g = Graph::with_nodes(30);
        for _ in 0..20 {
            let net = random_net(&g, 5, &mut rng).unwrap();
            assert_eq!(net.len(), 5);
            let mut sorted = net.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
        }
    }

    #[test]
    fn random_net_rejects_oversized_requests() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(1);
        let g = Graph::with_nodes(3);
        assert!(random_net(&g, 4, &mut rng).is_err());
        assert!(random_net(&g, 0, &mut rng).is_err());
    }

    #[test]
    fn random_net_skips_removed_nodes() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(2);
        let mut g = Graph::with_nodes(10);
        let dead: Vec<NodeId> = g.node_ids().take(5).collect();
        for v in &dead {
            g.remove_node(*v).unwrap();
        }
        for _ in 0..10 {
            let net = random_net(&g, 3, &mut rng).unwrap();
            assert!(net.iter().all(|v| !dead.contains(v)));
        }
    }

    #[test]
    fn random_graph_is_connected_with_exact_counts() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(5);
        let g = random_connected_graph(50, 1000, 1..20, &mut rng).unwrap();
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 1000);
        let src = g.node_ids().next().unwrap();
        let sp = ShortestPaths::run(&g, src).unwrap();
        for v in g.node_ids() {
            assert!(sp.dist(v).is_some(), "{v} unreachable");
        }
    }

    #[test]
    fn random_graph_rejects_impossible_shapes() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(5);
        assert!(random_connected_graph(0, 0, 1..2, &mut rng).is_err());
        assert!(random_connected_graph(5, 3, 1..2, &mut rng).is_err());
        assert!(random_connected_graph(1, 1, 1..2, &mut rng).is_err());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g1 = random_connected_graph(
            20,
            40,
            1..9,
            &mut crate::rng::SplitMix64::seed_from_u64(42),
        )
        .unwrap();
        let g2 = random_connected_graph(
            20,
            40,
            1..9,
            &mut crate::rng::SplitMix64::seed_from_u64(42),
        )
        .unwrap();
        let weights1: Vec<_> = g1.edge_ids().map(|e| g1.weight(e).unwrap()).collect();
        let weights2: Vec<_> = g2.edge_ids().map(|e| g2.weight(e).unwrap()).collect();
        assert_eq!(weights1, weights2);
    }
}
