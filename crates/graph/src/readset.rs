//! Thread-local *read-set* recording for speculative routing.
//!
//! The parallel batched router speculatively routes nets against a
//! snapshot of the pass graph and must decide at commit time whether a
//! speculative result is still what a sequential router would produce on
//! the live graph. Checking the result's own nodes is not enough: a
//! shortest-path-based construction's choices depend on every node and
//! edge its Dijkstra runs *examined*, and a batch-mate's commit can
//! perturb those (removing nodes, inflating congestion weights) without
//! ever touching the final tree. The sound test is therefore over the
//! construction's **read set** — every node whose liveness or incident
//! edge weights the algorithm observed. If no read node changed, the
//! examined subgraph is bit-identical on the live graph, the
//! deterministic algorithms replay identically, and the speculation can
//! be accepted; otherwise it must be re-routed.
//!
//! Recording mirrors the telemetry counters' design: the hot Dijkstra
//! loop samples the active flag once per run, accumulates into a plain
//! local buffer, and flushes once at the end, so a disabled recorder
//! costs one thread-local read per run and an enabled one costs a `Vec`
//! push per examined node — no per-event synchronization anywhere.
//!
//! The recorder is scoped to the current thread: the speculative engine
//! calls [`begin`] before routing a net on a worker and [`take`] after,
//! and anything the net's constructions read through
//! [`ShortestPaths`](crate::ShortestPaths) in between is captured.
//! Sequential routing never activates it and pays nothing.

use std::cell::{Cell, RefCell};

use crate::NodeId;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static READS: RefCell<Vec<NodeId>> = const { RefCell::new(Vec::new()) };
}

/// Starts recording graph reads on the current thread, clearing any
/// previously accumulated nodes.
pub fn begin() {
    ACTIVE.with(|a| a.set(true));
    READS.with(|r| r.borrow_mut().clear());
}

/// Stops recording and returns the accumulated read set, sorted and
/// deduplicated. Returns an empty vector if [`begin`] was never called.
pub fn take() -> Vec<NodeId> {
    ACTIVE.with(|a| a.set(false));
    let mut reads = READS.with(|r| std::mem::take(&mut *r.borrow_mut()));
    reads.sort_unstable();
    reads.dedup();
    reads
}

/// Whether the current thread is recording. Instrumented algorithms
/// sample this once per run, not once per read.
#[inline]
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Appends a batch of observed nodes to the current thread's read set.
/// A no-op unless recording is active — callers that tallied into a
/// local buffer may flush unconditionally.
pub fn extend(nodes: &[NodeId]) {
    if is_active() {
        READS.with(|r| r.borrow_mut().extend_from_slice(nodes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_recorder_collects_nothing() {
        assert!(!is_active());
        extend(&[NodeId::from_index(1)]);
        assert!(take().is_empty());
    }

    #[test]
    fn begin_take_roundtrip_sorts_and_dedups() {
        begin();
        assert!(is_active());
        extend(&[NodeId::from_index(3), NodeId::from_index(1)]);
        extend(&[NodeId::from_index(3), NodeId::from_index(2)]);
        let reads = take();
        assert!(!is_active());
        assert_eq!(
            reads,
            vec![
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(3)
            ]
        );
        // The recorder is cleared after take().
        assert!(take().is_empty());
    }

    #[test]
    fn begin_clears_previous_recording() {
        begin();
        extend(&[NodeId::from_index(9)]);
        begin();
        extend(&[NodeId::from_index(4)]);
        assert_eq!(take(), vec![NodeId::from_index(4)]);
    }

    #[test]
    fn dijkstra_runs_are_recorded_only_while_active() {
        use crate::{Graph, ShortestPaths, Weight};
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        g.add_edge(n[1], n[2], Weight::UNIT).unwrap();
        g.add_edge(n[2], n[3], Weight::UNIT).unwrap();

        ShortestPaths::run(&g, n[0]).unwrap();
        assert!(take().is_empty(), "no recording without begin()");

        begin();
        ShortestPaths::run(&g, n[0]).unwrap();
        let reads = take();
        // A full run from n0 settles (and therefore reads) every node.
        assert_eq!(reads, n);

        // An early-terminating run stops the moment its last target
        // settles, before examining that target's own neighborhood —
        // nothing past the frontier is read.
        begin();
        ShortestPaths::run_to_targets(&g, n[0], &[n[1]]).unwrap();
        assert_eq!(take(), vec![n[0], n[1]]);

        // Relaxed-but-unsettled frontier nodes are reads: with a direct
        // but expensive n0–n3 edge, settling n1 has already examined n3.
        g.add_edge(n[0], n[3], Weight::from_units(9)).unwrap();
        begin();
        ShortestPaths::run_to_targets(&g, n[0], &[n[1]]).unwrap();
        let reads = take();
        assert_eq!(reads, vec![n[0], n[1], n[3]]);
        assert!(
            !reads.contains(&n[2]),
            "n2 is past the frontier and was never examined"
        );
    }
}
