//! Thread-local intra-net parallelism gate.
//!
//! The wavefront scheduler usually keeps all its workers busy with
//! *different* nets. When the conflict DAG exposes fewer ready nets than
//! there are workers (a serial chain of overlapping nets, or the tail of
//! a pass), a worker can instead spend the idle cores *inside* one net:
//! [`TerminalDistances`](crate::TerminalDistances) fans its per-terminal
//! Dijkstra runs out across scoped threads.
//!
//! The gate is a thread-local so it needs no plumbing through the many
//! generic layers between the scheduler and the distance computation:
//! the scheduler sets the budget on the worker thread just before
//! routing a net (via the RAII [`FanoutGuard`]) and the distance code
//! reads it at its fan-out point. Sequential routing never sets it and
//! pays one thread-local read per distance computation.

use std::cell::Cell;

thread_local! {
    static FANOUT: Cell<usize> = const { Cell::new(1) };
}

/// The current thread's per-terminal Dijkstra thread budget. `1` (the
/// default) means sequential fan-out.
#[inline]
#[must_use]
pub fn dijkstra_fanout() -> usize {
    FANOUT.with(Cell::get)
}

/// Sets the current thread's fan-out budget; prefer [`FanoutGuard`] so
/// the budget cannot leak past the net it was granted for.
pub fn set_dijkstra_fanout(threads: usize) {
    FANOUT.with(|f| f.set(threads.max(1)));
}

/// RAII scope for a fan-out budget: restores the previous budget on drop.
#[derive(Debug)]
pub struct FanoutGuard {
    previous: usize,
}

impl FanoutGuard {
    /// Grants `threads` of intra-net fan-out to the current thread until
    /// the guard drops.
    #[must_use]
    pub fn new(threads: usize) -> FanoutGuard {
        let previous = dijkstra_fanout();
        set_dijkstra_fanout(threads);
        FanoutGuard { previous }
    }
}

impl Drop for FanoutGuard {
    fn drop(&mut self) {
        set_dijkstra_fanout(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_sequential_and_scopes_with_the_guard() {
        assert_eq!(dijkstra_fanout(), 1);
        {
            let _outer = FanoutGuard::new(4);
            assert_eq!(dijkstra_fanout(), 4);
            {
                let _inner = FanoutGuard::new(2);
                assert_eq!(dijkstra_fanout(), 2);
            }
            assert_eq!(dijkstra_fanout(), 4);
        }
        assert_eq!(dijkstra_fanout(), 1);
    }

    #[test]
    fn zero_clamps_to_one() {
        set_dijkstra_fanout(0);
        assert_eq!(dijkstra_fanout(), 1);
    }
}
