//! Error type for device modelling and routing.

use std::error::Error;
use std::fmt;

use steiner_route::SteinerError;

/// Errors produced by FPGA device construction and circuit routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// An underlying tree-construction error.
    Steiner(SteinerError),
    /// Architecture parameters were inconsistent (zero dimensions, zero
    /// channel width, flexibility out of range…).
    InvalidArchitecture(String),
    /// A block coordinate lies outside the array.
    BlockOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
    },
    /// A pin reference named a side/slot the architecture does not provide.
    InvalidPin(String),
    /// A circuit does not fit the device (wrong array size, or a pin is
    /// claimed twice).
    CircuitMismatch(String),
    /// The router exhausted its pass budget without completing the circuit
    /// at the given channel width.
    Unroutable {
        /// Channel width that failed.
        channel_width: usize,
        /// Passes attempted.
        passes: usize,
        /// Index of the net that could not be routed in the final pass.
        failed_net: usize,
        /// Routing-resource nodes still over capacity when the budget ran
        /// out, in ascending id order. Filled by the negotiated-congestion
        /// router (whose failures are contention, not disconnection); the
        /// rip-up router reports an empty set.
        overcapacity: Vec<route_graph::NodeId>,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::Steiner(e) => write!(f, "routing construction failed: {e}"),
            FpgaError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
            FpgaError::BlockOutOfBounds { row, col } => {
                write!(f, "block ({row}, {col}) is outside the array")
            }
            FpgaError::InvalidPin(msg) => write!(f, "invalid pin: {msg}"),
            FpgaError::CircuitMismatch(msg) => write!(f, "circuit does not fit device: {msg}"),
            FpgaError::Unroutable {
                channel_width,
                passes,
                failed_net,
                overcapacity,
            } => {
                write!(
                    f,
                    "unroutable at channel width {channel_width} after {passes} passes (net {failed_net} failed)"
                )?;
                if !overcapacity.is_empty() {
                    write!(f, "; {} nodes over capacity", overcapacity.len())?;
                }
                Ok(())
            }
        }
    }
}

impl Error for FpgaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FpgaError::Steiner(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SteinerError> for FpgaError {
    fn from(e: SteinerError) -> FpgaError {
        FpgaError::Steiner(e)
    }
}

impl From<route_graph::GraphError> for FpgaError {
    fn from(e: route_graph::GraphError) -> FpgaError {
        FpgaError::Steiner(SteinerError::Graph(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty_and_chain() {
        let e = FpgaError::from(SteinerError::EmptyNet);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        let u = FpgaError::Unroutable {
            channel_width: 7,
            passes: 20,
            failed_net: 3,
            overcapacity: Vec::new(),
        };
        assert!(u.to_string().contains("width 7"));
        assert!(!u.to_string().contains("over capacity"));
        let contested = FpgaError::Unroutable {
            channel_width: 7,
            passes: 20,
            failed_net: 3,
            overcapacity: vec![route_graph::NodeId::from_index(4)],
        };
        assert!(contested.to_string().contains("1 nodes over capacity"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<FpgaError>();
    }
}
