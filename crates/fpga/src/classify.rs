//! Net criticality classification.
//!
//! Paper §2: "Prior to routing, nets may be classified as either critical
//! or non-critical based on timing information from the higher-level
//! design stages… To a first approximation, nets through which long
//! input-to-output paths pass may be designated as critical nets."
//! Without the upstream timing data, the standard first approximation is
//! geometric: the nets with the largest placed extent carry the longest
//! paths. [`by_span`] flags the top fraction of nets by half-perimeter of
//! their pin bounding box.

use crate::netlist::Circuit;

/// Flags the `fraction` of nets (rounded up, at least one when
/// `fraction > 0`) with the largest half-perimeter bounding boxes as
/// critical. Ties break toward higher pin count, then lower index.
///
/// Returns one flag per net in circuit order.
#[must_use]
pub fn by_span(circuit: &Circuit, fraction: f64) -> Vec<bool> {
    let n = circuit.net_count();
    let mut flags = vec![false; n];
    if n == 0 || fraction <= 0.0 {
        return flags;
    }
    let count = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
    let mut scored: Vec<(usize, usize, usize)> = (0..n)
        .map(|ni| {
            let pins = &circuit.nets()[ni].pins;
            let (mut r0, mut r1, mut c0, mut c1) = (usize::MAX, 0, usize::MAX, 0);
            for p in pins {
                r0 = r0.min(p.row);
                r1 = r1.max(p.row);
                c0 = c0.min(p.col);
                c1 = c1.max(p.col);
            }
            ((r1 - r0) + (c1 - c0), pins.len(), ni)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    for &(_, _, ni) in scored.iter().take(count) {
        flags[ni] = true;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Side;
    use crate::netlist::{BlockPin, CircuitNet};

    fn pin(row: usize, col: usize, slot: usize) -> BlockPin {
        BlockPin {
            row,
            col,
            side: Side::North,
            slot,
        }
    }

    fn circuit() -> Circuit {
        Circuit::new(
            "c",
            6,
            6,
            vec![
                // Span 2
                CircuitNet {
                    pins: vec![pin(0, 0, 0), pin(1, 1, 0)],
                },
                // Span 10 (the critical one)
                CircuitNet {
                    pins: vec![pin(0, 0, 1), pin(5, 5, 0)],
                },
                // Span 5
                CircuitNet {
                    pins: vec![pin(2, 0, 0), pin(2, 5, 0)],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn flags_the_longest_net() {
        let flags = by_span(&circuit(), 0.3);
        assert_eq!(flags, vec![false, true, false]);
    }

    #[test]
    fn fraction_scales_the_count() {
        let flags = by_span(&circuit(), 0.7);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 3); // ceil(2.1)
        let all = by_span(&circuit(), 1.0);
        assert!(all.iter().all(|&f| f));
    }

    #[test]
    fn zero_fraction_flags_nothing() {
        assert!(by_span(&circuit(), 0.0).iter().all(|&f| !f));
        assert!(by_span(&circuit(), -1.0).iter().all(|&f| !f));
    }

    #[test]
    fn small_positive_fraction_flags_at_least_one() {
        let flags = by_span(&circuit(), 0.01);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
    }
}
