//! Circuit netlists: nets over placed logic-block pins.

use crate::arch::{ArchSpec, Side};
use crate::device::Device;
use crate::FpgaError;

/// A reference to one placed logic-block pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockPin {
    /// Block row.
    pub row: usize,
    /// Block column.
    pub col: usize,
    /// Block side.
    pub side: Side,
    /// Pin slot on that side.
    pub slot: usize,
}

/// One net of a circuit: the driving pin plus its fanout pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitNet {
    /// Pins; `pins[0]` drives the net.
    pub pins: Vec<BlockPin>,
}

impl CircuitNet {
    /// Number of pins in the net.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }
}

/// A placed circuit: a name, the array it targets, and its nets.
///
/// # Example
///
/// ```
/// use fpga_device::{ArchSpec, BlockPin, Circuit, CircuitNet, Side};
///
/// # fn main() -> Result<(), fpga_device::FpgaError> {
/// let net = CircuitNet {
///     pins: vec![
///         BlockPin { row: 0, col: 0, side: Side::East, slot: 0 },
///         BlockPin { row: 1, col: 1, side: Side::West, slot: 0 },
///     ],
/// };
/// let circuit = Circuit::new("tiny", 2, 2, vec![net])?;
/// circuit.validate_against(&ArchSpec::xilinx4000(2, 2, 4))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    rows: usize,
    cols: usize,
    nets: Vec<CircuitNet>,
}

impl Circuit {
    /// Creates a circuit, checking basic sanity: every net has at least two
    /// pins and no physical pin drives or receives two different nets (or
    /// appears twice in one).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CircuitMismatch`] on violations.
    pub fn new(
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        nets: Vec<CircuitNet>,
    ) -> Result<Circuit, FpgaError> {
        let name = name.into();
        let mut used = std::collections::HashSet::new();
        for (i, net) in nets.iter().enumerate() {
            if net.pins.len() < 2 {
                return Err(FpgaError::CircuitMismatch(format!(
                    "net {i} of {name} has fewer than two pins"
                )));
            }
            for pin in &net.pins {
                if pin.row >= rows || pin.col >= cols {
                    return Err(FpgaError::CircuitMismatch(format!(
                        "net {i} of {name} references block ({}, {}) outside {rows}x{cols}",
                        pin.row, pin.col
                    )));
                }
                if !used.insert(*pin) {
                    return Err(FpgaError::CircuitMismatch(format!(
                        "pin {pin:?} used by more than one connection in {name}"
                    )));
                }
            }
        }
        Ok(Circuit {
            name,
            rows,
            cols,
            nets,
        })
    }

    /// Circuit name (e.g. `"busc"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Target array rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Target array columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The circuit's nets.
    #[must_use]
    pub fn nets(&self) -> &[CircuitNet] {
        &self.nets
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Histogram of the paper's pin-count buckets:
    /// `(2–3 pins, 4–10 pins, >10 pins)`.
    #[must_use]
    pub fn pin_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for net in &self.nets {
            match net.pin_count() {
                0..=3 => h.0 += 1,
                4..=10 => h.1 += 1,
                _ => h.2 += 1,
            }
        }
        h
    }

    /// Checks that this circuit fits an architecture: array size, sides and
    /// slots all in range.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CircuitMismatch`].
    pub fn validate_against(&self, arch: &ArchSpec) -> Result<(), FpgaError> {
        if self.rows != arch.rows || self.cols != arch.cols {
            return Err(FpgaError::CircuitMismatch(format!(
                "{} targets a {}x{} array; architecture is {}x{}",
                self.name, self.rows, self.cols, arch.rows, arch.cols
            )));
        }
        for net in &self.nets {
            for pin in &net.pins {
                if pin.slot >= arch.pins_per_side {
                    return Err(FpgaError::CircuitMismatch(format!(
                        "pin {pin:?} exceeds {} slots per side",
                        arch.pins_per_side
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolves one net's pins to routing-graph node ids on a device.
    ///
    /// # Errors
    ///
    /// Returns pin-resolution errors if the circuit does not fit.
    pub fn net_terminals(
        &self,
        device: &Device,
        net_index: usize,
    ) -> Result<Vec<route_graph::NodeId>, FpgaError> {
        self.nets[net_index]
            .pins
            .iter()
            .map(|p| device.pin_node(p.row, p.col, p.side, p.slot))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pin(row: usize, col: usize, side: Side, slot: usize) -> BlockPin {
        BlockPin {
            row,
            col,
            side,
            slot,
        }
    }

    #[test]
    fn builds_and_reports() {
        let c = Circuit::new(
            "t",
            2,
            2,
            vec![
                CircuitNet {
                    pins: vec![pin(0, 0, Side::East, 0), pin(1, 1, Side::West, 0)],
                },
                CircuitNet {
                    pins: vec![
                        pin(0, 1, Side::South, 0),
                        pin(1, 0, Side::North, 0),
                        pin(1, 1, Side::North, 0),
                        pin(0, 0, Side::South, 0),
                    ],
                },
            ],
        )
        .unwrap();
        assert_eq!(c.net_count(), 2);
        assert_eq!(c.pin_histogram(), (1, 1, 0));
        assert_eq!(c.name(), "t");
    }

    #[test]
    fn rejects_single_pin_nets() {
        let err = Circuit::new(
            "t",
            2,
            2,
            vec![CircuitNet {
                pins: vec![pin(0, 0, Side::East, 0)],
            }],
        )
        .unwrap_err();
        assert!(matches!(err, FpgaError::CircuitMismatch(_)));
    }

    #[test]
    fn rejects_pin_reuse_across_nets() {
        let shared = pin(0, 0, Side::East, 0);
        let err = Circuit::new(
            "t",
            2,
            2,
            vec![
                CircuitNet {
                    pins: vec![shared, pin(1, 1, Side::West, 0)],
                },
                CircuitNet {
                    pins: vec![shared, pin(1, 0, Side::North, 0)],
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, FpgaError::CircuitMismatch(_)));
    }

    #[test]
    fn rejects_out_of_array_pins() {
        let err = Circuit::new(
            "t",
            2,
            2,
            vec![CircuitNet {
                pins: vec![pin(2, 0, Side::East, 0), pin(0, 0, Side::West, 0)],
            }],
        )
        .unwrap_err();
        assert!(matches!(err, FpgaError::CircuitMismatch(_)));
    }

    #[test]
    fn validates_against_architecture() {
        let c = Circuit::new(
            "t",
            2,
            2,
            vec![CircuitNet {
                pins: vec![pin(0, 0, Side::East, 1), pin(1, 1, Side::West, 0)],
            }],
        )
        .unwrap();
        assert!(c.validate_against(&ArchSpec::xilinx4000(2, 2, 4)).is_ok());
        assert!(c.validate_against(&ArchSpec::xilinx4000(3, 2, 4)).is_err());
        let mut narrow = ArchSpec::xilinx4000(2, 2, 4);
        narrow.pins_per_side = 1;
        assert!(c.validate_against(&narrow).is_err());
    }

    #[test]
    fn resolves_terminals_on_a_device() {
        let c = Circuit::new(
            "t",
            2,
            2,
            vec![CircuitNet {
                pins: vec![pin(0, 0, Side::East, 0), pin(1, 1, Side::West, 0)],
            }],
        )
        .unwrap();
        let d = Device::new(ArchSpec::xilinx4000(2, 2, 3)).unwrap();
        let terminals = c.net_terminals(&d, 0).unwrap();
        assert_eq!(terminals.len(), 2);
        assert_ne!(terminals[0], terminals[1]);
    }
}
