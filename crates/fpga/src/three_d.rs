//! Three-dimensional FPGAs — the paper's §6 extension.
//!
//! "Moreover, all of our methods generalize to three-dimensional FPGAs
//! \[1, 2\]." Because every construction in this reproduction operates on
//! arbitrary weighted graphs, supporting 3D parts is purely a device-model
//! question: stack identical symmetrical-array layers and join them with
//! *via* switches at the switch-block junctions, exactly as in Alexander
//! et al.'s 3D-FPGA architecture studies. The routing algorithms run
//! unchanged.

use route_graph::{Graph, NodeId, Weight};

use crate::arch::{ArchSpec, Side};
use crate::device::{Device, NodeKind};
use crate::FpgaError;

/// Architecture of a 3D FPGA: `layers` copies of a base 2D array joined
/// by vias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arch3d {
    /// The per-layer 2D architecture.
    pub base: ArchSpec,
    /// Number of stacked layers (≥ 1).
    pub layers: usize,
    /// Vias join same-position same-track segments of adjacent layers for
    /// every track `t` with `t % via_every == 0`; `1` means every track
    /// has a via (full vertical flexibility), larger values model scarcer
    /// vertical resources.
    pub via_every: usize,
}

impl Arch3d {
    /// Creates a 3D architecture over a base layer.
    #[must_use]
    pub fn new(base: ArchSpec, layers: usize, via_every: usize) -> Arch3d {
        Arch3d {
            base,
            layers,
            via_every,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidArchitecture`] for a zero layer count or
    /// via stride, or an invalid base.
    pub fn validate(&self) -> Result<(), FpgaError> {
        self.base.validate()?;
        if self.layers == 0 {
            return Err(FpgaError::InvalidArchitecture(
                "a 3D FPGA needs at least one layer".into(),
            ));
        }
        if self.via_every == 0 {
            return Err(FpgaError::InvalidArchitecture(
                "via stride must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A stacked 3D FPGA device: per-layer routing fabrics plus inter-layer
/// vias.
///
/// # Example
///
/// ```
/// use fpga_device::three_d::{Arch3d, Device3d};
/// use fpga_device::{ArchSpec, Side};
///
/// # fn main() -> Result<(), fpga_device::FpgaError> {
/// let arch = Arch3d::new(ArchSpec::xilinx4000(4, 4, 4), 2, 1);
/// let device = Device3d::new(arch)?;
/// let a = device.pin_node(0, 0, 0, Side::East, 0)?;
/// let b = device.pin_node(1, 3, 3, Side::West, 0)?;
/// assert!(route_graph::dijkstra::minpath(device.graph(), a, b)? > route_graph::Weight::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Device3d {
    arch: Arch3d,
    graph: Graph,
    /// Node count of one layer (nodes of layer `l` occupy
    /// `l·layer_size..(l+1)·layer_size`).
    layer_size: usize,
    /// A 2D template device used for per-layer classification.
    template: Device,
}

impl Device3d {
    /// Builds the stacked routing graph.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidArchitecture`] for invalid parameters.
    pub fn new(arch: Arch3d) -> Result<Device3d, FpgaError> {
        arch.validate()?;
        let template = Device::new(arch.base)?;
        let layer_size = template.graph().node_count();
        let mut graph = Graph::with_nodes(layer_size * arch.layers);
        // Replicate each layer's switches.
        for layer in 0..arch.layers {
            let offset = layer * layer_size;
            for e in template.graph().edge_ids() {
                let (a, b) = template.graph().endpoints(e)?;
                let w = template.graph().weight(e)?;
                graph.add_edge(
                    NodeId::from_index(a.index() + offset),
                    NodeId::from_index(b.index() + offset),
                    w,
                )?;
            }
        }
        // Vias: join same segment nodes of adjacent layers on the selected
        // tracks.
        for v in template.graph().node_ids() {
            let track = match template.node_kind(v)? {
                NodeKind::HorizontalSegment { track, .. }
                | NodeKind::VerticalSegment { track, .. } => track,
                NodeKind::Pin { .. } => continue,
            };
            if track % arch.via_every != 0 {
                continue;
            }
            for layer in 0..arch.layers.saturating_sub(1) {
                graph.add_edge(
                    NodeId::from_index(v.index() + layer * layer_size),
                    NodeId::from_index(v.index() + (layer + 1) * layer_size),
                    Weight::UNIT,
                )?;
            }
        }
        Ok(Device3d {
            arch,
            graph,
            layer_size,
            template,
        })
    }

    /// The 3D architecture.
    #[must_use]
    pub fn arch(&self) -> &Arch3d {
        &self.arch
    }

    /// The stacked routing-resource graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A logic-block pin on a specific layer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BlockOutOfBounds`] / [`FpgaError::InvalidPin`]
    /// for bad coordinates, with the layer treated as a row extension.
    pub fn pin_node(
        &self,
        layer: usize,
        row: usize,
        col: usize,
        side: Side,
        slot: usize,
    ) -> Result<NodeId, FpgaError> {
        if layer >= self.arch.layers {
            return Err(FpgaError::BlockOutOfBounds { row, col });
        }
        let base = self.template.pin_node(row, col, side, slot)?;
        Ok(NodeId::from_index(base.index() + layer * self.layer_size))
    }

    /// Decomposes a node into `(layer, within-layer kind)`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidPin`] for ids outside the device.
    pub fn node_kind(&self, v: NodeId) -> Result<(usize, NodeKind), FpgaError> {
        let layer = v.index() / self.layer_size;
        if layer >= self.arch.layers {
            return Err(FpgaError::InvalidPin(format!(
                "node {v} is not part of this 3D device"
            )));
        }
        let within = NodeId::from_index(v.index() % self.layer_size);
        Ok((layer, self.template.node_kind(within)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::dijkstra::minpath;
    use route_graph::ShortestPaths;

    fn two_layer() -> Device3d {
        Device3d::new(Arch3d::new(ArchSpec::xilinx4000(3, 3, 4), 2, 1)).unwrap()
    }

    #[test]
    fn node_counts_scale_with_layers() {
        let single = Device::new(ArchSpec::xilinx4000(3, 3, 4)).unwrap();
        let stacked = two_layer();
        assert_eq!(
            stacked.graph().node_count(),
            2 * single.graph().node_count()
        );
        // Per-layer edges replicate; vias add more.
        assert!(stacked.graph().edge_count() > 2 * single.graph().edge_count());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Device3d::new(Arch3d::new(ArchSpec::xilinx4000(3, 3, 4), 0, 1)).is_err());
        assert!(Device3d::new(Arch3d::new(ArchSpec::xilinx4000(3, 3, 4), 2, 0)).is_err());
        assert!(Device3d::new(Arch3d::new(ArchSpec::xilinx4000(0, 3, 4), 2, 1)).is_err());
    }

    #[test]
    fn layers_are_connected_through_vias() {
        let d = two_layer();
        let a = d.pin_node(0, 0, 0, Side::East, 0).unwrap();
        let b = d.pin_node(1, 2, 2, Side::West, 0).unwrap();
        assert!(minpath(d.graph(), a, b).is_ok());
        // Everything reachable from one pin.
        let sp = ShortestPaths::run(d.graph(), a).unwrap();
        for v in d.graph().node_ids() {
            assert!(sp.dist(v).is_some(), "{v} unreachable");
        }
    }

    #[test]
    fn scarce_vias_lengthen_interlayer_routes() {
        let dense = Device3d::new(Arch3d::new(ArchSpec::xilinx4000(3, 3, 4), 2, 1)).unwrap();
        let sparse = Device3d::new(Arch3d::new(ArchSpec::xilinx4000(3, 3, 4), 2, 4)).unwrap();
        let d_dense = minpath(
            dense.graph(),
            dense.pin_node(0, 1, 1, Side::North, 0).unwrap(),
            dense.pin_node(1, 1, 1, Side::North, 0).unwrap(),
        )
        .unwrap();
        let d_sparse = minpath(
            sparse.graph(),
            sparse.pin_node(0, 1, 1, Side::North, 0).unwrap(),
            sparse.pin_node(1, 1, 1, Side::North, 0).unwrap(),
        )
        .unwrap();
        assert!(d_sparse >= d_dense);
    }

    #[test]
    fn node_kind_reports_layers() {
        let d = two_layer();
        let pin = d.pin_node(1, 2, 0, Side::South, 1).unwrap();
        let (layer, kind) = d.node_kind(pin).unwrap();
        assert_eq!(layer, 1);
        assert!(matches!(
            kind,
            NodeKind::Pin {
                row: 2,
                col: 0,
                side: Side::South,
                slot: 1
            }
        ));
        let out = NodeId::from_index(d.graph().node_count());
        assert!(d.node_kind(out).is_err());
    }

    #[test]
    fn pin_lookup_validates_layer() {
        let d = two_layer();
        assert!(matches!(
            d.pin_node(2, 0, 0, Side::East, 0),
            Err(FpgaError::BlockOutOfBounds { .. })
        ));
    }

    #[test]
    fn routing_algorithms_run_unchanged_on_3d_graphs() {
        use steiner_route::{idom, ikmb, Net, Pfa, SteinerHeuristic};
        let d = two_layer();
        let net = Net::new(
            d.pin_node(0, 0, 0, Side::East, 0).unwrap(),
            vec![
                d.pin_node(1, 2, 2, Side::West, 0).unwrap(),
                d.pin_node(0, 2, 0, Side::North, 1).unwrap(),
                d.pin_node(1, 0, 2, Side::South, 1).unwrap(),
            ],
        )
        .unwrap();
        let steiner = ikmb().construct(d.graph(), &net).unwrap();
        assert!(steiner.spans(&net));
        for algo in [Box::new(Pfa::new()) as Box<dyn SteinerHeuristic>, Box::new(idom())] {
            let tree = algo.construct(d.graph(), &net).unwrap();
            assert!(tree.is_shortest_paths_tree(d.graph(), &net).unwrap());
        }
    }
}
