//! Per-pass routing telemetry surfaced on [`RouteOutcome`].
//!
//! Every routing attempt records one [`PassTelemetry`] per executed pass
//! — wall-clock, the parallel engine's batching/acceptance counters, and
//! a [`CongestionSnapshot`] of channel occupancy at the end of the pass.
//! The same snapshots are mirrored into the global `route_trace`
//! collector (when one is installed), so CLI traces and in-process
//! consumers see identical data.

use std::time::Duration;

pub use route_trace::CongestionSnapshot;

/// Instrumentation for one executed routing pass.
///
/// The sequential engine fills `pass`, `elapsed`, and `congestion`; the
/// batch engine additionally fills the batching counters, and the
/// wavefront scheduler the steal/stall/re-speculation counters. Every
/// speculation is resolved exactly once, so on a completed pass
/// `accepted + rerouted + respeculated == speculated` regardless of
/// engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassTelemetry {
    /// 1-based pass number within the routing attempt.
    pub pass: usize,
    /// Batches the pass order was split into (sequential engine: 0).
    pub batches: usize,
    /// Nets routed speculatively on worker threads.
    pub speculated: usize,
    /// Speculative results committed without re-routing.
    pub accepted: usize,
    /// Speculative results discarded and re-routed sequentially (batch
    /// engine only; the wavefront scheduler requeues instead).
    pub rerouted: usize,
    /// Speculative results rejected at commit and requeued against a
    /// fresh commit sequence (wavefront scheduler only).
    pub respeculated: usize,
    /// Ready nets an idle worker took from another worker's deque
    /// (wavefront scheduler only).
    pub steals: usize,
    /// Times a worker found no ready net and parked (wavefront scheduler
    /// only).
    pub stalls: usize,
    /// Routing-resource nodes over capacity at the end of the pass
    /// (negotiated-congestion mode only; the rip-up engines keep nets
    /// disjoint by construction, so they report 0).
    pub overcapacity: usize,
    /// History-cost accumulations applied after the pass (negotiated-
    /// congestion mode only; one per over-capacity node).
    pub history_updates: usize,
    /// Nets whose route changed relative to the previous iteration
    /// (negotiated-congestion mode only; iteration 1 counts every net).
    pub nets_rerouted: usize,
    /// Nets this iteration actually routed: the dirty set in selective
    /// negotiated-congestion mode, every net otherwise (negotiated-
    /// congestion mode only; rip-up engines report 0).
    pub dirty_nets: usize,
    /// Edges rewritten by this iteration's cost update — the full edge
    /// count under the full sweep, only the delta under selective mode's
    /// incremental sweep (negotiated-congestion mode only; 0 on the
    /// converged iteration, which skips the update).
    pub repriced_edges: usize,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
    /// Channel occupancy at the end of the pass (or at the failing net,
    /// for passes that end early).
    pub congestion: CongestionSnapshot,
}

impl PassTelemetry {
    /// Fraction of speculated nets whose results were committed as-is,
    /// or `None` if nothing was speculated.
    #[must_use]
    pub fn acceptance(&self) -> Option<f64> {
        if self.speculated == 0 {
            None
        } else {
            Some(self.accepted as f64 / self.speculated as f64)
        }
    }
}

/// Telemetry for a whole routing attempt: one entry per executed pass
/// (failed passes included), in pass order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTelemetry {
    /// Per-pass records, `passes[i].pass == i + 1`.
    pub passes: Vec<PassTelemetry>,
}

impl RouteTelemetry {
    /// Total wall-clock across all passes.
    #[must_use]
    pub fn total_elapsed(&self) -> Duration {
        self.passes.iter().map(|p| p.elapsed).sum()
    }

    /// Overall speculation acceptance across all passes, or `None` if
    /// nothing was ever speculated (sequential engine).
    #[must_use]
    pub fn acceptance(&self) -> Option<f64> {
        let speculated: usize = self.passes.iter().map(|p| p.speculated).sum();
        if speculated == 0 {
            None
        } else {
            let accepted: usize = self.passes.iter().map(|p| p.accepted).sum();
            Some(accepted as f64 / speculated as f64)
        }
    }

    /// The final pass's congestion snapshot, if any pass ran.
    #[must_use]
    pub fn final_congestion(&self) -> Option<&CongestionSnapshot> {
        self.passes.last().map(|p| &p.congestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_ratios() {
        let mut t = PassTelemetry::default();
        assert_eq!(t.acceptance(), None);
        t.speculated = 4;
        t.accepted = 3;
        assert_eq!(t.acceptance(), Some(0.75));

        let route = RouteTelemetry {
            passes: vec![
                t,
                PassTelemetry {
                    speculated: 4,
                    accepted: 1,
                    ..PassTelemetry::default()
                },
            ],
        };
        assert_eq!(route.acceptance(), Some(0.5));
    }

    #[test]
    fn totals_and_final_snapshot() {
        let mk = |pass: usize, ms: u64| PassTelemetry {
            pass,
            elapsed: Duration::from_millis(ms),
            congestion: CongestionSnapshot::from_usage(pass, 4, &[1, 2]),
            ..PassTelemetry::default()
        };
        let route = RouteTelemetry {
            passes: vec![mk(1, 5), mk(2, 7)],
        };
        assert_eq!(route.total_elapsed(), Duration::from_millis(12));
        assert_eq!(route.final_congestion().unwrap().pass, 2);
        assert_eq!(RouteTelemetry::default().final_congestion(), None);
        assert_eq!(RouteTelemetry::default().acceptance(), None);
    }
}
