//! The two-pin-decomposition baseline router (CGE/SEGA/GBP stand-in).
//!
//! The routers the paper compares against route multi-pin nets by
//! "breaking them into multiple two-pin nets" (paper §5), forfeiting the
//! wire sharing that Steiner constructions exploit. This baseline
//! reproduces that structural behaviour inside the same pass framework:
//! each net becomes an independent set of source→sink maze routes
//! (Dijkstra), subnets of a net may branch only at the source pin, and
//! resources are committed after each subnet. Expect it to demand wider
//! channels than the Steiner router — Table 2/3's CGE (+22%), SEGA (+26%)
//! and GBP (+17%) gaps are exactly this effect.

use route_graph::{EdgeId, Graph, GraphError, NodeId, ShortestPaths, Weight};
use steiner_route::RoutingTree;

use crate::device::Device;
use crate::netlist::Circuit;
use crate::router::RouteOutcome;
use crate::FpgaError;

/// Baseline router configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Passes before declaring the width unroutable.
    pub max_passes: usize,
    /// Congestion pressure, as in
    /// [`RouterConfig`](crate::router::RouterConfig).
    pub congestion_alpha_milli: u64,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            max_passes: 20,
            congestion_alpha_milli: 1500,
        }
    }
}

/// The two-pin-decomposition router.
///
/// # Example
///
/// ```no_run
/// use fpga_device::{ArchSpec, BaselineConfig, BaselineRouter, Device};
/// use fpga_device::synth::{synthesize, xc4000_profiles};
///
/// # fn main() -> Result<(), fpga_device::FpgaError> {
/// let profile = xc4000_profiles()[2];
/// let circuit = synthesize(&profile, 2, 42)?;
/// let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, 12))?;
/// let outcome = BaselineRouter::new(&device, BaselineConfig::default()).route(&circuit)?;
/// println!("baseline wirelength: {}", outcome.total_wirelength);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BaselineRouter<'d> {
    device: &'d Device,
    config: BaselineConfig,
}

impl<'d> BaselineRouter<'d> {
    /// Binds the baseline router to a device.
    #[must_use]
    pub fn new(device: &'d Device, config: BaselineConfig) -> BaselineRouter<'d> {
        BaselineRouter { device, config }
    }

    /// Routes the circuit with per-sink maze routing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Router::route`](crate::Router::route).
    pub fn route(&self, circuit: &Circuit) -> Result<RouteOutcome, FpgaError> {
        circuit.validate_against(self.device.arch())?;
        let mut order: Vec<usize> = (0..circuit.net_count()).collect();
        order.sort_by_key(|&ni| std::cmp::Reverse(circuit.nets()[ni].pin_count()));
        let mut last_failure = 0usize;
        for pass in 1..=self.config.max_passes.max(1) {
            match self.route_pass(circuit, &order)? {
                Ok(mut outcome) => {
                    outcome.passes = pass;
                    return Ok(outcome);
                }
                Err(ni) => {
                    last_failure = ni;
                    let pos = order
                        .iter()
                        .position(|&x| x == ni)
                        .expect("failed net is in the order");
                    order.remove(pos);
                    order.insert(0, ni);
                }
            }
        }
        Err(FpgaError::Unroutable {
            channel_width: self.device.arch().channel_width,
            passes: self.config.max_passes,
            failed_net: last_failure,
            overcapacity: Vec::new(),
        })
    }

    #[allow(clippy::type_complexity)]
    fn route_pass(
        &self,
        circuit: &Circuit,
        order: &[usize],
    ) -> Result<Result<RouteOutcome, usize>, FpgaError> {
        let mut g = self.device.working_graph();
        let w = self.device.arch().channel_width as u64;
        let mut usage: Vec<u32> = vec![0; self.device.position_count()];
        let mut trees: Vec<Option<RoutingTree>> = vec![None; circuit.net_count()];
        for &ni in order {
            let terminals = circuit.net_terminals(self.device, ni)?;
            let masked =
                crate::router::mask_foreign_pins(&mut g, self.device, &terminals)?;
            let source = terminals[0];
            let mut union_edges: Vec<EdgeId> = Vec::new();
            let mut failed = false;
            for &sink in &terminals[1..] {
                // Independent two-pin maze route from the source. Earlier
                // subnets of the *same* net stay in the graph — a net may
                // overlap itself (same signal) — but no optimization steers
                // the route toward sharing; that is exactly the structural
                // handicap versus the Steiner router.
                // No readset waiver needed: the baseline maze router is
                // sequential-only and outside the hot-path cone, so the
                // call-graph-scoped readset rule proves this call never
                // runs under speculation.
                let sp = match ShortestPaths::run_to_targets(&g, source, &[sink]) {
                    Ok(sp) => sp,
                    Err(GraphError::NodeRemoved(_)) | Err(GraphError::NodeOutOfBounds(_)) => {
                        failed = true;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                };
                let Ok(path) = sp.path_to(sink) else {
                    failed = true;
                    break;
                };
                union_edges.extend_from_slice(path.edges());
            }
            crate::router::unmask_pins(&mut g, &masked)?;
            if failed {
                // The pass is abandoned; the working graph is dropped.
                return Ok(Err(ni));
            }
            // Independently routed subnets can diverge and reconverge;
            // collapse the union to a tree and drop dangling remnants.
            let forest = route_graph::mst::kruskal_subgraph(&g, &union_edges);
            let tree = RoutingTree::from_edges(&g, forest.edges)?.pruned_to(&g, &terminals)?;
            // Commit the net's resources.
            let committed_nodes: Vec<NodeId> = tree.nodes().collect();
            for &v in &committed_nodes {
                g.remove_node(v)?;
            }
            // Report the tree against the pristine device graph so costs
            // measure physical wire, not congestion-inflated weights.
            let tree = RoutingTree::from_edges(self.device.graph(), tree.edges().to_vec())?;
            self.update_congestion(&mut g, &mut usage, w, &committed_nodes)?;
            trees[ni] = Some(tree);
        }
        let trees: Vec<RoutingTree> = trees
            .into_iter()
            .map(|t| t.expect("all nets routed"))
            .collect();
        let mut max_pathlengths = Vec::with_capacity(trees.len());
        for (ni, tree) in trees.iter().enumerate() {
            let terminals = circuit.net_terminals(self.device, ni)?;
            let net = steiner_route::Net::from_terminals(terminals)?;
            max_pathlengths.push(tree.max_pathlength(&net)?);
        }
        let total_wirelength = trees.iter().map(RoutingTree::cost).sum();
        Ok(Ok(RouteOutcome {
            trees,
            passes: 0,
            total_wirelength,
            max_pathlengths,
            telemetry: crate::telemetry::RouteTelemetry::default(),
        }))
    }

    fn update_congestion(
        &self,
        g: &mut Graph,
        usage: &mut [u32],
        w: u64,
        nodes: &[NodeId],
    ) -> Result<(), FpgaError> {
        let mut touched: Vec<usize> = Vec::new();
        for &v in nodes {
            if let Some(pos) = self.device.segment_position(v) {
                usage[pos] = usage[pos].saturating_add(1);
                touched.push(pos);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let alpha = self.config.congestion_alpha_milli;
        for &pos in &touched {
            for v in self.device.segment_nodes_at(pos) {
                if !g.is_node_live(v) {
                    continue;
                }
                let edges: Vec<_> = g.neighbors(v).map(|(_, e, _)| e).collect();
                for e in edges {
                    let (a, b) = g.endpoints(e)?;
                    let occ = |n: NodeId| {
                        self.device
                            .segment_position(n)
                            .map_or(0, |p| usage[p]) as u64
                    };
                    let u = occ(a).max(occ(b));
                    let pressure = Weight::from_milli(alpha.saturating_mul(u) / w.max(1));
                    g.set_weight(e, Weight::UNIT.saturating_add(pressure))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchSpec, Side};
    use crate::netlist::{BlockPin, CircuitNet};
    use crate::router::{Router, RouterConfig};

    fn pin(row: usize, col: usize, side: Side, slot: usize) -> BlockPin {
        BlockPin {
            row,
            col,
            side,
            slot,
        }
    }

    fn fanout_circuit() -> Circuit {
        // One 5-pin net plus two 2-pin nets on a 3×3 array.
        Circuit::new(
            "fanout",
            3,
            3,
            vec![
                CircuitNet {
                    pins: vec![
                        pin(1, 1, Side::North, 0),
                        pin(0, 0, Side::East, 0),
                        pin(0, 2, Side::West, 0),
                        pin(2, 0, Side::East, 0),
                        pin(2, 2, Side::West, 0),
                    ],
                },
                CircuitNet {
                    pins: vec![pin(0, 1, Side::South, 1), pin(2, 1, Side::North, 1)],
                },
                CircuitNet {
                    pins: vec![pin(1, 0, Side::South, 1), pin(1, 2, Side::South, 1)],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn baseline_routes_and_is_disjoint() {
        let circuit = fanout_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 8)).unwrap();
        let outcome = BaselineRouter::new(&device, BaselineConfig::default())
            .route(&circuit)
            .unwrap();
        assert_eq!(outcome.trees.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for tree in &outcome.trees {
            for v in tree.nodes() {
                assert!(seen.insert(v), "resource {v} shared between nets");
            }
        }
    }

    #[test]
    fn baseline_uses_more_wire_than_steiner_router() {
        let circuit = fanout_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 8)).unwrap();
        let steiner = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        let baseline = BaselineRouter::new(&device, BaselineConfig::default())
            .route(&circuit)
            .unwrap();
        assert!(
            baseline.total_wirelength >= steiner.total_wirelength,
            "baseline {} vs steiner {}",
            baseline.total_wirelength,
            steiner.total_wirelength
        );
    }

    #[test]
    fn baseline_fails_on_impossible_width() {
        let circuit = fanout_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 1)).unwrap();
        let router = BaselineRouter::new(
            &device,
            BaselineConfig {
                max_passes: 3,
                ..BaselineConfig::default()
            },
        );
        assert!(matches!(
            router.route(&circuit),
            Err(FpgaError::Unroutable { .. })
        ));
    }

    #[test]
    fn trees_span_their_nets() {
        let circuit = fanout_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 8)).unwrap();
        let outcome = BaselineRouter::new(&device, BaselineConfig::default())
            .route(&circuit)
            .unwrap();
        for (ni, tree) in outcome.trees.iter().enumerate() {
            let terminals = circuit.net_terminals(&device, ni).unwrap();
            let net = steiner_route::Net::from_terminals(terminals).unwrap();
            assert!(tree.spans(&net), "net {ni}");
        }
    }
}
