//! Parallel batched net routing.
//!
//! The sequential router commits one net at a time because each commit
//! removes the net's resources and inflates congestion weights — later
//! nets must see those effects. Most nets, however, occupy disjoint
//! regions of the chip and cannot interact within a single pass. This
//! module exploits that: each pass's remaining order is split into
//! contiguous batches of nets whose expanded terminal bounding boxes do
//! not overlap, every net in a batch is routed *speculatively* on worker
//! threads against a read-only snapshot of the pass graph, and the
//! results are then committed strictly in order. A speculative tree is
//! accepted only if nothing it depends on changed since the snapshot;
//! otherwise the net is re-routed sequentially on the spot.
//!
//! Two properties make speculation sound:
//!
//! * **Within a pass the graph evolves monotonically** — commits only
//!   remove nodes and only raise weights. A net that is disconnected on
//!   the snapshot is therefore also disconnected on every later graph of
//!   the same pass, so a speculative routing *failure* can be reported
//!   immediately without re-checking.
//! * **Conflicts are detectable.** Every commit records the set of nodes
//!   it invalidated (removed tree nodes plus weight-refreshed segment
//!   nodes), and every speculation records its **read set** — each node
//!   whose liveness or incident edge weights its shortest-path runs
//!   examined ([`route_graph::readset`]). A speculation is accepted only
//!   if the invalidated set is disjoint from its read set, its tree, and
//!   its candidate region (the region covers the pool-liveness reads the
//!   Steiner template makes outside Dijkstra). Disjointness means the
//!   entire subgraph the construction observed — weights, liveness,
//!   adjacency order (removal is tombstone-based and never reorders) —
//!   is bit-identical on the live graph, so the deterministic
//!   construction would replay identically there; stale nets instead
//!   fall back to the sequential path. Either way the committed result
//!   is exactly what the sequential router would have produced at that
//!   point in the order.
//!
//! The read-set check is what makes acceptance *sound* rather than
//! merely plausible: congestion-weighted constructions consult distances
//! well outside their final tree, so a batch-mate's commit can redirect
//! a net's choices without ever touching the tree or its region. How
//! often speculation survives the check depends on the algorithm's
//! footprint — IKMB/KMB run target-restricted Dijkstras whose reads stay
//! near the net, while constructions that flood the whole component
//! (ZEL, DJKA, PFA, DOM) conflict with any batch-mate's commit and
//! degrade to the sequential path, trading speed for exactness.
//!
//! One read is deliberately absent from the read set: masking reads the
//! liveness of every logic-block pin, and a batch-mate's commit removes
//! the pins of its own net. That difference is invisible to the
//! construction — a foreign pin is dead during routing either way
//! (masked on the snapshot, already removed on the live graph), pins
//! are unique per net, and a pin's removal refreshes no channel
//! weights — so it cannot change the result.
//!
//! Because every speculative route runs against the same per-batch
//! snapshot (each worker restores its view after each net), the
//! outcome is independent of worker count and scheduling: `threads = 4`
//! and `threads = 1` produce identical trees and channel widths.
//!
//! Workers do not clone the snapshot. Each owns a persistent
//! [`OverlayArena`] and binds a [`GraphOverlay`] over the shared pass
//! graph per batch wave: mutations (pin masking, nothing else — routing
//! never commits) land in the worker's epoch-tagged delta, and restoring
//! the pristine snapshot after each net is an O(1) generation bump. A
//! wave therefore costs O(changed) per worker instead of O(graph), and
//! the arenas amortize their allocation across every wave of every pass.
//! The overlay preserves base adjacency order exactly (removal is
//! tombstone-filtered at iteration), so the bit-identity argument above
//! carries over unchanged.

use std::collections::HashSet;

use route_graph::{CsrView, Graph, GraphOverlay, NodeId, OverlayArena};
use steiner_route::RoutingTree;

use crate::netlist::Circuit;
use crate::router::{PassResult, Router};
use crate::sched::{interaction_gap, net_box, NetBox, REGION_SLACK};
use crate::telemetry::{CongestionSnapshot, PassTelemetry};
use crate::FpgaError;

/// Splits `order[start..]` into a contiguous batch of nets whose raw
/// bounding boxes are pairwise non-interacting at the tight gap (see
/// [`interaction_gap`] — the margins are counted once per pair, not
/// expanded onto each box and double-counted). Always yields at least
/// one net.
fn take_batch(
    circuit: &Circuit,
    order: &[usize],
    start: usize,
    gap: usize,
    max_len: usize,
) -> usize {
    let mut boxes: Vec<NetBox> = vec![net_box(circuit, order[start])];
    let mut len = 1;
    while start + len < order.len() && len < max_len {
        let candidate = net_box(circuit, order[start + len]);
        if boxes.iter().any(|b| b.interacts(&candidate, gap)) {
            break;
        }
        boxes.push(candidate);
        len += 1;
    }
    len
}

/// One net's speculative outcome: the routing result plus the read set
/// its constructions touched (sorted, deduplicated).
type NetSpeculation = (Result<Option<RoutingTree>, FpgaError>, Vec<NodeId>);

/// A [`NetSpeculation`] tagged with its index within the batch.
type Speculation = (usize, NetSpeculation);

/// Routes every net of `batch` against copy-on-write overlays of the
/// shared `snapshot` on up to `threads` scoped worker threads. Results
/// come back in batch order. The snapshot — immutable for the whole
/// wave — is packed once into a flat-CSR view ([`CsrView`]) so every
/// speculative shortest-path run sweeps contiguous adjacency lanes
/// instead of chasing the mutable graph's per-node edge lists (the same
/// packing PathFinder's route phase uses). Each worker binds its arena
/// over that CSR once per wave and resets the overlay after every net
/// (routing masks and unmasks pins but never commits), so all
/// speculation observes the identical snapshot regardless of how nets
/// land on workers — without ever cloning the graph. The CSR view
/// surface is identical to the graph's (same iteration order, same
/// liveness, same weights), so speculative results are bit-identical
/// to routing against the [`Graph`] directly.
#[allow(clippy::too_many_arguments)] // internal plumbing for one call site
fn speculate(
    router: &Router<'_>,
    circuit: &Circuit,
    critical: &[bool],
    snapshot: &Graph,
    batch: &[usize],
    threads: usize,
    arenas: &mut [OverlayArena],
    worker_stats: &mut [(u64, usize)],
) -> Vec<NetSpeculation> {
    let workers = threads.min(batch.len()).min(arenas.len()).max(1);
    let csr = CsrView::build(snapshot);
    let snapshot: &CsrView = &csr;
    let mut collected: Vec<Option<NetSpeculation>> = (0..batch.len()).map(|_| None).collect();
    // Workers record into per-thread trace buffers that merge into the
    // collector when the scope joins (thread exit), so speculation adds
    // no per-event contention; adopting the caller's span keeps worker-
    // side net spans nested under the pass span.
    let parent_span = route_trace::current_span();
    std::thread::scope(|scope| {
        let handles: Vec<_> = arenas[..workers]
            .iter_mut()
            .enumerate()
            .map(|(worker, arena)| {
                scope.spawn(move || -> (usize, Vec<Speculation>, u64) {
                    route_trace::adopt_parent(parent_span);
                    // lint: allow(determinism-wall-clock): gated on route_trace::enabled(); feeds the span timeline only, never routing state
                    let wave_started = route_trace::enabled().then(std::time::Instant::now);
                    let mut g = GraphOverlay::bind(snapshot, arena);
                    let routed: Vec<Speculation> = batch
                        .iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(workers)
                        .map(|(bi, &ni)| {
                            route_graph::readset::begin();
                            let result = router.route_net(&mut g, circuit, ni, critical);
                            let reads = route_graph::readset::take();
                            // O(1) back to the pristine snapshot for the
                            // worker's next net.
                            g.reset();
                            (bi, (result, reads))
                        })
                        .collect();
                    let busy_ns = wave_started.map_or(0, |s| {
                        u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    (worker, routed, busy_ns)
                })
            })
            .collect();
        for handle in handles {
            // lint: allow(panic-hygiene): join() only errs if the worker already panicked; re-raising is the correct propagation
            let (worker, routed, busy_ns) = handle.join().expect("routing worker panicked");
            if let Some(stats) = worker_stats.get_mut(worker) {
                stats.0 = stats.0.saturating_add(busy_ns);
                stats.1 = stats.1.saturating_add(routed.len());
            }
            for (bi, outcome) in routed {
                collected[bi] = Some(outcome);
            }
        }
    });
    collected
        .into_iter()
        // lint: allow(panic-hygiene): structural invariant — the strided worker partition covers every batch index exactly once
        .map(|slot| slot.expect("every batch slot speculated"))
        .collect()
}

/// Parallel analogue of the router's sequential pass: identical
/// semantics (net order, congestion updates, failure reporting, final
/// outcome) with intra-batch routing fanned out across worker threads.
pub(crate) fn route_pass_parallel(
    router: &Router<'_>,
    circuit: &Circuit,
    order: &[usize],
    critical: &[bool],
    threads: usize,
    arenas: &mut [OverlayArena],
    pass: usize,
) -> Result<(PassResult, PassTelemetry), FpgaError> {
    let device = router.device();
    let config = router.config();
    let threads = threads.max(2);
    let margin = config.candidate_margin + REGION_SLACK;
    let gap = interaction_gap(config.candidate_margin);

    let mut g = device.working_graph();
    if route_trace::enabled() {
        route_trace::count(route_trace::Counter::GraphSnapshotClones, 1);
    }
    let w = device.arch().channel_width as u64;
    let mut usage: Vec<u32> = vec![0; device.position_count()];
    let mut trees: Vec<Option<RoutingTree>> = vec![None; circuit.net_count()];
    let mut timing = PassTelemetry::default();
    // Per-worker (busy_ns, nets speculated) accumulated across every
    // batch wave of this pass, reported as scheduler-timeline records at
    // pass exit. Zero-cost when tracing is off (stays all-zero, skipped).
    let mut worker_stats: Vec<(u64, usize)> = vec![(0, 0); threads];
    // Taken at every pass exit, success or failure, so each executed pass
    // ships an end-state occupancy snapshot.
    macro_rules! finish_pass {
        ($result:expr) => {{
            if route_trace::enabled() {
                for (worker, &(busy_ns, nets)) in worker_stats.iter().enumerate() {
                    if nets == 0 {
                        continue;
                    }
                    route_trace::record_timeline(route_trace::TimelineRecord {
                        pass,
                        worker,
                        role: "batch-worker",
                        busy_ns,
                        nets,
                        steals: 0,
                        stalls: 0,
                    });
                }
            }
            timing.congestion = CongestionSnapshot::from_usage(0, w as usize, &usage);
            return Ok(($result, timing));
        }};
    }

    let mut start = 0usize;
    while start < order.len() {
        let len = take_batch(circuit, order, start, gap, threads * 4);
        let batch = &order[start..start + len];
        timing.batches += 1;

        if len == 1 {
            // Nothing to overlap with — take the sequential path directly.
            let ni = batch[0];
            match router.route_net(&mut g, circuit, ni, critical)? {
                Some(tree) => commit_one(router, &mut g, &mut usage, w, &mut trees, ni, tree, None)?,
                None => finish_pass!(PassResult::Failed(ni)),
            }
            start += len;
            continue;
        }

        timing.speculated += len;
        let speculated = speculate(
            router,
            circuit,
            critical,
            &g,
            batch,
            threads,
            arenas,
            &mut worker_stats,
        );

        // Commit strictly in order; `changed` accumulates every node the
        // batch's commits invalidated so later nets can detect staleness.
        let mut changed: HashSet<NodeId> = HashSet::new();
        for (bi, (result, reads)) in speculated.into_iter().enumerate() {
            let ni = batch[bi];
            match result? {
                // Disconnected on the snapshot stays disconnected on every
                // later graph of this pass (monotone evolution), so the
                // failure is sound without re-routing.
                None => finish_pass!(PassResult::Failed(ni)),
                Some(tree) => {
                    // Fresh ⇔ nothing the construction observed changed:
                    // its Dijkstra read set (which contains the tree, but
                    // the tree check is kept as cheap defense in depth)
                    // and the candidate region whose pool liveness the
                    // Steiner template scanned.
                    let fresh = changed.is_empty() || {
                        let region = router.region_nodes(circuit, ni, margin);
                        !reads.iter().any(|v| changed.contains(v))
                            && !tree.nodes().any(|v| changed.contains(&v))
                            && !region.iter().any(|v| changed.contains(v))
                    };
                    if fresh {
                        timing.accepted += 1;
                        if route_trace::enabled() {
                            route_trace::count(route_trace::Counter::ConflictAccepts, 1);
                        }
                        commit_one(
                            router,
                            &mut g,
                            &mut usage,
                            w,
                            &mut trees,
                            ni,
                            tree,
                            Some(&mut changed),
                        )?;
                    } else {
                        // Stale speculation: replay this net sequentially
                        // against the live graph, exactly as the
                        // sequential pass would have.
                        timing.rerouted += 1;
                        if route_trace::enabled() {
                            route_trace::count(route_trace::Counter::ConflictReroutes, 1);
                        }
                        match router.route_net(&mut g, circuit, ni, critical)? {
                            Some(tree) => commit_one(
                                router,
                                &mut g,
                                &mut usage,
                                w,
                                &mut trees,
                                ni,
                                tree,
                                Some(&mut changed),
                            )?,
                            None => finish_pass!(PassResult::Failed(ni)),
                        }
                    }
                }
            }
        }
        start += len;
    }

    finish_pass!(PassResult::Complete(router.finalize(circuit, trees)?))
}

/// Commits one routed tree and records it (re-derived against the
/// pristine device graph, matching the sequential pass) in `trees`.
#[allow(clippy::too_many_arguments)]
fn commit_one(
    router: &Router<'_>,
    g: &mut Graph,
    usage: &mut [u32],
    w: u64,
    trees: &mut [Option<RoutingTree>],
    ni: usize,
    tree: RoutingTree,
    changed: Option<&mut HashSet<NodeId>>,
) -> Result<(), FpgaError> {
    router.commit(g, usage, w, &tree, changed)?;
    let pristine = RoutingTree::from_edges(router.device().graph(), tree.edges().to_vec())?;
    trees[ni] = Some(pristine);
    Ok(())
}
