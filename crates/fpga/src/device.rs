//! The routing-resource graph of a symmetrical-array FPGA (paper Figure 2).
//!
//! Nodes are physical routing resources: **wire segments** (one track's
//! span past one block, in a horizontal or vertical channel) and
//! **logic-block pins**. Edges are programmable switches: connection-block
//! switches join pins to `F_c` of the adjacent channel's tracks, and
//! switch-block switches join segments meeting at a channel crossing,
//! with per-wire fanout `F_s`.
//!
//! Modelling *segments as nodes* makes electrical disjointness exact: a
//! segment belongs to at most one net, so committing a routed net removes
//! its nodes and all further nets are automatically disjoint (paper §5:
//! "edges used to route the net are removed from the graph, so that
//! subsequent nets remain electrically disjoint"). Every switch edge
//! carries unit weight, so tree cost counts programmable connections —
//! one per segment entered — making wirelength ≈ segments used.

use route_graph::{Graph, NodeId, Weight};

use crate::arch::{ArchSpec, Side};
use crate::FpgaError;

/// What a routing-graph node physically is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A horizontal wire segment: `channel ∈ 0..=rows`, `seg ∈ 0..cols`,
    /// `track ∈ 0..W`.
    HorizontalSegment {
        /// Horizontal channel index (0 = above the top block row).
        channel: usize,
        /// Segment index along the channel (one per block column).
        seg: usize,
        /// Track within the channel.
        track: usize,
    },
    /// A vertical wire segment: `channel ∈ 0..=cols`, `seg ∈ 0..rows`.
    VerticalSegment {
        /// Vertical channel index (0 = left of the leftmost block column).
        channel: usize,
        /// Segment index along the channel (one per block row).
        seg: usize,
        /// Track within the channel.
        track: usize,
    },
    /// A logic-block pin.
    Pin {
        /// Block row.
        row: usize,
        /// Block column.
        col: usize,
        /// Block side the pin sits on.
        side: Side,
        /// Pin slot within the side.
        slot: usize,
    },
}

/// A concrete FPGA device: the architecture plus its routing-resource
/// graph and resource lookup tables.
///
/// # Example
///
/// ```
/// use fpga_device::{ArchSpec, Device, Side};
///
/// # fn main() -> Result<(), fpga_device::FpgaError> {
/// let device = Device::new(ArchSpec::xilinx4000(4, 4, 5))?;
/// let a = device.pin_node(0, 0, Side::East, 0)?;
/// let b = device.pin_node(3, 3, Side::West, 1)?;
/// let path = route_graph::dijkstra::minpath(device.graph(), a, b)?;
/// assert!(path > route_graph::Weight::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    arch: ArchSpec,
    graph: Graph,
    hseg_count: usize,
    vseg_count: usize,
}

impl Device {
    /// Builds the routing-resource graph for `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidArchitecture`] for inconsistent
    /// parameters.
    pub fn new(arch: ArchSpec) -> Result<Device, FpgaError> {
        arch.validate()?;
        let w = arch.channel_width;
        let hseg_count = (arch.rows + 1) * arch.cols * w;
        let vseg_count = (arch.cols + 1) * arch.rows * w;
        let pin_count = arch.pin_capacity();
        let mut graph = Graph::with_nodes(hseg_count + vseg_count + pin_count);
        let device = Device {
            arch,
            graph: Graph::new(), // placeholder; replaced below
            hseg_count,
            vseg_count,
        };
        device.add_switch_block_edges(&mut graph)?;
        device.add_connection_block_edges(&mut graph)?;
        Ok(Device { graph, ..device })
    }

    /// The architecture this device realizes.
    #[must_use]
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The routing-resource graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A working copy of the routing-resource graph for a routing pass.
    #[must_use]
    pub fn working_graph(&self) -> Graph {
        self.graph.clone()
    }

    // ---- node id arithmetic -------------------------------------------

    fn hseg(&self, channel: usize, seg: usize, track: usize) -> NodeId {
        let w = self.arch.channel_width;
        debug_assert!(channel <= self.arch.rows && seg < self.arch.cols && track < w);
        NodeId::from_index((channel * self.arch.cols + seg) * w + track)
    }

    fn vseg(&self, channel: usize, seg: usize, track: usize) -> NodeId {
        let w = self.arch.channel_width;
        debug_assert!(channel <= self.arch.cols && seg < self.arch.rows && track < w);
        NodeId::from_index(self.hseg_count + (channel * self.arch.rows + seg) * w + track)
    }

    /// The node id of a logic-block pin.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BlockOutOfBounds`] or [`FpgaError::InvalidPin`].
    pub fn pin_node(
        &self,
        row: usize,
        col: usize,
        side: Side,
        slot: usize,
    ) -> Result<NodeId, FpgaError> {
        if row >= self.arch.rows || col >= self.arch.cols {
            return Err(FpgaError::BlockOutOfBounds { row, col });
        }
        if slot >= self.arch.pins_per_side {
            return Err(FpgaError::InvalidPin(format!(
                "slot {slot} exceeds {} pins per side",
                self.arch.pins_per_side
            )));
        }
        let base = self.hseg_count + self.vseg_count;
        let idx = ((row * self.arch.cols + col) * 4 + side.index()) * self.arch.pins_per_side
            + slot;
        Ok(NodeId::from_index(base + idx))
    }

    /// Classifies a node id back into its physical resource.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidPin`] for ids outside this device.
    pub fn node_kind(&self, v: NodeId) -> Result<NodeKind, FpgaError> {
        let w = self.arch.channel_width;
        let i = v.index();
        if i < self.hseg_count {
            let track = i % w;
            let rest = i / w;
            return Ok(NodeKind::HorizontalSegment {
                channel: rest / self.arch.cols,
                seg: rest % self.arch.cols,
                track,
            });
        }
        let i = i - self.hseg_count;
        if i < self.vseg_count {
            let track = i % w;
            let rest = i / w;
            return Ok(NodeKind::VerticalSegment {
                channel: rest / self.arch.rows,
                seg: rest % self.arch.rows,
                track,
            });
        }
        let i = i - self.vseg_count;
        if i < self.arch.pin_capacity() {
            let slot = i % self.arch.pins_per_side;
            let rest = i / self.arch.pins_per_side;
            let side = Side::from_index(rest % 4);
            let block = rest / 4;
            return Ok(NodeKind::Pin {
                row: block / self.arch.cols,
                col: block % self.arch.cols,
                side,
                slot,
            });
        }
        Err(FpgaError::InvalidPin(format!(
            "node {v} is not part of this device"
        )))
    }

    /// Classifies a switch edge by what it electrically does — the basis
    /// of the jog penalty in multi-weighted routing (paper §2: weights
    /// "may also reflect… jog penalties").
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidPin`] for edges outside the device.
    pub fn edge_kind(&self, e: route_graph::EdgeId) -> Result<EdgeKind, FpgaError> {
        let (a, b) = self.graph.endpoints(e).map_err(|ge| {
            FpgaError::InvalidPin(format!("edge {e} is not part of this device: {ge}"))
        })?;
        let ka = self.node_kind(a)?;
        let kb = self.node_kind(b)?;
        Ok(match (ka, kb) {
            (NodeKind::Pin { .. }, _) | (_, NodeKind::Pin { .. }) => EdgeKind::PinConnection,
            (NodeKind::HorizontalSegment { .. }, NodeKind::HorizontalSegment { .. })
            | (NodeKind::VerticalSegment { .. }, NodeKind::VerticalSegment { .. }) => {
                EdgeKind::Straight
            }
            _ => EdgeKind::Turn,
        })
    }

    /// Iterates over all logic-block pin nodes.
    pub fn pin_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.hseg_count + self.vseg_count;
        (base..base + self.arch.pin_capacity()).map(NodeId::from_index)
    }

    /// Returns `true` if `v` is a logic-block pin node of this device.
    #[must_use]
    pub fn is_pin(&self, v: NodeId) -> bool {
        let base = self.hseg_count + self.vseg_count;
        (base..base + self.arch.pin_capacity()).contains(&v.index())
    }

    // ---- congestion bookkeeping ---------------------------------------

    /// Number of distinct channel positions (a channel position is one
    /// segment span of one channel across all its tracks) — the unit at
    /// which channel occupancy is measured.
    #[must_use]
    pub fn position_count(&self) -> usize {
        (self.arch.rows + 1) * self.arch.cols + (self.arch.cols + 1) * self.arch.rows
    }

    /// The channel position of a segment node (`None` for pins).
    #[must_use]
    pub fn segment_position(&self, v: NodeId) -> Option<usize> {
        let w = self.arch.channel_width;
        let i = v.index();
        if i < self.hseg_count {
            Some(i / w)
        } else if i < self.hseg_count + self.vseg_count {
            Some((self.arch.rows + 1) * self.arch.cols + (i - self.hseg_count) / w)
        } else {
            None
        }
    }

    /// All segment nodes sharing a channel position (its `W` tracks).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= position_count()`.
    #[must_use]
    pub fn segment_nodes_at(&self, pos: usize) -> Vec<NodeId> {
        let w = self.arch.channel_width;
        let h_positions = (self.arch.rows + 1) * self.arch.cols;
        assert!(pos < self.position_count(), "position out of range");
        let base = if pos < h_positions {
            pos * w
        } else {
            self.hseg_count + (pos - h_positions) * w
        };
        (0..w).map(|t| NodeId::from_index(base + t)).collect()
    }

    // ---- construction internals ---------------------------------------

    /// Per switch block, the segments incident on each of the four sides
    /// for a given track, then edges per the `F_s` topology: every side
    /// pair connects same-track; the `F_s − 3` extra connections per wire
    /// are distributed over the pair classes (straight, then each turn
    /// class) as increasing track offsets.
    fn add_switch_block_edges(&self, graph: &mut Graph) -> Result<(), FpgaError> {
        let w = self.arch.channel_width;
        let extra = self.arch.fs - 3;
        // offsets[class] = list of track offsets (0 = same track).
        let mut offsets: [Vec<usize>; 3] = [vec![0], vec![0], vec![0]];
        for e in 0..extra {
            let class = e % 3;
            let offset = e / 3 + 1;
            offsets[class].push(offset);
        }
        for hch in 0..=self.arch.rows {
            for vch in 0..=self.arch.cols {
                // Incident segment lookup per side, as functions of track.
                let west = (vch > 0).then(|| (hch, vch - 1));
                let east = (vch < self.arch.cols).then_some((hch, vch));
                let north = (hch > 0).then(|| (vch, hch - 1));
                let south = (hch < self.arch.rows).then_some((vch, hch));
                // Pair classes: 0 = straight (W-E, N-S), 1 = first turns
                // (W-N, E-S), 2 = second turns (W-S, E-N).
                let pairs: [(Option<Seg>, Option<Seg>, usize); 6] = [
                    (west.map(Seg::h), east.map(Seg::h), 0),
                    (north.map(Seg::v), south.map(Seg::v), 0),
                    (west.map(Seg::h), north.map(Seg::v), 1),
                    (east.map(Seg::h), south.map(Seg::v), 1),
                    (west.map(Seg::h), south.map(Seg::v), 2),
                    (east.map(Seg::h), north.map(Seg::v), 2),
                ];
                for (a, b, class) in pairs {
                    let (Some(a), Some(b)) = (a, b) else { continue };
                    for &off in &offsets[class] {
                        for t in 0..w {
                            let t2 = (t + off) % w;
                            if off != 0 && t == t2 {
                                continue; // degenerate when W divides off
                            }
                            graph.add_edge(self.seg_node(a, t), self.seg_node(b, t2), Weight::UNIT)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn seg_node(&self, s: Seg, track: usize) -> NodeId {
        match s {
            Seg::H(ch, seg) => self.hseg(ch, seg, track),
            Seg::V(ch, seg) => self.vseg(ch, seg, track),
        }
    }

    /// Pins connect to `F_c` tracks of the adjacent channel segment,
    /// evenly spaced and rotated by slot/side so that different pins reach
    /// different track subsets.
    fn add_connection_block_edges(&self, graph: &mut Graph) -> Result<(), FpgaError> {
        let w = self.arch.channel_width;
        let fc = self.arch.fc_resolved();
        for row in 0..self.arch.rows {
            for col in 0..self.arch.cols {
                for side in Side::ALL {
                    let seg = match side {
                        Side::North => Seg::H(row, col),
                        Side::South => Seg::H(row + 1, col),
                        Side::West => Seg::V(col, row),
                        Side::East => Seg::V(col + 1, row),
                    };
                    for slot in 0..self.arch.pins_per_side {
                        let pin = self
                            .pin_node(row, col, side, slot)
                            .expect("loop bounds are in range");
                        let rotation = slot * 4 + side.index();
                        for j in 0..fc {
                            let track = (j * w / fc + rotation) % w;
                            graph.add_edge(pin, self.seg_node(seg, track), Weight::UNIT)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// What a routing-graph edge (a programmable switch) does electrically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Continues a wire in the same direction (H–H or V–V through a
    /// switch block).
    Straight,
    /// Changes direction (H–V): a *jog*.
    Turn,
    /// Connects a logic-block pin to a channel track.
    PinConnection,
}

/// A segment address used during construction.
#[derive(Debug, Clone, Copy)]
enum Seg {
    H(usize, usize),
    V(usize, usize),
}

impl Seg {
    fn h((ch, seg): (usize, usize)) -> Seg {
        Seg::H(ch, seg)
    }

    fn v((ch, seg): (usize, usize)) -> Seg {
        Seg::V(ch, seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::ShortestPaths;

    fn small() -> Device {
        Device::new(ArchSpec::xilinx4000(3, 4, 4)).unwrap()
    }

    #[test]
    fn node_counts_match_formula() {
        let d = small();
        // hsegs: 4 channels × 4 cols × 4 tracks; vsegs: 5 channels × 3 rows
        // × 4 tracks; pins: 12 blocks × 8.
        assert_eq!(d.graph().node_count(), 4 * 4 * 4 + 5 * 3 * 4 + 12 * 8);
    }

    #[test]
    fn node_kind_round_trips() {
        let d = small();
        for v in d.graph().node_ids() {
            match d.node_kind(v).unwrap() {
                NodeKind::HorizontalSegment { channel, seg, track } => {
                    assert!(channel <= 3 && seg < 4 && track < 4);
                }
                NodeKind::VerticalSegment { channel, seg, track } => {
                    assert!(channel <= 4 && seg < 3 && track < 4);
                }
                NodeKind::Pin { row, col, side, slot } => {
                    assert_eq!(d.pin_node(row, col, side, slot).unwrap(), v);
                }
            }
        }
    }

    #[test]
    fn pin_lookup_validates() {
        let d = small();
        assert!(matches!(
            d.pin_node(3, 0, Side::North, 0),
            Err(FpgaError::BlockOutOfBounds { .. })
        ));
        assert!(matches!(
            d.pin_node(0, 0, Side::North, 2),
            Err(FpgaError::InvalidPin(_))
        ));
    }

    #[test]
    fn disjoint_switch_blocks_have_fs3_interior_fanout() {
        let d = small();
        // An interior horizontal segment touches two switch blocks; in each
        // it connects to 3 other sides at the same track (disjoint, Fs=3).
        // Its total segment-to-segment degree is therefore 6, plus any pin
        // edges from connection blocks.
        let v = d.hseg(1, 1, 2);
        let seg_neighbors = d
            .graph()
            .neighbors(v)
            .filter(|&(u, _, _)| {
                !matches!(d.node_kind(u).unwrap(), NodeKind::Pin { .. })
            })
            .count();
        assert_eq!(seg_neighbors, 6);
        // Disjoint topology keeps tracks separate: all segment neighbors
        // share track 2.
        for (u, _, _) in d.graph().neighbors(v) {
            match d.node_kind(u).unwrap() {
                NodeKind::HorizontalSegment { track, .. }
                | NodeKind::VerticalSegment { track, .. } => assert_eq!(track, 2),
                NodeKind::Pin { .. } => {}
            }
        }
    }

    #[test]
    fn fs6_fanout_doubles_connections() {
        let d = Device::new(ArchSpec::xilinx3000(3, 4, 4)).unwrap();
        let v = d.hseg(1, 1, 2);
        let seg_neighbors = d
            .graph()
            .neighbors(v)
            .filter(|&(u, _, _)| {
                !matches!(d.node_kind(u).unwrap(), NodeKind::Pin { .. })
            })
            .count();
        // Fs = 6: per switch block 3 same-track + 3 offset-track.
        assert_eq!(seg_neighbors, 12);
    }

    #[test]
    fn pins_reach_fc_tracks() {
        let d = small(); // Fc = W = 4
        let pin = d.pin_node(1, 1, Side::North, 0).unwrap();
        let tracks: Vec<usize> = d
            .graph()
            .neighbors(pin)
            .map(|(u, _, _)| match d.node_kind(u).unwrap() {
                NodeKind::HorizontalSegment { channel, seg, track } => {
                    assert_eq!((channel, seg), (1, 1));
                    track
                }
                other => panic!("north pin connected to {other:?}"),
            })
            .collect();
        assert_eq!(tracks.len(), 4);
        let x3 = Device::new(ArchSpec::xilinx3000(3, 4, 10)).unwrap();
        let pin = x3.pin_node(0, 0, Side::South, 1).unwrap();
        assert_eq!(x3.graph().neighbors(pin).count(), 6); // ceil(0.6·10)
    }

    #[test]
    fn whole_device_is_connected() {
        let d = small();
        let start = d.pin_node(0, 0, Side::North, 0).unwrap();
        let sp = ShortestPaths::run(d.graph(), start).unwrap();
        for v in d.graph().node_ids() {
            assert!(sp.dist(v).is_some(), "{v} unreachable");
        }
    }

    #[test]
    fn positions_partition_segments() {
        let d = small();
        let mut seen = vec![0usize; d.position_count()];
        for v in d.graph().node_ids() {
            match d.node_kind(v).unwrap() {
                NodeKind::Pin { .. } => assert_eq!(d.segment_position(v), None),
                _ => {
                    let pos = d.segment_position(v).unwrap();
                    seen[pos] += 1;
                }
            }
        }
        // Every position holds exactly W segments.
        assert!(seen.iter().all(|&c| c == 4));
        // And segment_nodes_at inverts the mapping.
        for pos in 0..d.position_count() {
            for v in d.segment_nodes_at(pos) {
                assert_eq!(d.segment_position(v), Some(pos));
            }
        }
    }

    #[test]
    fn cross_pin_route_exists_and_is_short() {
        let d = small();
        let a = d.pin_node(0, 0, Side::East, 0).unwrap();
        let b = d.pin_node(2, 3, Side::West, 0).unwrap();
        let cost = route_graph::dijkstra::minpath(d.graph(), a, b).unwrap();
        // Manhattan-ish: needs at least ~4 segment hops, bounded above by
        // the full perimeter.
        assert!(cost >= Weight::from_units(4));
        assert!(cost <= Weight::from_units(20));
    }
}

#[cfg(test)]
mod edge_kind_tests {
    use super::*;

    #[test]
    fn classifies_pin_straight_and_turn_edges() {
        let d = Device::new(ArchSpec::xilinx4000(3, 3, 4)).unwrap();
        let mut seen = [0usize; 3];
        for e in d.graph().edge_ids() {
            match d.edge_kind(e).unwrap() {
                EdgeKind::Straight => seen[0] += 1,
                EdgeKind::Turn => seen[1] += 1,
                EdgeKind::PinConnection => seen[2] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 0), "{seen:?}");
        // Pin edges: every pin has Fc = W = 4 connections.
        assert_eq!(seen[2], d.pin_nodes().count() * 4);
    }

    #[test]
    fn disjoint_switch_blocks_have_straight_and_turn_mix() {
        // For Fs=3 each interior junction offers 2 straight pairs (W-E,
        // N-S) and 4 turn pairs per track.
        let d = Device::new(ArchSpec::xilinx4000(2, 2, 1)).unwrap();
        let straights = d
            .graph()
            .edge_ids()
            .filter(|&e| d.edge_kind(e).unwrap() == EdgeKind::Straight)
            .count();
        let turns = d
            .graph()
            .edge_ids()
            .filter(|&e| d.edge_kind(e).unwrap() == EdgeKind::Turn)
            .count();
        assert!(turns > straights);
    }
}
