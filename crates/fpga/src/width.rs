//! Minimum channel-width search (the paper's primary router metric).
//!
//! "A common criterion used to evaluate the quality of FPGA routers is the
//! maximum channel width required to successfully route all nets of a
//! design" (paper §5). The router takes `W` as an upper-bound input; for
//! each circuit we find the smallest `W` at which a complete routing
//! exists within the pass budget.

use std::ops::RangeInclusive;

use crate::arch::ArchSpec;
use crate::device::Device;
use crate::router::RouteOutcome;
use crate::FpgaError;

/// Search strategy over channel widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WidthSearch {
    /// Ascending linear scan: sound without any monotonicity assumption,
    /// one full routing attempt per width.
    Linear,
    /// Binary search between the bounds, assuming routability is monotone
    /// in `W` (true in practice for these congestion-driven routers); the
    /// returned width is always verified routable.
    ///
    /// The monotonicity assumption is *checked*, not trusted: if the
    /// widest width fails while the range might still contain a routable
    /// width — negotiated congestion can fail near its iteration budget
    /// at a width above a routable one — the search falls back to an
    /// ascending linear scan of the remaining range instead of declaring
    /// the range unroutable. Fallback probes are counted in
    /// [`WidthOutcome::attempts`] like any other.
    #[default]
    Binary,
}

/// Result of a minimum-width search.
#[derive(Debug, Clone)]
pub struct WidthOutcome {
    /// Smallest channel width found routable.
    pub channel_width: usize,
    /// The successful routing at that width.
    pub outcome: RouteOutcome,
    /// Routing attempts performed across all probed widths.
    pub attempts: usize,
}

/// Builds the successful [`WidthOutcome`], publishing the found width as
/// the `min_channel_width` gauge on its way out — one call site per
/// success path, so every search strategy reports identically.
fn found(channel_width: usize, outcome: RouteOutcome, attempts: usize) -> WidthOutcome {
    if route_trace::enabled() {
        route_trace::set_gauge(
            route_trace::Gauge::MinChannelWidth,
            channel_width as u64,
        );
    }
    WidthOutcome {
        channel_width,
        outcome,
        attempts,
    }
}

/// Finds the minimum channel width in `range` at which `route` succeeds.
///
/// `route` receives a freshly built device per probe (the architecture is
/// `base` with the probe's channel width) and should run a full multi-pass
/// routing, returning [`FpgaError::Unroutable`] on failure.
///
/// # Errors
///
/// * [`FpgaError::Unroutable`] if even the widest width in `range` fails;
/// * [`FpgaError::InvalidArchitecture`] for an empty range;
/// * any non-unroutability error from `route`, immediately.
pub fn minimum_channel_width(
    base: ArchSpec,
    range: RangeInclusive<usize>,
    strategy: WidthSearch,
    mut route: impl FnMut(&Device) -> Result<RouteOutcome, FpgaError>,
) -> Result<WidthOutcome, FpgaError> {
    let (lo, hi) = (*range.start(), *range.end());
    if lo == 0 || lo > hi {
        return Err(FpgaError::InvalidArchitecture(format!(
            "invalid width range {lo}..={hi}"
        )));
    }
    let _search_span =
        route_trace::span(route_trace::SpanKind::WidthSearch, "width_search", 0);
    let mut attempts = 0usize;
    let mut probe = |w: usize,
                     attempts: &mut usize|
     -> Result<Result<RouteOutcome, FpgaError>, FpgaError> {
        *attempts += 1;
        let _attempt_span =
            route_trace::span(route_trace::SpanKind::Attempt, "attempt", w as u64);
        let device = Device::new(base.with_channel_width(w))?;
        match route(&device) {
            Ok(outcome) => Ok(Ok(outcome)),
            Err(e @ FpgaError::Unroutable { .. }) => Ok(Err(e)),
            Err(e) => Err(e),
        }
    };
    match strategy {
        WidthSearch::Linear => {
            let mut last_err = None;
            for w in lo..=hi {
                match probe(w, &mut attempts)? {
                    Ok(outcome) => return Ok(found(w, outcome, attempts)),
                    Err(e) => last_err = Some(e),
                }
            }
            Err(last_err.expect("nonempty range probed at least once"))
        }
        WidthSearch::Binary => {
            // Establish a routable upper bound first.
            let mut best = match probe(hi, &mut attempts)? {
                Ok(outcome) => (hi, outcome),
                Err(widest_err) => {
                    // Non-monotone escape hatch: bisection concluding
                    // "unroutable" from this one failure is only sound if
                    // routability is monotone in W. Scan the rest of the
                    // range ascending; a success here is both the true
                    // minimum and the detected non-monotone outcome (a
                    // failure above a known-routable width).
                    for w in lo..hi {
                        if let Ok(outcome) = probe(w, &mut attempts)? {
                            return Ok(found(w, outcome, attempts));
                        }
                    }
                    return Err(widest_err);
                }
            };
            let mut known_bad = lo.saturating_sub(1);
            while best.0 > known_bad + 1 {
                let mid = (best.0 + known_bad) / 2;
                match probe(mid, &mut attempts)? {
                    Ok(outcome) => best = (mid, outcome),
                    Err(_) => known_bad = mid,
                }
            }
            Ok(found(best.0, best.1, attempts))
        }
    }
}

/// Parallel minimum-width search: probes up to `threads` channel widths
/// concurrently, in ascending waves, and returns the smallest routable
/// width — the same answer as [`WidthSearch::Linear`], without assuming
/// routability is monotone in `W`.
///
/// Each probe builds its own [`Device`] and runs `route` on a worker
/// thread, so `route` must be callable from multiple threads at once
/// (capture shared state by reference, build per-call state inside).
/// `threads <= 1` degenerates to the sequential linear scan.
///
/// `attempts` counts every probe launched, including widths wider than
/// the answer that were probed speculatively in the same wave.
///
/// # Errors
///
/// * [`FpgaError::Unroutable`] if even the widest width in `range` fails;
/// * [`FpgaError::InvalidArchitecture`] for an empty range;
/// * any non-unroutability error from `route` (reported from the
///   narrowest failing width of its wave), immediately.
pub fn minimum_channel_width_parallel(
    base: ArchSpec,
    range: RangeInclusive<usize>,
    threads: usize,
    route: impl Fn(&Device) -> Result<RouteOutcome, FpgaError> + Sync,
) -> Result<WidthOutcome, FpgaError> {
    let (lo, hi) = (*range.start(), *range.end());
    if lo == 0 || lo > hi {
        return Err(FpgaError::InvalidArchitecture(format!(
            "invalid width range {lo}..={hi}"
        )));
    }
    if threads <= 1 {
        return minimum_channel_width(base, range, WidthSearch::Linear, |device| route(device));
    }
    let _search_span =
        route_trace::span(route_trace::SpanKind::WidthSearch, "width_search", 0);
    let probe = |w: usize| -> Result<RouteOutcome, FpgaError> {
        let _attempt_span =
            route_trace::span(route_trace::SpanKind::Attempt, "attempt", w as u64);
        let device = Device::new(base.with_channel_width(w))?;
        route(&device)
    };
    let mut attempts = 0usize;
    let mut last_err = None;
    let mut wave_start = lo;
    while wave_start <= hi {
        let wave_end = (wave_start + threads - 1).min(hi);
        let widths: Vec<usize> = (wave_start..=wave_end).collect();
        attempts += widths.len();
        let mut results: Vec<Option<Result<RouteOutcome, FpgaError>>> =
            (0..widths.len()).map(|_| None).collect();
        // Probe workers adopt the search span so their attempt spans (and
        // everything beneath) nest correctly; their trace buffers merge
        // into the collector when the wave's scope joins.
        let parent_span = route_trace::current_span();
        std::thread::scope(|scope| {
            let probe = &probe;
            for (slot, &w) in results.iter_mut().zip(&widths) {
                scope.spawn(move || {
                    route_trace::adopt_parent(parent_span);
                    *slot = Some(probe(w));
                });
            }
        });
        for (result, &w) in results.into_iter().zip(&widths) {
            match result.expect("every width probed") {
                Ok(outcome) => return Ok(found(w, outcome, attempts)),
                Err(e @ FpgaError::Unroutable { .. }) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        wave_start = wave_end + 1;
    }
    Err(last_err.expect("nonempty range probed at least once"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Side;
    use crate::netlist::{BlockPin, Circuit, CircuitNet};
    use crate::router::{Router, RouterConfig};

    fn pin(row: usize, col: usize, side: Side, slot: usize) -> BlockPin {
        BlockPin {
            row,
            col,
            side,
            slot,
        }
    }

    fn crossing_circuit() -> Circuit {
        Circuit::new(
            "cross",
            2,
            2,
            vec![
                CircuitNet {
                    pins: vec![pin(0, 0, Side::East, 0), pin(1, 1, Side::West, 0)],
                },
                CircuitNet {
                    pins: vec![pin(0, 1, Side::West, 0), pin(1, 0, Side::East, 0)],
                },
                CircuitNet {
                    pins: vec![pin(0, 0, Side::South, 1), pin(1, 1, Side::North, 1)],
                },
            ],
        )
        .unwrap()
    }

    fn route_with(config: RouterConfig) -> impl FnMut(&Device) -> Result<RouteOutcome, FpgaError>
    {
        let circuit = crossing_circuit();
        move |device| Router::new(device, config.clone()).route(&circuit)
    }

    #[test]
    fn linear_and_binary_agree() {
        let config = RouterConfig {
            max_passes: 4,
            ..RouterConfig::default()
        };
        let base = ArchSpec::xilinx4000(2, 2, 1);
        let linear = minimum_channel_width(
            base,
            1..=8,
            WidthSearch::Linear,
            route_with(config.clone()),
        )
        .unwrap();
        let binary =
            minimum_channel_width(base, 1..=8, WidthSearch::Binary, route_with(config))
                .unwrap();
        assert_eq!(linear.channel_width, binary.channel_width);
        assert!(binary.attempts <= linear.attempts + 2);
    }

    #[test]
    fn found_width_is_minimal() {
        let config = RouterConfig {
            max_passes: 4,
            ..RouterConfig::default()
        };
        let base = ArchSpec::xilinx4000(2, 2, 1);
        let found = minimum_channel_width(
            base,
            1..=8,
            WidthSearch::Linear,
            route_with(config.clone()),
        )
        .unwrap();
        assert!(found.channel_width >= 1);
        if found.channel_width > 1 {
            // One narrower must fail.
            let circuit = crossing_circuit();
            let device =
                Device::new(base.with_channel_width(found.channel_width - 1)).unwrap();
            assert!(Router::new(&device, config).route(&circuit).is_err());
        }
    }

    #[test]
    fn parallel_search_agrees_with_linear() {
        let config = RouterConfig {
            max_passes: 4,
            ..RouterConfig::default()
        };
        let base = ArchSpec::xilinx4000(2, 2, 1);
        let linear = minimum_channel_width(
            base,
            1..=8,
            WidthSearch::Linear,
            route_with(config.clone()),
        )
        .unwrap();
        let circuit = crossing_circuit();
        for threads in [1usize, 3] {
            let parallel = minimum_channel_width_parallel(base, 1..=8, threads, |device| {
                Router::new(device, config.clone()).route(&circuit)
            })
            .unwrap();
            assert_eq!(parallel.channel_width, linear.channel_width, "threads={threads}");
        }
    }

    #[test]
    fn parallel_search_reports_unroutable_ranges() {
        let config = RouterConfig {
            max_passes: 2,
            ..RouterConfig::default()
        };
        let base = ArchSpec::xilinx4000(2, 2, 1);
        let circuit = crossing_circuit();
        let result = minimum_channel_width_parallel(base, 1..=1, 4, |device| {
            Router::new(device, config.clone()).route(&circuit)
        });
        assert!(matches!(result, Err(FpgaError::Unroutable { .. })));
        #[allow(clippy::reversed_empty_ranges)] // the empty range IS the case under test
        let empty = minimum_channel_width_parallel(base, 3..=2, 4, |_| unreachable!());
        assert!(matches!(empty, Err(FpgaError::InvalidArchitecture(_))));
    }

    #[test]
    fn binary_falls_back_to_linear_on_non_monotone_probes() {
        // Routable only at exactly W = 4: every wider probe fails, the
        // shape negotiated congestion can produce near its iteration
        // budget. Pure bisection would report the range unroutable from
        // the failed probe at W = 7; the fallback must find 4 and count
        // every probe it spent doing so.
        let config = RouterConfig {
            max_passes: 4,
            ..RouterConfig::default()
        };
        let base = ArchSpec::xilinx4000(2, 2, 1);
        let circuit = crossing_circuit();
        let found = minimum_channel_width(base, 1..=7, WidthSearch::Binary, |device| {
            if device.arch().channel_width == 4 {
                Router::new(device, config.clone()).route(&circuit)
            } else {
                Err(FpgaError::Unroutable {
                    channel_width: device.arch().channel_width,
                    passes: 0,
                    failed_net: 0,
                    overcapacity: Vec::new(),
                })
            }
        })
        .unwrap();
        assert_eq!(found.channel_width, 4);
        // One failed probe at 7, then the ascending scan 1, 2, 3, 4.
        assert_eq!(found.attempts, 5);
    }

    #[test]
    fn unroutable_range_errors() {
        let config = RouterConfig {
            max_passes: 2,
            ..RouterConfig::default()
        };
        let base = ArchSpec::xilinx4000(2, 2, 1);
        // Width 1 cannot route the three crossing nets.
        let result =
            minimum_channel_width(base, 1..=1, WidthSearch::Binary, route_with(config));
        assert!(matches!(result, Err(FpgaError::Unroutable { .. })));
    }

    #[test]
    fn empty_range_rejected() {
        let base = ArchSpec::xilinx4000(2, 2, 1);
        #[allow(clippy::reversed_empty_ranges)] // the empty range IS the case under test
        let empty = minimum_channel_width(base, 3..=2, WidthSearch::Binary, |_| unreachable!());
        assert!(matches!(empty, Err(FpgaError::InvalidArchitecture(_))));
        assert!(matches!(
            minimum_channel_width(base, 0..=2, WidthSearch::Binary, |_| unreachable!()),
            Err(FpgaError::InvalidArchitecture(_))
        ));
    }
}
