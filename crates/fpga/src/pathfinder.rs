//! Negotiated-congestion (PathFinder) routing: route *everything*, then
//! negotiate.
//!
//! The rip-up router serializes on net order: each net routes against a
//! graph the previous net just mutated, so parallel engines must
//! speculate and repair. Negotiated congestion inverts the discipline.
//! Each **iteration**:
//!
//! 1. **Route phase (fully parallel)** — every net is routed
//!    independently against the *same immutable priced snapshot*, with a
//!    per-net reversible exclusion along its previous route (classic
//!    PathFinder rips a net up before rerouting it; a net that saw its
//!    own occupancy as congestion would flee its own conflict-free route
//!    every iteration) and the **claim rule**: the lowest-indexed
//!    previous occupant of a node subtracts *everyone's* present cost
//!    there — it reroutes as if the node were unoccupied and keeps it —
//!    while other occupants subtract only their own share and are priced
//!    toward alternatives (see [`route_net_excluded`]). A microscopic
//!    per-net tie-break tilt ([`Tilted`]) spreads otherwise-symmetric
//!    contenders across a channel's parallel tracks. No resources are
//!    removed, so nets may overlap; because each net's route is a pure
//!    function of the snapshot, its own previous tree, the single-writer
//!    claim table, and its own index, the phase splits across workers
//!    with no conflict DAG, no speculation, and bit-identical results
//!    for any thread count or partition. Workers reuse the epoch-tagged
//!    [`GraphOverlay`] arenas (one bind per worker per iteration, O(1)
//!    reset) so the snapshot is never cloned.
//! 2. **Cost-update phase (single-writer)** — one thread tallies how many
//!    nets used each segment node (capacity: one net per node). If no
//!    node is over capacity the routing is disjoint and we are done.
//!    Otherwise every over-capacity node accumulates *history cost*, and
//!    the snapshot is repriced in one [`reprice_edges`] sweep: pristine
//!    base weight plus both endpoint pressures (present cost from this
//!    iteration's usage, plus accumulated history — summed, so each
//!    endpoint's contribution stays linear and a net's own share is
//!    exactly subtractable in the next route phase). The next
//!    iteration's nets then negotiate — established nets see their own
//!    routes as free and stay put, cheap alternatives win contested
//!    nodes away from nets with other options, and history breaks
//!    oscillation between equally-priced choices.
//!
//! ## Selective (dirty-net) negotiation
//!
//! With [`RouterConfig::pf_selective`] the iteration cost scales with
//! *remaining congestion* instead of circuit size. After each cost
//! update the single writer computes the **dirty set**: nets whose
//! committed route touches an over-capacity node, plus nets whose path
//! cost went *stale* — the history summed along their own tree grew
//! past [`RouterConfig::pf_stale_slack_milli`] since they were last
//! routed. Only dirty nets rip up and reroute next iteration; every
//! other net keeps its tree, and because the usage tally is recomputed
//! over **all** trees (kept and rerouted alike) the skipped nets'
//! occupancy stays visible to the negotiation — usage is conserved.
//! The cost update likewise narrows from the full [`reprice_edges`]
//! sweep to a [`reprice_incident_edges`] delta over the nodes whose
//! pressure actually changed (tracked by comparing each node's newly
//! computed pressure against the value baked into the snapshot). Dirty
//! nets are routed most-congested-first — ranked by how many
//! over-capacity nodes fall inside the bounding box of the net's
//! previous route — so the parallel phase drains contention early; the
//! ordering only changes which worker routes which net, never any
//! net's result. An optional ParaLarH-style multiplicative history
//! decay ([`RouterConfig::pf_history_decay_milli`]) runs in the same
//! writer sweep, before the iteration's increments. Dirty-set
//! membership, the reroute order, and the delta node set are all
//! functions of the priced snapshot alone, so selective mode stays
//! bit-identical across thread counts and schedulers.
//!
//! The single-writer claim is structural: `route_negotiated` owns the
//! priced [`Graph`] by value; during the route phase workers hold only
//! `&`-borrows of it (the borrow checker forbids repricing while any
//! worker is alive), and the repricing sweep runs after the scoped join,
//! on the owning thread. `fpga_lint`'s commit-path-mutation rule pins
//! [`reprice_edges`] and [`reprice_incident_edges`] calls to this module
//! the same way it pins `SharedPassWriter` to the scheduler commit
//! paths.
//!
//! All pricing arithmetic saturates at `Weight::MAX` (see
//! [`NegotiatedPricing`]): history accumulates monotonically for the
//! whole run and must degrade to "infinitely expensive", never panic.
//!
//! [`GraphOverlay`]: route_graph::GraphOverlay
//! [`Graph`]: route_graph::Graph
//! [`reprice_edges`]: route_graph::Graph::reprice_edges
//! [`reprice_incident_edges`]: route_graph::Graph::reprice_incident_edges
//! [`RouterConfig::pf_selective`]: crate::router::RouterConfig::pf_selective
//! [`RouterConfig::pf_stale_slack_milli`]: crate::router::RouterConfig::pf_stale_slack_milli
//! [`RouterConfig::pf_history_decay_milli`]: crate::router::RouterConfig::pf_history_decay_milli

use route_graph::rng::SplitMix64;
use route_graph::{
    CsrView, EdgeId, Graph, GraphError, GraphOverlay, GraphView, GraphViewMut, NodeId,
    OverlayArena, Weight,
};
use steiner_route::{NegotiatedPricing, RoutingTree};

use crate::device::{Device, NodeKind};
use crate::netlist::Circuit;
use crate::router::{RouteOutcome, Router};
use crate::FpgaError;

/// One worker's share of a route phase: `(net index, result)` pairs in
/// the order the worker visited them.
type WorkerRoutes = Vec<(usize, Result<Option<RoutingTree>, FpgaError>)>;

/// Previous-iteration state each net's self-exclusion reads during a
/// route phase: the ramped present cost, per-node usage, and per-node
/// claimants. All computed by the single writer, so the exclusion is a
/// pure function of (net, snapshot) — never of the worker partition.
#[derive(Clone, Copy)]
struct ExclusionCtx<'a> {
    /// This iteration's (ramped) present cost per occupying net.
    present: Weight,
    /// Previous iteration's per-node net count (empty on iteration 1).
    usage: &'a [u32],
    /// Lowest-indexed previous occupant per node (`usize::MAX` = none).
    claims: &'a [usize],
}

/// Upper bound (inclusive, in milli-units) of the per-net tie-break
/// tilt. Far below any base edge weight (milli-units versus whole
/// units), so the tilt can only ever decide between otherwise
/// equally-priced alternatives — it spreads symmetric nets across the
/// `W` parallel tracks of a channel instead of letting them pick the
/// same lowest-indexed one and then migrate in lockstep forever.
const TILT_MASK: u64 = 15;

/// Pure (net, edge) hash in `0..=TILT_MASK` milli: one SplitMix64 draw
/// from a seed mixing the net index and edge index. No state, no
/// ordering — the tilt a net sees is identical whatever worker routes
/// it, preserving thread-count bit-identity.
fn tilt_milli(net_salt: u64, e: EdgeId) -> u64 {
    let seed = net_salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(e.index() as u64);
    SplitMix64::seed_from_u64(seed).next_u64() & TILT_MASK
}

/// A per-net deterministic *tilt* over a priced snapshot: every edge
/// reads [`tilt_milli`] heavier than the underlying view.
///
/// Fully-synchronous negotiation has a failure mode classic sequential
/// PathFinder never meets: nets contending for a node all see the same
/// prices, so they all pick the same cheapest alternative, collide
/// there, and bounce between equally-priced tracks in lockstep while
/// history inflates everywhere. Giving each net its own microscopic,
/// deterministic preference among equal-cost choices breaks the
/// symmetry — contenders spread across parallel tracks and stay put.
///
/// Reads tilt; writes delegate untouched (masking flows through,
/// `add_weight` is overridden so the tilt is never baked into the
/// underlying weights).
struct Tilted<'a, G> {
    inner: &'a mut G,
    net_salt: u64,
}

impl<G: GraphViewMut> Tilted<'_, G> {
    fn tilt(&self, e: EdgeId) -> Weight {
        Weight::from_milli(tilt_milli(self.net_salt, e))
    }
}

impl<G: GraphViewMut> GraphView for Tilted<'_, G> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn edge_count(&self) -> usize {
        self.inner.edge_count()
    }

    fn live_node_count(&self) -> usize {
        self.inner.live_node_count()
    }

    fn live_edge_count(&self) -> usize {
        self.inner.live_edge_count()
    }

    fn is_node_live(&self, v: NodeId) -> bool {
        self.inner.is_node_live(v)
    }

    fn is_edge_usable(&self, e: EdgeId) -> bool {
        self.inner.is_edge_usable(e)
    }

    fn endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        self.inner.endpoints(e)
    }

    fn weight(&self, e: EdgeId) -> Result<Weight, GraphError> {
        Ok(self.inner.weight(e)?.saturating_add(self.tilt(e)))
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        self.inner
            .neighbors(v)
            .map(|(u, e, w)| (u, e, w.saturating_add(self.tilt(e))))
    }

    fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inner.node_ids()
    }

    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.inner.edge_ids()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }
}

impl<G: GraphViewMut> GraphViewMut for Tilted<'_, G> {
    fn set_weight(&mut self, e: EdgeId, weight: Weight) -> Result<(), GraphError> {
        self.inner.set_weight(e, weight)
    }

    fn add_weight(&mut self, e: EdgeId, delta: Weight) -> Result<(), GraphError> {
        self.inner.add_weight(e, delta)
    }

    fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        self.inner.remove_edge(e)
    }

    fn restore_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        self.inner.restore_edge(e)
    }

    fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.inner.remove_node(v)
    }

    fn restore_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.inner.restore_node(v)
    }
}

/// Routes `circuit` by negotiated congestion ([`RouteMode::Pathfinder`]).
///
/// Runs up to `pf_max_iterations` route-all/reprice rounds; converges
/// when no segment node is used by two nets. `arenas` are the per-worker
/// overlay arenas allocated by `route_classified` (empty when
/// `threads <= 1`).
///
/// [`RouteMode::Pathfinder`]: crate::router::RouteMode::Pathfinder
pub(crate) fn route_negotiated(
    router: &Router<'_>,
    circuit: &Circuit,
    critical: &[bool],
    threads: usize,
    arenas: &mut Vec<OverlayArena>,
) -> Result<RouteOutcome, FpgaError> {
    let device = router.device();
    let config = router.config();
    // Present cost ramps linearly with the iteration (classic PathFinder
    // grows its present factor every iteration): early iterations let
    // nets share freely while history discovers the truly contested
    // nodes, late iterations make sharing intolerable so the remaining
    // contenders must separate. `pricing_for(k)` prices the snapshot
    // *for* iteration k's route phase, which subtracts the same ramped
    // present back out along each net's own previous route.
    let pricing_for = |iteration: usize| NegotiatedPricing {
        present_milli: config.pf_present_milli.saturating_mul(iteration as u64),
        history_milli: config.pf_history_milli,
    };
    let base_pricing = pricing_for(1);
    // The priced snapshot, owned here: workers read it, only this
    // function reprices it.
    let mut priced = device.working_graph();
    if route_trace::enabled() {
        route_trace::count(route_trace::Counter::GraphSnapshotClones, 1);
    }
    // Pristine per-edge base weights: every repricing starts from
    // physical wire cost, not from the previous iteration's prices.
    let base_weights: Vec<Weight> = (0..priced.edge_count())
        .map(|i| priced.weight(EdgeId::from_index(i)))
        .collect::<Result<_, _>>()?;
    let node_count = device.graph().node_count();
    let mut history: Vec<Weight> = vec![Weight::ZERO; node_count];
    let width = device.arch().channel_width;
    let budget = config.pf_max_iterations.max(1);
    let net_count = circuit.net_count();
    let selective = config.pf_selective;
    let decay_milli = config.pf_history_decay_milli.min(1000);
    // Nets the next route phase rips up and reroutes, most-congested
    // first in selective mode. Iteration 1 (and every full-reroute
    // iteration) routes everything in net-index order.
    let mut order: Vec<usize> = (0..net_count).collect();
    // Per-net history milli summed along the net's own tree at the time
    // it was last routed — the baseline the staleness test compares
    // against (selective mode only).
    let mut stale_base: Vec<u64> = vec![0; net_count];
    // Per-node pressure currently baked into the priced snapshot: the
    // delta sweep reprices exactly the edges incident to nodes whose
    // freshly computed pressure differs (selective mode only; the
    // pristine snapshot carries zero pressure everywhere).
    let mut prev_pressure: Vec<Weight> = vec![Weight::ZERO; node_count];
    let mut passes_telemetry: Vec<crate::telemetry::PassTelemetry> = Vec::new();
    let mut final_overcap: Vec<NodeId> = Vec::new();
    let mut final_trees: Vec<Option<RoutingTree>> = Vec::new();
    let mut prev_usage: Vec<u32> = Vec::new();
    let mut prev_claims: Vec<usize> = Vec::new();
    for iteration in 1..=budget {
        // lint: allow(determinism-wall-clock): per-iteration timing lands in IterationStats reporting; cost updates never read it
        let started = std::time::Instant::now();
        let (trees, usage, pos_usage, claims, overcap) = {
            let _pass_span =
                route_trace::span(route_trace::SpanKind::Pass, "pass", iteration as u64);
            // --- route phase: all nets, one immutable snapshot ----------
            let ctx = ExclusionCtx {
                present: Weight::from_milli(pricing_for(iteration).present_milli),
                usage: &prev_usage,
                claims: &prev_claims,
            };
            let routed = route_all(
                router,
                circuit,
                critical,
                threads,
                arenas,
                &priced,
                &final_trees,
                ctx,
                iteration,
                &order,
            )?;
            // Merge: rerouted nets get their fresh trees, every other
            // net keeps the tree (and therefore the usage) it already
            // committed — the dirty-net conservation invariant.
            let mut trees: Vec<Option<RoutingTree>> =
                if order.len() == net_count || final_trees.len() != net_count {
                    (0..net_count).map(|_| None).collect()
                } else {
                    final_trees.clone()
                };
            for (ni, tree) in routed {
                trees[ni] = tree;
            }
            if let Some(ni) = trees.iter().position(Option::is_none) {
                // Disconnected with every resource live: no amount of
                // negotiation finds a route (pin masking alone cut the
                // net off). Contention is not the failure here.
                return Err(FpgaError::Unroutable {
                    channel_width: width,
                    passes: iteration,
                    failed_net: ni,
                    overcapacity: Vec::new(),
                });
            }
            // --- cost-update phase: single writer from here on ----------
            let mut usage: Vec<u32> = vec![0; node_count];
            let mut pos_usage: Vec<u32> = vec![0; device.position_count()];
            // First (lowest-indexed) occupant of each segment node: its
            // deterministic *claimant* for the next iteration's route
            // phase — the asymmetry sequential PathFinder gets for free
            // from rerouting nets one at a time.
            let mut claims: Vec<usize> = vec![usize::MAX; node_count];
            for (ni, tree) in trees.iter().enumerate() {
                let Some(tree) = tree.as_ref() else { continue };
                for v in tree.nodes() {
                    if let Some(pos) = device.segment_position(v) {
                        usage[v.index()] = usage[v.index()].saturating_add(1);
                        pos_usage[pos] = pos_usage[pos].saturating_add(1);
                        if claims[v.index()] == usize::MAX {
                            claims[v.index()] = ni;
                        }
                    }
                }
            }
            // Ascending node-id order: the reported over-capacity set and
            // the chosen failed net are partition-independent.
            let overcap: Vec<NodeId> = (0..node_count)
                .map(NodeId::from_index)
                .filter(|v| usage[v.index()] >= 2)
                .collect();
            (trees, usage, pos_usage, claims, overcap)
        };
        let converged = overcap.is_empty();
        if std::env::var_os("PF_DEBUG").is_some() {
            let users: Vec<usize> = overcap
                .first()
                .map(|&c| {
                    trees
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.as_ref().is_some_and(|t| t.nodes().any(|n| n == c)))
                        .map(|(i, _)| i)
                        .collect()
                })
                .unwrap_or_default();
            eprintln!(
                "pf iter {iteration}: overcap {} first {:?} users {:?}",
                overcap.len(),
                overcap.first(),
                users
            );
        }
        // Nets whose route changed relative to the previous iteration —
        // the convergence signal complementary to the over-capacity
        // count (a negotiation can stall with few over-capacity nodes
        // but many nets still churning between alternatives).
        let nets_rerouted = trees
            .iter()
            .enumerate()
            .filter(|(ni, tree)| {
                trees_differ(tree.as_ref(), final_trees.get(*ni).and_then(Option::as_ref))
            })
            .count();
        let mut timing = crate::telemetry::PassTelemetry {
            pass: iteration,
            overcapacity: overcap.len(),
            history_updates: if converged { 0 } else { overcap.len() },
            nets_rerouted,
            dirty_nets: order.len(),
            elapsed: started.elapsed(),
            congestion: crate::telemetry::CongestionSnapshot::from_usage(
                iteration, width, &pos_usage,
            ),
            ..Default::default()
        };
        route_trace::record_snapshot(timing.congestion.clone());
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::PathfinderIterations, 1);
            route_trace::count(
                route_trace::Counter::PathfinderOvercapacityNodes,
                overcap.len() as u64,
            );
            route_trace::count(route_trace::Counter::PathfinderDirtyNets, order.len() as u64);
            route_trace::count(
                route_trace::Counter::PathfinderSkippedNets,
                (net_count - order.len()) as u64,
            );
            route_trace::record_convergence(route_trace::ConvergenceRecord {
                iteration,
                overcapacity: overcap.len(),
                history_milli: history
                    .iter()
                    .fold(0u64, |acc, h| acc.saturating_add(h.as_milli())),
                nets_rerouted,
                present_milli: pricing_for(iteration).present_milli,
                dirty_nets: order.len(),
            });
            route_trace::record_duration(
                route_trace::Metric::PfIterationNs,
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            route_trace::set_gauge(
                route_trace::Gauge::PeakOvercapacityNodes,
                overcap.len() as u64,
            );
        }
        if converged {
            passes_telemetry.push(timing);
            // Disjoint routing: report trees against the pristine device
            // graph so costs measure physical wire, not negotiated prices.
            let rebuilt: Vec<Option<RoutingTree>> = trees
                .into_iter()
                .flatten()
                .map(|t| RoutingTree::from_edges(device.graph(), t.edges().to_vec()).map(Some))
                .collect::<Result<_, _>>()?;
            let mut outcome = router.finalize(circuit, rebuilt)?;
            outcome.passes = iteration;
            outcome.telemetry = crate::telemetry::RouteTelemetry {
                passes: passes_telemetry,
            };
            return Ok(outcome);
        }
        // Optional multiplicative history decay (ParaLarH's h = d·h +
        // overuse), applied to *every* node before this iteration's
        // increments. `0` skips the sweep entirely, leaving the run
        // bit-identical to the undecayed router.
        if decay_milli > 0 {
            let retained = u128::from(1000 - decay_milli);
            for h in &mut history {
                if *h != Weight::ZERO {
                    let milli = u128::from(h.as_milli()) * retained / 1000;
                    *h = Weight::from_milli(u64::try_from(milli).unwrap_or(u64::MAX));
                }
            }
        }
        // History accumulates only on over-capacity nodes, saturating.
        for &v in &overcap {
            let overuse = usage[v.index()].saturating_sub(1);
            history[v.index()] =
                history[v.index()].saturating_add(base_pricing.history_increment(overuse));
        }
        if route_trace::enabled() {
            route_trace::count(
                route_trace::Counter::PathfinderHistoryUpdates,
                overcap.len() as u64,
            );
        }
        let next = pricing_for(iteration.saturating_add(1));
        let repriced_edges = if selective {
            // Dirty-net selection for the next iteration, from the
            // freshly updated history: a net reroutes iff its tree
            // touches an over-capacity node, or the history summed
            // along its own tree outgrew its last-routed baseline by
            // more than the slack. Everything here reads single-writer
            // state only, so the set (and its order) is identical
            // whatever thread count routed the phase.
            let mut over = vec![false; node_count];
            for &v in &overcap {
                over[v.index()] = true;
            }
            let over_coords: Vec<(usize, usize)> = overcap
                .iter()
                .filter_map(|&v| node_coords(device, v))
                .collect();
            let mut routed_mask = vec![false; net_count];
            for &ni in &order {
                routed_mask[ni] = true;
            }
            // (congestion priority, net index) — sorted most-congested
            // first below, ties by ascending net index.
            let mut dirty: Vec<(usize, usize)> = Vec::new();
            for (ni, tree) in trees.iter().enumerate() {
                let Some(tree) = tree.as_ref() else { continue };
                let mut tree_history: u64 = 0;
                let mut touches_overcap = false;
                let mut bbox: Option<(usize, usize, usize, usize)> = None;
                for v in tree.nodes() {
                    if device.segment_position(v).is_none() {
                        continue;
                    }
                    tree_history = tree_history.saturating_add(history[v.index()].as_milli());
                    touches_overcap |= over[v.index()];
                    if let Some((x, y)) = node_coords(device, v) {
                        bbox = Some(bbox.map_or((x, x, y, y), |(x0, x1, y0, y1)| {
                            (x0.min(x), x1.max(x), y0.min(y), y1.max(y))
                        }));
                    }
                }
                if routed_mask[ni] {
                    stale_base[ni] = tree_history;
                }
                let stale = tree_history
                    > stale_base[ni].saturating_add(config.pf_stale_slack_milli);
                if touches_overcap || stale {
                    // Candidate region = the previous route's bounding
                    // box; its congestion priority is how many of the
                    // over-capacity nodes fall inside. Ordering only
                    // decides which worker routes which net — each
                    // net's route is partition-independent.
                    let priority = bbox.map_or(0, |(x0, x1, y0, y1)| {
                        over_coords
                            .iter()
                            .filter(|&&(x, y)| x >= x0 && x <= x1 && y >= y0 && y <= y1)
                            .count()
                    });
                    dirty.push((priority, ni));
                }
            }
            dirty.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            order = dirty.into_iter().map(|(_, ni)| ni).collect();
            // Incremental repricing: recompute every node's pressure
            // under the next iteration's ramped present factor and
            // sweep only the edges around nodes whose pressure moved.
            // Unused, history-free nodes — the bulk of a converging
            // circuit — keep their prices without being touched.
            let mut changed: Vec<NodeId> = Vec::new();
            for i in 0..node_count {
                let pressure = next.node_pressure(usage[i], history[i]);
                if pressure != prev_pressure[i] {
                    prev_pressure[i] = pressure;
                    changed.push(NodeId::from_index(i));
                }
            }
            priced.reprice_incident_edges(&changed, |e, a, b, _| {
                next.edge_weight(
                    base_weights[e.index()],
                    prev_pressure[a.index()],
                    prev_pressure[b.index()],
                )
            })
        } else {
            // Full-reroute mode: reprice the snapshot for the next
            // iteration in one sweep, under the next iteration's ramped
            // present factor.
            priced.reprice_edges(|e, a, b, _| {
                next.edge_weight(
                    base_weights[e.index()],
                    next.node_pressure(usage[a.index()], history[a.index()]),
                    next.node_pressure(usage[b.index()], history[b.index()]),
                )
            });
            priced.edge_count()
        };
        timing.repriced_edges = repriced_edges;
        if route_trace::enabled() {
            route_trace::count(
                route_trace::Counter::PathfinderRepricedEdges,
                repriced_edges as u64,
            );
        }
        passes_telemetry.push(timing);
        final_overcap = overcap;
        final_trees = trees;
        prev_usage = usage;
        prev_claims = claims;
    }
    // Budget exhausted: report the final contention honestly — the
    // still-over-capacity nodes and the lowest-indexed net touching the
    // first of them.
    let failed_net = final_overcap.first().map_or(0, |&contested| {
        final_trees
            .iter()
            .position(|t| t.as_ref().is_some_and(|t| t.nodes().any(|n| n == contested)))
            .unwrap_or(0)
    });
    Err(FpgaError::Unroutable {
        channel_width: width,
        passes: budget,
        failed_net,
        overcapacity: final_overcap,
    })
}

/// Grid coordinates `(x, y)` of a routing resource, for the dirty-net
/// bounding boxes: horizontal segments sit at (their segment along the
/// row, their channel), vertical segments transposed, pins at their
/// block. Nodes outside the device (never the case for tree nodes)
/// report `None`.
fn node_coords(device: &Device, v: NodeId) -> Option<(usize, usize)> {
    match device.node_kind(v).ok()? {
        NodeKind::HorizontalSegment { channel, seg, .. } => Some((seg, channel)),
        NodeKind::VerticalSegment { channel, seg, .. } => Some((channel, seg)),
        NodeKind::Pin { row, col, .. } => Some((col, row)),
    }
}

/// Whether a net's route changed between iterations: same edge *set*,
/// whatever order the construction emitted the edges in, counts as
/// unchanged.
fn trees_differ(a: Option<&RoutingTree>, b: Option<&RoutingTree>) -> bool {
    match (a, b) {
        (None, None) => false,
        (Some(a), Some(b)) => {
            let mut ea: Vec<usize> = a.edges().iter().map(|e| e.index()).collect();
            let mut eb: Vec<usize> = b.edges().iter().map(|e| e.index()).collect();
            ea.sort_unstable();
            eb.sort_unstable();
            ea != eb
        }
        _ => true,
    }
}

/// The route phase: the nets listed in `order` (all of them in
/// full-reroute mode, the dirty set in selective mode), each against
/// the same priced snapshot minus its own previous present cost (see
/// [`route_net_excluded`]). With `threads > 1`, worker `k` routes the
/// nets at positions `k, k+threads, …` of `order` over its own
/// [`GraphOverlay`]; the partition is invisible in the results because
/// no net's route depends on any other net's — only on the shared
/// snapshot and that net's own previous tree.
///
/// Returns `(net index, Some(tree))` per routed net, `None` for a
/// disconnected one; nets outside `order` are untouched. The snapshot
/// is left exactly as it was on entry (masking and exclusion happen on
/// per-worker overlays whose deltas die with the phase).
///
/// The priced graph is packed once per phase into a flat-CSR snapshot
/// ([`CsrView`]) so every net's shortest-path relaxations sweep
/// contiguous `(neighbor, edge, weight)` triples instead of chasing
/// the mutable graph's per-node edge lists. Both the sequential path
/// and the workers bind their copy-on-write overlays over that CSR
/// arena; the view surface is identical (same iteration order, same
/// liveness, same weights), so the phase stays bit-identical to
/// routing against the [`Graph`] directly, for any thread count.
#[allow(clippy::too_many_arguments)] // internal plumbing for one call site
fn route_all(
    router: &Router<'_>,
    circuit: &Circuit,
    critical: &[bool],
    threads: usize,
    arenas: &mut Vec<OverlayArena>,
    priced: &Graph,
    prev: &[Option<RoutingTree>],
    ctx: ExclusionCtx<'_>,
    iteration: usize,
    order: &[usize],
) -> Result<Vec<(usize, Option<RoutingTree>)>, FpgaError> {
    let prev_of = |ni: usize| prev.get(ni).and_then(Option::as_ref);
    let csr = CsrView::build(priced);
    if threads <= 1 {
        let phase_started = if route_trace::enabled() {
            // lint: allow(determinism-wall-clock): gated on route_trace::enabled(); feeds the span timeline only, never routing state
            Some(std::time::Instant::now())
        } else {
            None
        };
        // `route_classified` allocates no arenas for the sequential
        // mode; the CSR path still routes through an overlay (the CSR
        // snapshot is immutable), so make sure one exists and reuse it
        // across iterations like the workers reuse theirs.
        if arenas.is_empty() {
            arenas.push(OverlayArena::new());
        }
        let mut overlay = GraphOverlay::bind(&csr, &mut arenas[0]);
        let mut routed: Vec<(usize, Option<RoutingTree>)> = Vec::with_capacity(order.len());
        for &ni in order {
            routed.push((
                ni,
                route_net_excluded(
                    router,
                    &mut overlay,
                    circuit,
                    ni,
                    critical,
                    prev_of(ni),
                    ctx,
                )?,
            ));
        }
        if let Some(started) = phase_started {
            route_trace::record_timeline(route_trace::TimelineRecord {
                pass: iteration,
                worker: 0,
                role: "pf-worker",
                busy_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                nets: order.len(),
                steals: 0,
                stalls: 0,
            });
        }
        return Ok(routed);
    }
    while arenas.len() < threads {
        arenas.push(OverlayArena::new());
    }
    let snapshot: &CsrView = &csr;
    let parent_span = route_trace::current_span();
    let mut worker_results: Vec<WorkerRoutes> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (k, arena) in arenas.iter_mut().enumerate().take(threads) {
            handles.push(scope.spawn(move || {
                route_trace::adopt_parent(parent_span);
                let worker_started = if route_trace::enabled() {
                    // lint: allow(determinism-wall-clock): gated on route_trace::enabled(); feeds the span timeline only, never routing state
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                let mut overlay = GraphOverlay::bind(snapshot, arena);
                if route_trace::enabled() {
                    route_trace::count(route_trace::Counter::OverlayBinds, 1);
                }
                let mut routed = Vec::new();
                for ni in (k..order.len()).step_by(threads).map(|j| order[j]) {
                    routed.push((
                        ni,
                        route_net_excluded(
                            router,
                            &mut overlay,
                            circuit,
                            ni,
                            critical,
                            prev_of(ni),
                            ctx,
                        ),
                    ));
                }
                if let Some(started) = worker_started {
                    route_trace::record_timeline(route_trace::TimelineRecord {
                        pass: iteration,
                        worker: k,
                        role: "pf-worker",
                        busy_ns: u64::try_from(started.elapsed().as_nanos())
                            .unwrap_or(u64::MAX),
                        nets: routed.len(),
                        steals: 0,
                        stalls: 0,
                    });
                }
                route_trace::flush_thread();
                routed
            }));
        }
        for handle in handles {
            // A worker panic is a router bug; propagate it.
            // lint: allow(panic-hygiene): join() only errs if the worker already panicked; re-raising is the correct propagation
            worker_results.push(handle.join().expect("pathfinder worker panicked"));
        }
    });
    let mut routed: Vec<(usize, Option<RoutingTree>)> = Vec::with_capacity(order.len());
    let mut first_error: Option<(usize, FpgaError)> = None;
    for (ni, result) in worker_results.into_iter().flatten() {
        match result {
            Ok(tree) => routed.push((ni, tree)),
            // Report the lowest-indexed erroring net, whatever worker
            // order the scope joined in.
            Err(e) => {
                if first_error.as_ref().is_none_or(|&(i, _)| ni < i) {
                    first_error = Some((ni, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    Ok(routed)
}

/// Routes one net with a reversible price adjustment along its previous
/// route — the rip-up-first discipline, expressed as arithmetic instead
/// of resource removal.
///
/// Classic PathFinder rips a net up before rerouting it, so a net never
/// sees its own occupancy as congestion; without this every net flees
/// its own (possibly conflict-free) route each iteration and the
/// negotiation oscillates instead of settling. On top of that,
/// sequential PathFinder reroutes nets one at a time, which silently
/// arbitrates contested nodes: somebody reroutes *first* and keeps the
/// node, and whoever reroutes later sees it occupied. The synchronous
/// variant restores that asymmetry with the **claim rule**: the
/// lowest-indexed previous occupant of a node subtracts the node's
/// *entire* pressure (everyone's present plus history) along its route
/// — it re-routes as if the node were pristine and therefore keeps it —
/// while every other occupant subtracts only its own present cost and
/// so is pushed toward an alternative. Without the rule, the last two
/// contenders for a node bounce between the same two equally-priced
/// alternatives in lockstep forever.
///
/// Summed endpoint pricing makes the exclusion exact: each segment node
/// added its pressure to every incident edge, so the subtracted amount
/// is restored — in reverse order, so an edge with both endpoints on
/// the previous route returns to its exact price — after the search.
/// The adjustment depends only on the snapshot, the net's own previous
/// tree, and the single-writer claim table, never on the worker
/// partition, preserving thread-count bit-identity.
fn route_net_excluded<G: GraphViewMut>(
    router: &Router<'_>,
    graph: &mut G,
    circuit: &Circuit,
    ni: usize,
    critical: &[bool],
    prev: Option<&RoutingTree>,
    ctx: ExclusionCtx<'_>,
) -> Result<Option<RoutingTree>, FpgaError> {
    let device = router.device();
    let mut saved: Vec<(EdgeId, Weight)> = Vec::new();
    if let Some(tree) = prev {
        for v in tree.nodes() {
            // Only segment nodes carry usage pressure (the tally in
            // `route_negotiated` skips everything else).
            if device.segment_position(v).is_none() {
                continue;
            }
            let i = v.index();
            let amount = if ctx.claims.get(i) == Some(&ni) {
                // Claimant: all occupants' present is subtracted, so the
                // node reads as unoccupied and the claimant keeps it —
                // but history stays visible even to the claimant, so a
                // node whose contention never resolves eventually prices
                // its own claimant into rerouting around it, freeing it
                // for whoever kept colliding there.
                ctx.present.scale(u64::from(ctx.usage.get(i).copied().unwrap_or(0)))
            } else {
                // Loser: only its own share — the claimant's present and
                // the history stay visible and push it elsewhere.
                ctx.present
            };
            if amount == Weight::ZERO {
                continue;
            }
            let incident: Vec<(EdgeId, Weight)> =
                graph.neighbors(v).map(|(_, e, w)| (e, w)).collect();
            for (e, w) in incident {
                graph.set_weight(e, w.saturating_sub(amount))?;
                saved.push((e, w));
            }
        }
    }
    let mut tilted = Tilted {
        inner: graph,
        net_salt: ni as u64,
    };
    let result = router.route_net(&mut tilted, circuit, ni, critical);
    while let Some((e, w)) = saved.pop() {
        graph.set_weight(e, w)?;
    }
    result
}
