//! Synthetic benchmark circuits matching the paper's published profiles.
//!
//! The industrial circuits of Tables 2 and 3 (from the Rose/Brown CGE and
//! SEGA distributions) are not publicly redistributable. Each circuit's
//! *profile* is published, though: FPGA array size, total net count, and
//! the histogram of nets with 2–3, 4–10, and >10 pins. This module
//! regenerates seeded synthetic circuits with exactly those profiles —
//! preserving the structural property (multi-pin net mix against device
//! capacity) that drives the channel-width comparisons.

use route_graph::rng::SliceRandom;
use route_graph::rng::Rng;


use crate::arch::Side;
use crate::netlist::{BlockPin, Circuit, CircuitNet};
use crate::FpgaError;

/// The published profile of one benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Circuit name as it appears in the paper.
    pub name: &'static str,
    /// Logic-block rows of the FPGA it was mapped to.
    pub rows: usize,
    /// Logic-block columns.
    pub cols: usize,
    /// Nets with 2–3 pins.
    pub nets_2_3: usize,
    /// Nets with 4–10 pins.
    pub nets_4_10: usize,
    /// Nets with more than 10 pins.
    pub nets_over_10: usize,
}

impl CircuitProfile {
    /// Total net count.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets_2_3 + self.nets_4_10 + self.nets_over_10
    }
}

/// The five Xilinx 3000-series circuits of Table 2.
#[must_use]
pub fn xc3000_profiles() -> Vec<CircuitProfile> {
    vec![
        profile("busc", 12, 13, 115, 28, 8),
        profile("dma", 16, 18, 139, 52, 22),
        profile("bnre", 21, 22, 255, 70, 27),
        profile("dfsm", 22, 23, 361, 26, 33),
        profile("z03", 26, 27, 398, 176, 34),
    ]
}

/// The nine Xilinx 4000-series circuits of Table 3.
///
/// The `term1` row is garbled in the scanned table; its bucket counts
/// (65 / 21 / 2) are reconstructed from the published column totals
/// (1154 / 454 / 102).
#[must_use]
pub fn xc4000_profiles() -> Vec<CircuitProfile> {
    vec![
        profile("alu4", 19, 17, 165, 69, 21),
        profile("apex7", 12, 10, 83, 30, 2),
        profile("term1", 10, 9, 65, 21, 2),
        profile("example2", 14, 12, 171, 25, 9),
        profile("too_large", 14, 14, 128, 46, 12),
        profile("k2", 22, 20, 241, 146, 17),
        profile("vda", 17, 16, 132, 80, 13),
        profile("9symml", 11, 10, 60, 11, 8),
        profile("alu2", 15, 13, 109, 26, 18),
    ]
}

fn profile(
    name: &'static str,
    rows: usize,
    cols: usize,
    nets_2_3: usize,
    nets_4_10: usize,
    nets_over_10: usize,
) -> CircuitProfile {
    CircuitProfile {
        name,
        rows,
        cols,
        nets_2_3,
        nets_4_10,
        nets_over_10,
    }
}

/// Generates a placed synthetic circuit matching `profile`, deterministic
/// in `seed` and `pins_per_side`.
///
/// Pin counts are drawn per bucket — uniform on {2, 3}, a small-skewed
/// draw on 4..=10, and uniform on 11..=18 — and each pin claims a distinct
/// free (block, side, slot). Fanout pins of a net are spread over blocks
/// near a randomly chosen center with geometric spread, mimicking a placed
/// design's locality.
///
/// # Errors
///
/// Returns [`FpgaError::CircuitMismatch`] if the profile demands more pins
/// than the array provides.
pub fn synthesize(
    profile: &CircuitProfile,
    pins_per_side: usize,
    seed: u64,
) -> Result<Circuit, FpgaError> {
    let mut rng = route_graph::rng::SplitMix64::seed_from_u64(seed);
    let mut free = PinAllocator::new(profile.rows, profile.cols, pins_per_side);
    let mut pin_counts: Vec<usize> = Vec::with_capacity(profile.net_count());
    for _ in 0..profile.nets_2_3 {
        pin_counts.push(rng.gen_range(2..=3usize));
    }
    for _ in 0..profile.nets_4_10 {
        // Skew towards small fanout: min of two uniform draws.
        let a = rng.gen_range(4..=10usize);
        let b = rng.gen_range(4..=10usize);
        pin_counts.push(a.min(b));
    }
    for _ in 0..profile.nets_over_10 {
        pin_counts.push(rng.gen_range(11..=18usize));
    }
    let total_pins: usize = pin_counts.iter().sum();
    let capacity = profile.rows * profile.cols * 4 * pins_per_side;
    if total_pins > capacity {
        return Err(FpgaError::CircuitMismatch(format!(
            "{} needs {total_pins} pins but the array only offers {capacity}",
            profile.name
        )));
    }
    // Route biggest nets first so they can still find contiguous regions.
    pin_counts.sort_unstable_by(|a, b| b.cmp(a));
    let mut nets = Vec::with_capacity(pin_counts.len());
    for pins in pin_counts {
        nets.push(CircuitNet {
            pins: free.allocate_net(pins, &mut rng)?,
        });
    }
    nets.shuffle(&mut rng);
    Circuit::new(profile.name, profile.rows, profile.cols, nets)
}

/// Tracks free pin slots and hands out clustered nets.
struct PinAllocator {
    rows: usize,
    cols: usize,
    /// Free (side, slot) pairs per block.
    free: Vec<Vec<(Side, usize)>>,
}

impl PinAllocator {
    fn new(rows: usize, cols: usize, pins_per_side: usize) -> PinAllocator {
        let per_block: Vec<(Side, usize)> = Side::ALL
            .into_iter()
            .flat_map(|s| (0..pins_per_side).map(move |k| (s, k)))
            .collect();
        PinAllocator {
            rows,
            cols,
            free: vec![per_block; rows * cols],
        }
    }

    fn allocate_net<R: Rng>(
        &mut self,
        pins: usize,
        rng: &mut R,
    ) -> Result<Vec<BlockPin>, FpgaError> {
        let center = (
            rng.gen_range(0..self.rows) as isize,
            rng.gen_range(0..self.cols) as isize,
        );
        let mut out: Vec<BlockPin> = Vec::with_capacity(pins);
        let mut used_blocks: Vec<usize> = Vec::new();
        let mut spread = 2isize;
        let mut attempts = 0usize;
        while out.len() < pins {
            attempts += 1;
            if attempts > 64 {
                spread += 2; // widen the cluster when the area saturates
                attempts = 0;
                if spread as usize > 2 * (self.rows + self.cols) {
                    return Err(FpgaError::CircuitMismatch(
                        "pin allocation exhausted the array".into(),
                    ));
                }
            }
            let r = (center.0 + rng.gen_range(-spread..=spread))
                .clamp(0, self.rows as isize - 1) as usize;
            let c = (center.1 + rng.gen_range(-spread..=spread))
                .clamp(0, self.cols as isize - 1) as usize;
            let block = r * self.cols + c;
            if used_blocks.contains(&block) {
                continue; // one pin of a net per block, like real mappings
            }
            let slots = &mut self.free[block];
            if slots.is_empty() {
                continue;
            }
            let pick = rng.gen_range(0..slots.len());
            let (side, slot) = slots.swap_remove(pick);
            used_blocks.push(block);
            out.push(BlockPin {
                row: r,
                col: c,
                side,
                slot,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_profiles_match_published_totals() {
        let t2 = xc3000_profiles();
        assert_eq!(t2.iter().map(CircuitProfile::net_count).sum::<usize>(), 1744);
        assert_eq!(t2.iter().map(|p| p.nets_2_3).sum::<usize>(), 1268);
        assert_eq!(t2.iter().map(|p| p.nets_4_10).sum::<usize>(), 352);
        assert_eq!(t2.iter().map(|p| p.nets_over_10).sum::<usize>(), 124);
        let t3 = xc4000_profiles();
        assert_eq!(t3.iter().map(CircuitProfile::net_count).sum::<usize>(), 1710);
        assert_eq!(t3.iter().map(|p| p.nets_2_3).sum::<usize>(), 1154);
        assert_eq!(t3.iter().map(|p| p.nets_4_10).sum::<usize>(), 454);
        assert_eq!(t3.iter().map(|p| p.nets_over_10).sum::<usize>(), 102);
    }

    #[test]
    fn synthesis_matches_profile_exactly() {
        for profile in [&xc3000_profiles()[0], &xc4000_profiles()[2]] {
            let c = synthesize(profile, 2, 7).unwrap();
            assert_eq!(c.net_count(), profile.net_count());
            let (small, medium, large) = c.pin_histogram();
            assert_eq!(small, profile.nets_2_3, "{}", profile.name);
            assert_eq!(medium, profile.nets_4_10, "{}", profile.name);
            assert_eq!(large, profile.nets_over_10, "{}", profile.name);
            assert_eq!(c.rows(), profile.rows);
            assert_eq!(c.cols(), profile.cols);
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let p = &xc4000_profiles()[1]; // apex7
        let a = synthesize(p, 2, 3).unwrap();
        let b = synthesize(p, 2, 3).unwrap();
        assert_eq!(a, b);
        let c = synthesize(p, 2, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn largest_profile_synthesizes() {
        // z03: 608 nets on 26×27 — the stress case for pin capacity.
        let p = xc3000_profiles()[4];
        let c = synthesize(&p, 2, 11).unwrap();
        assert_eq!(c.net_count(), 608);
    }

    #[test]
    fn impossible_capacity_is_rejected() {
        let p = CircuitProfile {
            name: "dense",
            rows: 2,
            cols: 2,
            nets_2_3: 0,
            nets_4_10: 0,
            nets_over_10: 10,
        };
        assert!(matches!(
            synthesize(&p, 1, 1),
            Err(FpgaError::CircuitMismatch(_))
        ));
    }
}
