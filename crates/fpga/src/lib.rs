//! # fpga-device
//!
//! Symmetrical-array FPGA device model and detailed router for the
//! reproduction of *New Performance-Driven FPGA Routing Algorithms*
//! (Alexander & Robins, DAC 1995).
//!
//! The crate provides every substrate the paper's §5 experiments need:
//!
//! * [`ArchSpec`] — architecture parameters with Xilinx 3000-series
//!   (`F_s = 6`, `F_c = ⌈0.6W⌉`) and 4000-series (`F_s = 3`, `F_c = W`)
//!   presets;
//! * [`Device`] — the routing-resource graph of paper Figure 2 (segments
//!   and pins as nodes, programmable switches as edges);
//! * [`Circuit`] / [`synth`] — netlists, including seeded synthetic
//!   circuits matching the published profiles of every benchmark in
//!   Tables 2 and 3;
//! * [`Router`] — the paper's router: whole-net Steiner/arborescence
//!   constructions, congestion-updated weights, resource removal for
//!   electrical disjointness, move-to-front ordering, pass budget;
//! * [`sched`] — the default parallel engine: dependency-DAG wavefront
//!   scheduling with work-stealing deques and commit/speculation
//!   overlap, bit-for-bit identical to sequential;
//! * [`parallel`] — the lockstep batch engine
//!   (`RouterConfig::scheduler`), kept as baseline and fallback;
//! * [`pathfinder`] — negotiated congestion (`RouterConfig::mode`):
//!   route every net each iteration against an immutable priced
//!   snapshot, then reprice under present + history costs — fully
//!   parallel with no speculation, bit-identical across thread counts;
//! * [`BaselineRouter`] — the two-pin-decomposition stand-in for
//!   CGE/SEGA/GBP;
//! * [`width`] — minimum channel-width search;
//! * [`viz`] — ASCII/SVG renderings (paper Figure 16).
//!
//! ```no_run
//! use fpga_device::{ArchSpec, Device, Router, RouterConfig};
//! use fpga_device::synth::{synthesize, xc4000_profiles};
//! use fpga_device::width::{minimum_channel_width, WidthSearch};
//!
//! # fn main() -> Result<(), fpga_device::FpgaError> {
//! let profile = xc4000_profiles()[7]; // 9symml
//! let circuit = synthesize(&profile, 2, 1)?;
//! let base = ArchSpec::xilinx4000(profile.rows, profile.cols, 1);
//! let found = minimum_channel_width(base, 3..=20, WidthSearch::Binary, |device| {
//!     Router::new(device, RouterConfig::default()).route(&circuit)
//! })?;
//! println!("{} routes at W = {}", profile.name, found.channel_width);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod baseline;
pub mod classify;
pub mod device;
mod error;
pub mod netlist;
pub mod parallel;
pub mod pathfinder;
pub mod router;
pub mod sched;
pub mod synth;
pub mod telemetry;
pub mod three_d;
pub mod viz;
pub mod width;

pub use arch::{ArchSpec, FcSpec, Side};
pub use baseline::{BaselineConfig, BaselineRouter};
pub use device::{Device, EdgeKind, NodeKind};
pub use error::FpgaError;
pub use netlist::{BlockPin, Circuit, CircuitNet};
pub use router::{
    auto_thread_count, RouteAlgorithm, RouteMode, RouteOutcome, Router, RouterConfig,
    SchedulerKind,
};
pub use telemetry::{CongestionSnapshot, PassTelemetry, RouteTelemetry};
pub use synth::CircuitProfile;
