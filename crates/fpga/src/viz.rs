//! Rendering routed circuits (paper Figure 16).

use std::fmt::Write as _;

use crate::device::{Device, NodeKind};
use crate::netlist::Circuit;
use crate::router::RouteOutcome;
use crate::FpgaError;

/// Renders per-channel-position track occupancy as ASCII art: one digit
/// (or `#` for ≥10) per horizontal-channel segment, with vertical channels
/// interleaved, blocks drawn as `[]`.
///
/// # Errors
///
/// Returns classification errors if the outcome does not belong to the
/// device.
pub fn render_ascii_occupancy(
    device: &Device,
    outcome: &RouteOutcome,
) -> Result<String, FpgaError> {
    let arch = *device.arch();
    let mut usage = vec![0usize; device.position_count()];
    for tree in &outcome.trees {
        for v in tree.nodes() {
            if let Some(pos) = device.segment_position(v) {
                usage[pos] += 1;
            }
        }
    }
    let h_positions = (arch.rows + 1) * arch.cols;
    let digit = |u: usize| -> char {
        match u {
            0 => '.',
            1..=9 => char::from(b'0' + u as u8),
            _ => '#',
        }
    };
    let mut out = String::new();
    for hch in 0..=arch.rows {
        // Horizontal channel row: corner + per-column occupancy.
        out.push_str("  ");
        for seg in 0..arch.cols {
            let u = usage[hch * arch.cols + seg];
            let _ = write!(out, "+{}", digit(u));
        }
        out.push_str("+\n");
        if hch == arch.rows {
            break;
        }
        // Block row: vertical channel occupancy + blocks.
        for vch in 0..=arch.cols {
            let u = usage[h_positions + vch * arch.rows + hch];
            let _ = write!(out, "{} ", digit(u));
            if vch < arch.cols {
                out.push_str("[]");
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Renders the routed circuit as an SVG document: logic blocks as squares,
/// every used wire segment as a line colored by net (the style of the
/// paper's Figure 16).
///
/// # Errors
///
/// Returns classification errors if the outcome does not belong to the
/// device.
pub fn render_svg(
    device: &Device,
    circuit: &Circuit,
    outcome: &RouteOutcome,
) -> Result<String, FpgaError> {
    let arch = *device.arch();
    const CHAN: f64 = 16.0;
    const BLOCK: f64 = 40.0;
    const PITCH: f64 = CHAN + BLOCK;
    let width = arch.cols as f64 * PITCH + CHAN;
    let height = arch.rows as f64 * PITCH + CHAN;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    // Logic blocks.
    for r in 0..arch.rows {
        for c in 0..arch.cols {
            let x = c as f64 * PITCH + CHAN;
            let y = r as f64 * PITCH + CHAN;
            let _ = writeln!(
                svg,
                r##"<rect x="{x}" y="{y}" width="{BLOCK}" height="{BLOCK}" fill="#e8e8e8" stroke="#666"/>"##
            );
        }
    }
    // Routed segments, colored per net.
    let w = arch.channel_width as f64;
    for (ni, tree) in outcome.trees.iter().enumerate() {
        let hue = (ni as f64 * 137.508) % 360.0;
        let color = format!("hsl({hue:.1},70%,40%)");
        for v in tree.nodes() {
            match device.node_kind(v)? {
                NodeKind::HorizontalSegment { channel, seg, track } => {
                    let y = channel as f64 * PITCH + 2.0 + (track as f64 + 0.5) * (CHAN - 4.0) / w;
                    let x0 = seg as f64 * PITCH + CHAN / 2.0;
                    let x1 = (seg + 1) as f64 * PITCH + CHAN / 2.0;
                    let _ = writeln!(
                        svg,
                        r#"<line x1="{x0:.1}" y1="{y:.1}" x2="{x1:.1}" y2="{y:.1}" stroke="{color}" stroke-width="1.4"/>"#
                    );
                }
                NodeKind::VerticalSegment { channel, seg, track } => {
                    let x = channel as f64 * PITCH + 2.0 + (track as f64 + 0.5) * (CHAN - 4.0) / w;
                    let y0 = seg as f64 * PITCH + CHAN / 2.0;
                    let y1 = (seg + 1) as f64 * PITCH + CHAN / 2.0;
                    let _ = writeln!(
                        svg,
                        r#"<line x1="{x:.1}" y1="{y0:.1}" x2="{x:.1}" y2="{y1:.1}" stroke="{color}" stroke-width="1.4"/>"#
                    );
                }
                NodeKind::Pin { row, col, .. } => {
                    let x = col as f64 * PITCH + CHAN + BLOCK / 2.0;
                    let y = row as f64 * PITCH + CHAN + BLOCK / 2.0;
                    let _ = writeln!(
                        svg,
                        r#"<circle cx="{x:.1}" cy="{y:.1}" r="2.2" fill="{color}"/>"#
                    );
                }
            }
        }
    }
    let _ = writeln!(
        svg,
        r##"<text x="4" y="{:.1}" font-size="10" fill="#333">{} — {} nets, W={}</text>"##,
        height - 4.0,
        circuit.name(),
        circuit.net_count(),
        arch.channel_width
    );
    svg.push_str("</svg>\n");
    Ok(svg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchSpec, Side};
    use crate::netlist::{BlockPin, CircuitNet};
    use crate::router::{Router, RouterConfig};

    fn routed() -> (Device, Circuit, RouteOutcome) {
        let circuit = Circuit::new(
            "viz",
            2,
            2,
            vec![CircuitNet {
                pins: vec![
                    BlockPin {
                        row: 0,
                        col: 0,
                        side: Side::East,
                        slot: 0,
                    },
                    BlockPin {
                        row: 1,
                        col: 1,
                        side: Side::West,
                        slot: 0,
                    },
                ],
            }],
        )
        .unwrap();
        let device = Device::new(ArchSpec::xilinx4000(2, 2, 4)).unwrap();
        let outcome = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        (device, circuit, outcome)
    }

    #[test]
    fn ascii_renders_every_channel() {
        let (device, _, outcome) = routed();
        let art = render_ascii_occupancy(&device, &outcome).unwrap();
        // 3 horizontal channel lines + 2 block rows.
        assert_eq!(art.lines().count(), 5);
        // Some channel is actually used.
        assert!(art.chars().any(|c| c.is_ascii_digit() && c != '0'));
    }

    #[test]
    fn svg_is_well_formed_and_nonempty() {
        let (device, circuit, outcome) = routed();
        let svg = render_svg(&device, &circuit, &outcome).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("viz"));
        assert_eq!(svg.matches("<rect").count(), 5); // canvas + 4 blocks
    }
}
