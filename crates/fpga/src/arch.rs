//! Symmetrical-array FPGA architecture parameters (paper §2 and §5).

use crate::FpgaError;

/// How the connection-block flexibility `F_c` scales with channel width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcSpec {
    /// `F_c = ⌈num/den · W⌉` — the Xilinx 3000 series uses `⌈0.60 · W⌉`.
    Fraction {
        /// Numerator of the fraction.
        num: usize,
        /// Denominator of the fraction.
        den: usize,
    },
    /// `F_c = W` (full) — the Xilinx 4000 series.
    Full,
}

impl FcSpec {
    /// Resolves the flexibility for a concrete channel width.
    #[must_use]
    pub fn resolve(self, w: usize) -> usize {
        match self {
            FcSpec::Fraction { num, den } => (num * w).div_ceil(den).clamp(1, w),
            FcSpec::Full => w,
        }
    }
}

/// The four sides of a logic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// Facing the horizontal channel above the block.
    North,
    /// Facing the vertical channel to the right.
    East,
    /// Facing the horizontal channel below.
    South,
    /// Facing the vertical channel to the left.
    West,
}

impl Side {
    /// All four sides in index order.
    pub const ALL: [Side; 4] = [Side::North, Side::East, Side::South, Side::West];

    /// Dense index 0..4 of this side.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Side::North => 0,
            Side::East => 1,
            Side::South => 2,
            Side::West => 3,
        }
    }

    /// The side with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[must_use]
    pub fn from_index(i: usize) -> Side {
        Side::ALL[i]
    }
}

/// Architecture of a symmetrical-array FPGA: an `rows × cols` array of
/// logic blocks surrounded by routing channels of `channel_width` tracks,
/// with switch blocks of flexibility `fs` and connection blocks of
/// flexibility `fc` (paper §2, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchSpec {
    /// Logic-block rows.
    pub rows: usize,
    /// Logic-block columns.
    pub cols: usize,
    /// Tracks per channel (`W`).
    pub channel_width: usize,
    /// Switch-block flexibility `F_s`: connections per channel-edge inside
    /// a switch block (3 = disjoint; the 3000 series uses 6).
    pub fs: usize,
    /// Connection-block flexibility `F_c`.
    pub fc: FcSpec,
    /// Logic-block pins per side available to the netlist.
    pub pins_per_side: usize,
}

impl ArchSpec {
    /// A Xilinx 3000-series style architecture: `F_s = 6`,
    /// `F_c = ⌈0.60 · W⌉` (paper Table 2; the CGE comparison setting).
    #[must_use]
    pub fn xilinx3000(rows: usize, cols: usize, channel_width: usize) -> ArchSpec {
        ArchSpec {
            rows,
            cols,
            channel_width,
            fs: 6,
            fc: FcSpec::Fraction { num: 3, den: 5 },
            pins_per_side: 2,
        }
    }

    /// A Xilinx 4000-series style architecture: `F_s = 3` (disjoint switch
    /// blocks, per Table 3's caption; the body text says `F_s = 4` — the
    /// caption value matches the SEGA/GBP literature), `F_c = W`.
    #[must_use]
    pub fn xilinx4000(rows: usize, cols: usize, channel_width: usize) -> ArchSpec {
        ArchSpec {
            rows,
            cols,
            channel_width,
            fs: 3,
            fc: FcSpec::Full,
            pins_per_side: 2,
        }
    }

    /// Returns a copy with a different channel width — the knob the
    /// minimum-channel-width search turns.
    #[must_use]
    pub fn with_channel_width(mut self, w: usize) -> ArchSpec {
        self.channel_width = w;
        self
    }

    /// The resolved connection-block flexibility for this width.
    #[must_use]
    pub fn fc_resolved(&self) -> usize {
        self.fc.resolve(self.channel_width)
    }

    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidArchitecture`] for zero dimensions, zero
    /// width, `fs < 3`, or zero pins.
    pub fn validate(&self) -> Result<(), FpgaError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(FpgaError::InvalidArchitecture(
                "array dimensions must be positive".into(),
            ));
        }
        if self.channel_width == 0 {
            return Err(FpgaError::InvalidArchitecture(
                "channel width must be positive".into(),
            ));
        }
        if self.fs < 3 {
            return Err(FpgaError::InvalidArchitecture(format!(
                "switch-block flexibility {} below the minimum of 3",
                self.fs
            )));
        }
        if self.pins_per_side == 0 {
            return Err(FpgaError::InvalidArchitecture(
                "blocks need at least one pin per side".into(),
            ));
        }
        Ok(())
    }

    /// Total logic blocks in the array.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Total netlist-visible pins in the array.
    #[must_use]
    pub fn pin_capacity(&self) -> usize {
        self.block_count() * 4 * self.pins_per_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_fraction_rounds_up() {
        let fc = FcSpec::Fraction { num: 3, den: 5 };
        assert_eq!(fc.resolve(10), 6);
        assert_eq!(fc.resolve(7), 5); // ceil(4.2)
        assert_eq!(fc.resolve(1), 1);
        assert_eq!(FcSpec::Full.resolve(9), 9);
    }

    #[test]
    fn presets_match_the_paper() {
        let x3 = ArchSpec::xilinx3000(12, 13, 10);
        assert_eq!(x3.fs, 6);
        assert_eq!(x3.fc_resolved(), 6); // ceil(0.6 * 10)
        let x4 = ArchSpec::xilinx4000(19, 17, 15);
        assert_eq!(x4.fs, 3);
        assert_eq!(x4.fc_resolved(), 15);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(ArchSpec::xilinx4000(0, 5, 4).validate().is_err());
        assert!(ArchSpec::xilinx4000(5, 5, 0).validate().is_err());
        let mut a = ArchSpec::xilinx4000(5, 5, 4);
        a.fs = 2;
        assert!(a.validate().is_err());
        a.fs = 3;
        a.pins_per_side = 0;
        assert!(a.validate().is_err());
        assert!(ArchSpec::xilinx4000(5, 5, 4).validate().is_ok());
    }

    #[test]
    fn sides_round_trip() {
        for (i, s) in Side::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Side::from_index(i), s);
        }
    }

    #[test]
    fn capacity_arithmetic() {
        let a = ArchSpec::xilinx4000(10, 9, 8);
        assert_eq!(a.block_count(), 90);
        assert_eq!(a.pin_capacity(), 90 * 8);
        assert_eq!(a.with_channel_width(12).channel_width, 12);
    }
}
