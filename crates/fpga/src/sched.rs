//! Dependency-DAG wavefront scheduling with commit/speculation overlap.
//!
//! The batch engine ([`parallel`](crate::parallel)) advances in lockstep
//! waves: a batch of bbox-disjoint nets is speculated, a barrier waits
//! for the slowest net, then every result is committed while the workers
//! sit idle. This module replaces the barrier with a *wavefront*:
//!
//! 1. A **conflict DAG** is built over the pass order: net `j` depends
//!    on every earlier net `i` whose bounding box interacts with `j`'s
//!    (see [`NetBox::interacts`]). Nets that cannot perturb each other
//!    carry no edge and may be in flight simultaneously.
//! 2. Ready nets (all DAG predecessors committed) are distributed to
//!    per-worker deques; an idle worker pops its own deque first, then
//!    the shared injector, then **steals** from the busiest peer.
//! 3. The committer — the calling thread — consumes speculation results
//!    strictly in pass order and applies them to a
//!    [`SharedPassGraph`] *while workers keep speculating against it*:
//!    a net whose predecessors have all committed becomes stealable the
//!    moment the last one lands, not when the whole wave drains.
//! 4. A speculation that raced with a conflicting commit (read-set
//!    check, below) is **requeued** against a fresh commit sequence
//!    instead of poisoning a wave or falling back to a sequential
//!    re-route.
//!
//! # Why the result is still bit-identical to `threads = 1`
//!
//! Commits are applied in pass order by a single thread, so the shared
//! graph passes through exactly the same sequence of states as under the
//! sequential engine. A speculation records the commit sequence `S` it
//! started from (*before* taking its read view, so `S` never overstates
//! what it saw) and every node its constructions read; at commit
//! position `p` it is accepted only if the nodes invalidated by commits
//! `S+1..=p` (recorded per commit) are disjoint from its read set, its
//! tree, and its candidate region. Disjointness means every location the
//! construction observed had the same value at sequence `S` and at `p` —
//! concurrent writes to *other* locations cannot tear an observed one —
//! so the deterministic construction would produce the identical tree on
//! the sequential graph at `p`. A rejected speculation is requeued at
//! the injector head; the committer is then parked at `p`, so the
//! re-speculation reads `commit_seq == p`, is fresh by construction, and
//! equals the sequential result outright — one retry always suffices.
//! Speculative *disconnection* verdicts are accepted even when stale:
//! within a pass the graph evolves monotonically (commits only remove
//! nodes and raise weights), so a net with no route at `S` has none at
//! any later sequence either.
//!
//! The DAG itself is advisory, not load-bearing: a conflict the bounding
//! boxes miss (congestion-weighted reads can spill past any fixed
//! margin) is still caught by the read-set check and costs one
//! re-speculation. That is what lets the box predicate use the *tight*
//! interaction gap — see [`interaction_gap`] — instead of a conservative
//! double margin.
//!
//! There is no deadlock: position `p`'s DAG predecessors are all earlier
//! positions, every one of which the committer commits before waiting on
//! `p`, so by the time the committer parks on `p` the net has been
//! released to the workers (or sits at the injector head, if requeued).
//! The committer only ever blocks on a net some worker holds *in
//! flight* — a queued net it claims and routes itself — and an
//! in-flight net always posts its result.
//!
//! # Work conservation
//!
//! Speculation is a bet that worker time overlaps commit time. The
//! scheduler refuses to lose that bet in three ways, none of which can
//! change the routed trees (which thread routes a net never changes
//! what the deterministic construction produces):
//!
//! * **Inline claims.** When the next-to-commit net is still sitting in
//!   a ready queue, the committer takes it and routes it itself rather
//!   than parking: over a private [`GraphOverlay`] while workers are
//!   mid-route (their reads must not see its transient pin masks), or
//!   — when *nothing* is in flight — directly on the shared writer
//!   with the workers briefly gated out, which costs exactly what the
//!   sequential engine pays. The gate is required for writer-direct
//!   routing because masking mutates the shared graph and restores it;
//!   unlike commit mutations those transients are recorded in no
//!   changed set, so a concurrent read-set check could not detect
//!   having observed them.
//! * **Adaptive suspension.** `spec_exit_misses` consecutive stale
//!   speculations with no ahead-of-frontier acceptance in between mean
//!   overlap is not paying (typically: the host's cores are
//!   oversubscribed, so worker time is stolen from the committer, and
//!   every stale route is burned twice). The workers are then parked
//!   and the committer drains the queues itself, until a probe window
//!   (every `spec_probe_period` commits) or a fresh ahead acceptance
//!   lifts the pause. Both thresholds are
//!   [`RouterConfig`](crate::router::RouterConfig) fields
//!   (`--spec-exit-misses` / `--spec-probe-period` on the CLI), with
//!   defaults [`SPEC_EXIT_MISSES`] and [`SPEC_PROBE_PERIOD`].
//! * **Solo mode.** On a host with a single hardware thread the bet is
//!   unwinnable by construction, so speculation never starts at all and
//!   the pass runs entirely through the writer-direct claim path —
//!   sequential speed plus a few queue operations.
//!
//! Claims (and with them suspension and solo mode) can be disabled via
//! [`RouterConfig::committer_claims`](crate::RouterConfig); the
//! adversarial stress tests use that to force every net through worker
//! speculation regardless of how the host schedules threads.
//!
//! A worker-side twin of the same idea: a worker that picks up the net
//! the committer is currently parked on (`base_seq == pos`) skips
//! read-set recording entirely — the next in-order commit is that very
//! net, so no mutation can land mid-route and the result is fresh by
//! construction.
//!
//! When the DAG exposes fewer ready nets than there are workers (a
//! serial chain, or the tail of a pass), a worker that takes the *last*
//! ready net grants itself an intra-net budget via
//! [`route_graph::par`], and the net's per-terminal Dijkstra runs fan
//! out across scoped threads instead of leaving cores idle — gated, like
//! speculation itself, on the host actually having idle cores to spend.

use std::collections::{HashSet, VecDeque};
use std::sync::{Condvar, Mutex};

use route_graph::{GraphOverlay, NodeId, OverlayArena, SharedPassGraph};
use steiner_route::RoutingTree;

use crate::netlist::Circuit;
use crate::router::{PassResult, Router};
use crate::telemetry::{CongestionSnapshot, PassTelemetry};
use crate::FpgaError;

/// Extra gap on top of the candidate margins when computing the
/// interaction distance: one block ring covering the congestion weight
/// refresh around a committed tree's channel positions.
pub(crate) const REGION_SLACK: usize = 1;

/// Intra-net Dijkstra fan-out only pays off on chip-scale graphs; below
/// this many live nodes the thread-spawn overhead dwarfs the runs.
const FANOUT_MIN_NODES: usize = 4096;

/// Default for [`RouterConfig::spec_exit_misses`](crate::router::RouterConfig::spec_exit_misses):
/// consecutive stale speculations (with no ahead-of-frontier acceptance
/// in between) after which the committer stops waking workers and routes
/// the frontier itself at sequential speed. Ahead-speculation that
/// always goes stale is pure waste: every stale route burns a core and
/// is redone anyway.
pub(crate) const SPEC_EXIT_MISSES: usize = 4;

/// Default for [`RouterConfig::spec_probe_period`](crate::router::RouterConfig::spec_probe_period):
/// while speculation is suspended, every this-many commits the workers
/// are woken for one probe window. If their speculations land fresh
/// (the workload or the host changed), speculation resumes; if they go
/// stale, the suspension stands. Bounds the cost of mistakenly leaving
/// speculation off at one wasted route per period.
pub(crate) const SPEC_PROBE_PERIOD: usize = 32;

/// A net's raw terminal bounding box in block coordinates. No margin is
/// applied to the box itself — margins enter once per *pair* through
/// [`NetBox::interacts`]'s `gap`, not once per box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NetBox {
    pub r0: usize,
    pub r1: usize,
    pub c0: usize,
    pub c1: usize,
}

impl NetBox {
    /// `true` if the two raw boxes come within `gap` blocks of each
    /// other on both axes — i.e. expanding *one* of them by `gap` would
    /// make them overlap. Edge-of-array clamping is irrelevant here
    /// because neither box has a margin applied.
    pub(crate) fn interacts(&self, other: &NetBox, gap: usize) -> bool {
        self.r0 <= other.r1.saturating_add(gap)
            && other.r0 <= self.r1.saturating_add(gap)
            && self.c0 <= other.c1.saturating_add(gap)
            && other.c0 <= self.c1.saturating_add(gap)
    }
}

/// The raw terminal bounding box of net `ni`.
pub(crate) fn net_box(circuit: &Circuit, ni: usize) -> NetBox {
    let pins = &circuit.nets()[ni].pins;
    let (mut r0, mut r1, mut c0, mut c1) = (usize::MAX, 0usize, usize::MAX, 0usize);
    for p in pins {
        r0 = r0.min(p.row);
        r1 = r1.max(p.row);
        c0 = c0.min(p.col);
        c1 = c1.max(p.col);
    }
    NetBox { r0, r1, c0, c1 }
}

/// The interaction distance between two raw net boxes at a given
/// candidate margin: a committed net's tree is pool-restricted to its
/// box expanded by `candidate_margin`, its weight refresh reaches one
/// further ring, and a reading net's checked observations live within
/// its own box expanded by `candidate_margin` plus that same slack ring
/// — so the tight pairwise distance is `2·candidate_margin` plus the
/// slack counted **once**.
///
/// The batch engine's original predicate expanded *both* boxes by
/// `candidate_margin + REGION_SLACK` before testing overlap, which
/// double-counts the shared slack and adds a ring of false dependencies
/// around every net (denser DAG, shorter batches). Any interaction the
/// tight gap misses is caught by the commit-time read-set check, which
/// is the load-bearing soundness net.
pub(crate) fn interaction_gap(candidate_margin: usize) -> usize {
    2 * candidate_margin + REGION_SLACK
}

/// One net's speculative outcome, tagged with the commit sequence its
/// worker observed before taking its read view.
struct Spec {
    result: Result<Option<RoutingTree>, FpgaError>,
    reads: Vec<NodeId>,
    base_seq: u64,
}

/// How the committer obtained the net at its commit position.
enum Claim {
    /// A worker's posted speculation, subject to the freshness check.
    Posted(Spec),
    /// Claimed from the ready queues while at least one worker is
    /// mid-route on a later net: routed inline over a private overlay so
    /// the transient pin masks stay invisible to the concurrent readers.
    Inline,
    /// Claimed from the ready queues with *no* worker mid-route: the
    /// workers are gated out and the net is routed directly on the
    /// shared writer — no overlay, no read set, pure sequential speed.
    Exclusive,
}

/// Scheduler state shared between the committer and the workers, guarded
/// by one mutex held only for O(1) queue operations — routing and
/// committing both happen outside it.
struct SchedState {
    /// Per-worker ready deques: owners pop the front, thieves pop the
    /// back of the longest deque.
    locals: Vec<VecDeque<usize>>,
    /// Requeued nets (pushed at the front); drained before stealing.
    injector: VecDeque<usize>,
    /// Speculation results, slotted by order position.
    results: Vec<Option<Spec>>,
    /// Nets currently being routed by workers. Zero is what licenses the
    /// committer's exclusive (writer-direct) claim mode.
    inflight: usize,
    /// Set while the committer routes a claimed net directly on the
    /// shared writer; workers must not start a route (the writer's
    /// transient pin masks would be visible to them, and — unlike commit
    /// mutations — they are not recorded in any changed set, so the
    /// read-set check could not catch the tear).
    gate: bool,
    /// Speculation suspended: ahead-of-frontier speculation has been
    /// going stale without a single acceptance, so routing nets on the
    /// workers is pure waste — they park and the committer drains the
    /// ready queues itself at sequential speed until a probe window or
    /// a fresh ahead acceptance lifts the pause.
    paused: bool,
    /// Set by the committer when the pass is over (success, failure, or
    /// error); workers exit at the next acquire.
    done: bool,
    steals: u64,
    stalls: u64,
}

impl SchedState {
    /// Total ready nets currently queued anywhere.
    fn queued(&self) -> usize {
        self.injector.len() + self.locals.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Removes `pos` from whichever queue holds it. `false` if `pos` is
    /// not queued (in flight, or its result already posted).
    fn unqueue(&mut self, pos: usize) -> bool {
        if let Some(i) = self.injector.iter().position(|&p| p == pos) {
            self.injector.remove(i);
            return true;
        }
        for deque in &mut self.locals {
            if let Some(i) = deque.iter().position(|&p| p == pos) {
                deque.remove(i);
                return true;
            }
        }
        false
    }
}


/// Locks the scheduler state, propagating a sibling's panic.
fn lock_state(state: &Mutex<SchedState>) -> std::sync::MutexGuard<'_, SchedState> {
    // lint: allow(panic-hygiene): a poisoned lock means a sibling thread already panicked; compounding the abort is the only sound continuation
    state.lock().expect("scheduler state poisoned")
}

/// Parks on `cv`, re-acquiring the scheduler state lock on wake.
fn park_on<'a>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, SchedState>,
) -> std::sync::MutexGuard<'a, SchedState> {
    // lint: allow(panic-hygiene): same poisoned-lock reasoning as lock_state
    cv.wait(guard).expect("scheduler state poisoned")
}

/// Routes one pass with the wavefront scheduler. Same contract as
/// [`route_pass_parallel`](crate::parallel::route_pass_parallel):
/// semantics identical to the sequential pass (net order, congestion
/// updates, failure reporting), with commit and speculation overlapped
/// instead of alternating.
pub(crate) fn route_pass_wavefront(
    router: &Router<'_>,
    circuit: &Circuit,
    order: &[usize],
    critical: &[bool],
    threads: usize,
    arenas: &mut [OverlayArena],
    pass: usize,
) -> Result<(PassResult, PassTelemetry), FpgaError> {
    let pass_started = if route_trace::enabled() {
        // lint: allow(determinism-wall-clock): gated on route_trace::enabled(); feeds the span timeline only, never routing state
        Some(std::time::Instant::now())
    } else {
        None
    };
    let device = router.device();
    let config = router.config();
    let n = order.len();
    let workers = threads.max(2).min(arenas.len().max(1)).min(n.max(1));
    let margin = config.candidate_margin + REGION_SLACK;
    // Adaptive-suspension tuning, promoted to RouterConfig. A zero
    // probe period would mean "never probe"; clamp to 1 so the modulo
    // below stays defined and suspension stays recoverable.
    let exit_misses = config.spec_exit_misses;
    let probe_period = config.spec_probe_period.max(1);
    let gap = interaction_gap(config.candidate_margin);
    let claims = config.committer_claims;

    // Fan-out spends *idle cores* inside one net; on a host without
    // them the scoped spawns are pure overhead on the critical path.
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fanout_ok =
        workers > 1 && host_cores > 1 && device.graph().live_node_count() >= FANOUT_MIN_NODES;
    // Same physics, applied to speculation itself: with a single
    // hardware thread nothing a worker routes can overlap with the
    // committer — every speculated net only delays the commit chain it
    // is stolen from. The pass then runs in pure committer-claim mode
    // (identical results, sequential speed) instead of paying the
    // speculation tax for no overlap. Disabled alongside claims so the
    // stress tests can force worker speculation anywhere.
    let solo = claims && host_cores <= 1;

    // --- Conflict DAG over the pass order ------------------------------
    let boxes: Vec<NetBox> = order.iter().map(|&ni| net_box(circuit, ni)).collect();
    let mut preds: Vec<usize> = vec![0; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for i in 0..j {
            if boxes[i].interacts(&boxes[j], gap) {
                preds[j] += 1;
                successors[i].push(j);
            }
        }
    }

    // --- Shared pass graph and scheduler state -------------------------
    let shared = SharedPassGraph::new(device.working_graph());
    if route_trace::enabled() {
        route_trace::count(route_trace::Counter::GraphSnapshotClones, 1);
    }
    let w = device.arch().channel_width as u64;
    let mut usage: Vec<u32> = vec![0; device.position_count()];
    let mut trees: Vec<Option<RoutingTree>> = vec![None; circuit.net_count()];
    let mut timing = PassTelemetry::default();

    // Seed the ready queues with every DAG root, round-robin across the
    // workers; `rr` keeps rotating as commits release successors.
    let mut rr = 0usize;
    let mut locals: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
    for (pos, &p) in preds.iter().enumerate() {
        if p == 0 {
            locals[rr % workers].push_back(pos);
            rr += 1;
        }
    }
    let state = Mutex::new(SchedState {
        locals,
        injector: VecDeque::new(),
        results: (0..n).map(|_| None).collect(),
        inflight: 0,
        gate: false,
        paused: solo,
        done: false,
        steals: 0,
        stalls: 0,
    });
    let work = Condvar::new(); // workers park here waiting for ready nets
    let arrived = Condvar::new(); // the committer parks here for results

    let parent_span = route_trace::current_span();

    // The scope returns the committer's verdict: Ok(None) = every net
    // committed, Ok(Some(ni)) = net ni unroutable at this width.
    let failed: Option<usize> = std::thread::scope(|scope| {
        for (worker, arena) in arenas[..workers].iter_mut().enumerate() {
            let state = &state;
            let work = &work;
            let arrived = &arrived;
            let shared = &shared;
            scope.spawn(move || {
                route_trace::adopt_parent(parent_span);
                // Per-worker occupancy tallies for the scheduler
                // timeline: time spent actually routing (parked time
                // excluded), nets speculated, steals, and stalls.
                let timeline = route_trace::enabled();
                let mut my_busy_ns = 0u64;
                let mut my_nets = 0usize;
                let mut my_steals = 0usize;
                let mut my_stalls = 0usize;
                loop {
                    // --- acquire a ready net ---------------------------
                    let (pos, stole, last_ready) = {
                        let mut st = lock_state(state);
                        let mut stole = false;
                        loop {
                            if st.done {
                                drop(st);
                                if timeline {
                                    route_trace::record_timeline(route_trace::TimelineRecord {
                                        pass,
                                        worker,
                                        role: "worker",
                                        busy_ns: my_busy_ns,
                                        nets: my_nets,
                                        steals: my_steals,
                                        stalls: my_stalls,
                                    });
                                }
                                route_trace::flush_thread();
                                return;
                            }
                            if st.gate || st.paused {
                                // Gated (the committer is routing on the
                                // writer) or paused (speculation is not
                                // paying): park without taking a net.
                                st.stalls += 1;
                                my_stalls += 1;
                                st = park_on(work, st);
                                continue;
                            }
                            let taken = if let Some(p) = st.locals[worker].pop_front() {
                                Some(p)
                            } else if let Some(p) = st.injector.pop_front() {
                                Some(p)
                            } else {
                                // Steal the tail of the longest peer deque.
                                let victim = (0..st.locals.len())
                                    .filter(|&v| v != worker && !st.locals[v].is_empty())
                                    .max_by_key(|&v| st.locals[v].len());
                                victim.map(|v| {
                                    st.steals += 1;
                                    stole = true;
                                    // lint: allow(panic-hygiene): victim deques were filtered to non-empty under this same lock
                                    st.locals[v].pop_back().expect("victim deque nonempty")
                                })
                            };
                            if let Some(p) = taken {
                                st.inflight += 1;
                                break (p, stole, st.queued() == 0);
                            }
                            st.stalls += 1;
                            my_stalls += 1;
                            st = park_on(work, st);
                        }
                    };
                    if stole {
                        my_steals += 1;
                        if route_trace::enabled() {
                            route_trace::count(route_trace::Counter::SchedSteals, 1);
                        }
                    }
                    // lint: allow(determinism-wall-clock): gated on the timeline flag; feeds worker-timeline telemetry only, never routing state
                    let route_started = timeline.then(std::time::Instant::now);

                    // --- speculate outside the lock --------------------
                    // The DAG ran dry behind this net: spend the idle
                    // cores *inside* it by fanning its per-terminal
                    // Dijkstra runs out across scoped threads.
                    let _fanout = (last_ready && fanout_ok)
                        .then(|| route_graph::par::FanoutGuard::new(workers));
                    // Sequence first, view second: commits landing in
                    // between make the freshness window conservative,
                    // never optimistic.
                    let base_seq = shared.commit_seq();
                    let view = shared.view();
                    let mut g = GraphOverlay::bind(&view, arena);
                    // Routing at the commit frontier (`base_seq == pos`)
                    // cannot race with anything: the next commit in order
                    // is this very net, which the committer is waiting
                    // for, so no mutation can land mid-route and no read
                    // set is needed — the result is fresh by construction.
                    let head = base_seq == pos as u64;
                    if !head {
                        route_graph::readset::begin();
                    }
                    let result = router.route_net(&mut g, circuit, order[pos], critical);
                    let reads = if head {
                        Vec::new()
                    } else {
                        route_graph::readset::take()
                    };

                    if let Some(started) = route_started {
                        my_busy_ns = my_busy_ns.saturating_add(
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        my_nets += 1;
                    }

                    let mut st = lock_state(state);
                    st.inflight -= 1;
                    st.results[pos] = Some(Spec {
                        result,
                        reads,
                        base_seq,
                    });
                    drop(st);
                    arrived.notify_all();
                }
            });
        }

        // --- the committer: strictly in order, concurrent with the -----
        // --- speculation above ------------------------------------------
        let mut writer = shared.writer();
        // For inline-claimed nets: the committer masks pins in its own
        // private overlay, never on the shared graph the workers read.
        let cview = shared.view();
        let mut committer_arena = OverlayArena::new();
        // changed_log[k] = nodes invalidated by the commit that published
        // sequence k + 1.
        let mut changed_log: Vec<HashSet<NodeId>> = Vec::with_capacity(n);
        let mut verdict: Result<Option<usize>, FpgaError> = Ok(None);
        // Adaptive speculation throttle (work conservation, part two):
        // while `speculating`, commits wake the workers and the pass
        // runs as a full wavefront. A run of `spec_exit_misses` stale
        // speculations with not one ahead-of-frontier acceptance means
        // overlap is not paying on this host right now — typically
        // because the cores are oversubscribed and speculation merely
        // steals time from the committer — so the wakeups stop and the
        // committer claims every net itself until a probe window (or a
        // fresh ahead acceptance) turns speculation back on. Pure
        // scheduling policy: which thread routes a net never changes
        // what it routes.
        let mut speculating = !solo;
        let mut stale_run = 0usize;
        'nets: for pos in 0..n {
            let ni = order[pos];
            // Commit-lag span: from "net is next to commit" to "commit
            // applied", covering the wait for its speculation and any
            // re-speculation rounds.
            let _commit_span =
                route_trace::span(route_trace::SpanKind::Commit, "commit", ni as u64);
            loop {
                // Take the net's posted speculation, or — work
                // conservation — claim it if no worker has started it
                // yet. A claim with workers mid-route on later nets
                // routes over a private overlay (their reads must not
                // see their pin masks); a claim with *nothing* in flight
                // gates the workers out and routes straight on the
                // writer, which is the sequential engine's exact cost.
                // The exclusive mode is what lets a host whose cores are
                // busy elsewhere degrade to sequential speed instead of
                // paying speculation overhead for no overlap.
                let taken = {
                    let mut st = lock_state(&state);
                    loop {
                        if let Some(spec) = st.results[pos].take() {
                            break Claim::Posted(spec);
                        }
                        if claims && st.unqueue(pos) {
                            if st.inflight == 0 {
                                st.gate = true;
                                break Claim::Exclusive;
                            }
                            break Claim::Inline;
                        }
                        st = park_on(&arrived, st);
                    }
                };
                let tree = match taken {
                    Claim::Posted(spec) => {
                        // Counted at consumption so aborted in-flight
                        // speculation never skews the accepted +
                        // respeculated == speculated invariant on
                        // completed passes.
                        timing.speculated += 1;
                        let tree = match spec.result {
                            Err(e) => {
                                verdict = Err(e);
                                break 'nets;
                            }
                            // Disconnected at any sequence of this pass
                            // means disconnected at every later one
                            // (monotone evolution), so a stale failure
                            // verdict is sound.
                            Ok(None) => {
                                verdict = Ok(Some(ni));
                                break 'nets;
                            }
                            Ok(Some(tree)) => tree,
                        };
                        // Fresh ⇔ nothing the construction observed was
                        // invalidated after its base sequence: its
                        // Dijkstra read set (which contains the tree —
                        // the tree check is kept as cheap defense in
                        // depth) and the candidate region whose pool
                        // liveness the Steiner template scanned outside
                        // Dijkstra. The window can span many commits, so
                        // the scan iterates each commit's (small)
                        // invalidated set against one observed-set index
                        // instead of re-walking the thousands-strong read
                        // set per window entry.
                        // lint: allow(panic-hygiene): base_seq was produced from a usize commit position
                        let base = usize::try_from(spec.base_seq).expect("commit seq fits in usize");
                        let fresh = base >= pos || {
                            let mut observed: HashSet<NodeId> =
                                spec.reads.iter().copied().collect();
                            observed.extend(tree.nodes());
                            observed.extend(router.region_nodes(circuit, ni, margin));
                            changed_log[base..pos]
                                .iter()
                                .all(|changed| changed.is_disjoint(&observed))
                        };
                        if !fresh {
                            // Requeue at the injector head: the committer
                            // stays parked at `pos`, so the retry reads
                            // commit_seq == pos and is fresh by
                            // construction (workers then skip read-set
                            // recording; a busy-worker retry may equally
                            // be claimed inline right here).
                            timing.respeculated += 1;
                            stale_run += 1;
                            if claims && stale_run >= exit_misses {
                                speculating = false;
                            }
                            if route_trace::enabled() {
                                route_trace::count(route_trace::Counter::SchedRespeculations, 1);
                            }
                            let mut st = lock_state(&state);
                            st.paused = !speculating;
                            st.injector.push_front(pos);
                            drop(st);
                            // Suspended: skip the wakeup and claim the
                            // retry right back at the top of the loop.
                            if speculating {
                                work.notify_one();
                            }
                            continue;
                        }
                        timing.accepted += 1;
                        if base < pos {
                            // An ahead-of-frontier speculation survived:
                            // overlap is paying here, keep (or resume)
                            // the full wavefront.
                            stale_run = 0;
                            if !speculating {
                                speculating = true;
                                let mut st = lock_state(&state);
                                st.paused = false;
                                drop(st);
                                work.notify_all();
                            }
                        }
                        if route_trace::enabled() {
                            route_trace::count(route_trace::Counter::ConflictAccepts, 1);
                        }
                        tree
                    }
                    Claim::Inline => {
                        // Inline route at the live commit frontier: no
                        // read set, no freshness check — nothing can
                        // commit while the committer itself is routing.
                        // The overlay keeps this net's pin masks private
                        // to the committer while workers read the shared
                        // graph underneath.
                        let mut g = GraphOverlay::bind(&cview, &mut committer_arena);
                        let result = router.route_net(&mut g, circuit, ni, critical);
                        match result {
                            Err(e) => {
                                verdict = Err(e);
                                break 'nets;
                            }
                            Ok(None) => {
                                verdict = Ok(Some(ni));
                                break 'nets;
                            }
                            Ok(Some(tree)) => tree,
                        }
                    }
                    Claim::Exclusive => {
                        // The gate is up and nothing is in flight, so no
                        // thread observes the graph until it reopens:
                        // route directly on the writer, exactly as the
                        // sequential engine would — masks land on the
                        // shared graph and are restored before anyone
                        // can look. This is the zero-overhead path.
                        let result = router.route_net(&mut writer, circuit, ni, critical);
                        {
                            let mut st = lock_state(&state);
                            st.gate = false;
                        }
                        // Reopen before the commit below: commit
                        // mutations are the ordinary, changed-set-
                        // recorded kind workers may race with. While
                        // speculation is suspended the wakeup is skipped
                        // — parked workers stay parked.
                        if speculating {
                            work.notify_all();
                        }
                        match result {
                            Err(e) => {
                                verdict = Err(e);
                                break 'nets;
                            }
                            Ok(None) => {
                                verdict = Ok(Some(ni));
                                break 'nets;
                            }
                            Ok(Some(tree)) => tree,
                        }
                    }
                };
                let mut changed: HashSet<NodeId> = HashSet::new();
                if let Err(e) =
                    router.commit(&mut writer, &mut usage, w, &tree, Some(&mut changed))
                {
                    verdict = Err(e);
                    break 'nets;
                }
                // Publish *after* the commit's mutations so a worker that
                // Acquire-reads pos + 1 observes all of them.
                writer.publish((pos + 1) as u64);
                let pristine = match RoutingTree::from_edges(device.graph(), tree.edges().to_vec())
                {
                    Ok(t) => t,
                    Err(e) => {
                        verdict = Err(e.into());
                        break 'nets;
                    }
                };
                trees[ni] = Some(pristine);
                changed_log.push(changed);
                // Release the nets this commit was gating — stealable
                // immediately, while we move on to the next position.
                let mut st = lock_state(&state);
                for &succ in &successors[pos] {
                    preds[succ] -= 1;
                    if preds[succ] == 0 {
                        st.locals[rr % workers].push_back(succ);
                        rr += 1;
                    }
                }
                // Probe windows keep a suspended scheduler honest: wake
                // the workers every `spec_probe_period` commits and let
                // their speculations prove (or disprove) that overlap
                // pays now. `stale_run` stays at its threshold, so the
                // first stale result of the window re-arms the pause
                // while a fresh ahead acceptance lifts it for good.
                let probe = !solo && !speculating && (pos + 1) % probe_period == 0;
                if probe {
                    st.paused = false;
                }
                drop(st);
                if speculating || probe {
                    work.notify_all();
                }
                continue 'nets;
            }
        }

        // Shut the workers down (success, failure, and error alike); the
        // scope joins them on exit.
        let mut st = lock_state(&state);
        st.done = true;
        timing.steals = usize::try_from(st.steals).unwrap_or(usize::MAX);
        timing.stalls = usize::try_from(st.stalls).unwrap_or(usize::MAX);
        drop(st);
        work.notify_all();
        verdict
    })?;

    if route_trace::enabled() && timing.stalls > 0 {
        route_trace::count(route_trace::Counter::SchedStalls, timing.stalls as u64);
    }
    if let Some(started) = pass_started {
        // The committer's timeline row: commit-chain occupancy for the
        // whole pass, with the committed-net count and the pass-wide
        // steal/stall totals (workers report their own shares above).
        route_trace::record_timeline(route_trace::TimelineRecord {
            pass,
            worker: workers,
            role: "committer",
            busy_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            nets: trees.iter().filter(|t| t.is_some()).count(),
            steals: timing.steals,
            stalls: timing.stalls,
        });
        route_trace::set_gauge(route_trace::Gauge::SchedWorkers, workers as u64);
    }
    timing.congestion = CongestionSnapshot::from_usage(0, w as usize, &usage);
    match failed {
        None => Ok((
            PassResult::Complete(router.finalize(circuit, trees)?),
            timing,
        )),
        Some(ni) => Ok((PassResult::Failed(ni), timing)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(r0: usize, r1: usize, c0: usize, c1: usize) -> NetBox {
        NetBox { r0, r1, c0, c1 }
    }

    #[test]
    fn interaction_gap_counts_the_slack_once() {
        // candidate_margin = 1: each net's footprint/region reaches past
        // its raw box, but the shared slack ring is one ring, not two.
        assert_eq!(interaction_gap(0), 1);
        assert_eq!(interaction_gap(1), 3);
        assert_eq!(interaction_gap(2), 5);
    }

    #[test]
    fn boxes_interact_exactly_up_to_the_gap() {
        let a = boxed(0, 0, 0, 0);
        for gap in 0..4usize {
            // b exactly `gap` rows past a's edge: still interacting.
            let at_gap = boxed(gap, gap, 0, 0);
            assert!(a.interacts(&at_gap, gap), "distance {gap} at gap {gap}");
            // One row further: independent.
            let beyond = boxed(gap + 1, gap + 1, 0, 0);
            assert!(
                !a.interacts(&beyond, gap),
                "distance {} at gap {gap}",
                gap + 1
            );
        }
    }

    #[test]
    fn the_old_double_margin_was_denser() {
        // Two single-block nets 4 rows apart, candidate_margin = 1. The
        // old predicate expanded both boxes by margin + slack = 2 before
        // testing overlap, so they were declared dependent. The tight
        // gap 2·1 + 1 = 3 keeps them independent.
        let a = boxed(0, 0, 0, 0);
        let b = boxed(4, 4, 0, 0);
        let expand = 1 + REGION_SLACK;
        let old_overlap = a.r0 <= b.r1 + expand + expand && b.r0 <= a.r1 + expand + expand;
        assert!(old_overlap, "the double-counted predicate links them");
        assert!(
            !a.interacts(&b, interaction_gap(1)),
            "the tight predicate keeps them independent"
        );
    }

    #[test]
    fn interaction_is_symmetric() {
        let a = boxed(0, 2, 0, 2);
        let b = boxed(4, 6, 1, 3);
        for gap in 0..4 {
            assert_eq!(a.interacts(&b, gap), b.interacts(&a, gap), "gap {gap}");
        }
    }

    #[test]
    fn column_separation_also_gates_interaction() {
        let a = boxed(0, 0, 0, 0);
        let b = boxed(0, 0, 4, 4);
        assert!(a.interacts(&b, 4));
        assert!(!a.interacts(&b, 3));
    }

    #[test]
    fn overlapping_boxes_always_interact() {
        let a = boxed(0, 3, 0, 3);
        let b = boxed(2, 5, 1, 4);
        assert!(a.interacts(&b, 0));
    }
}
