//! The detailed FPGA router of paper §5.
//!
//! The router operates directly on the device's routing-resource graph and
//! routes nets one at a time as whole multi-pin units (the property the
//! paper credits for its channel-width wins over CGE/SEGA/GBP). After each
//! net, edge weights are updated to reflect congestion and the net's
//! resources are removed so subsequent nets stay electrically disjoint. A
//! *move-to-front* ordering heuristic reacts to infeasibility: the failing
//! net is routed earlier in the next pass, and "typically only a few (i.e.,
//! less than five) such passes are required"; after `max_passes` (the
//! paper's feasibility threshold is 20) the circuit is declared unroutable
//! at this channel width.

use route_graph::{GraphError, GraphView, GraphViewMut, NodeId, OverlayArena, Weight};
use steiner_route::{
    idom_with_config, CandidatePool, Djka, Dom, Iterated, IteratedConfig, Kmb, Net,
    Pfa, RoutingTree, SteinerError, SteinerHeuristic, Zel,
};

use crate::device::Device;
use crate::netlist::Circuit;
use crate::FpgaError;

/// Which construction the router uses per net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteAlgorithm {
    /// Kou–Markowsky–Berman Steiner trees.
    Kmb,
    /// Iterated KMB (the paper's primary router configuration).
    Ikmb,
    /// Zelikovsky Steiner trees.
    Zel,
    /// Iterated ZEL.
    Izel,
    /// Dijkstra SPT pruned to the net.
    Djka,
    /// DOM spanning arborescences.
    Dom,
    /// Path-Folding Arborescences.
    Pfa,
    /// Iterated Dominance arborescences.
    Idom,
}

impl RouteAlgorithm {
    /// Display label matching the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RouteAlgorithm::Kmb => "KMB",
            RouteAlgorithm::Ikmb => "IKMB",
            RouteAlgorithm::Zel => "ZEL",
            RouteAlgorithm::Izel => "IZEL",
            RouteAlgorithm::Djka => "DJKA",
            RouteAlgorithm::Dom => "DOM",
            RouteAlgorithm::Pfa => "PFA",
            RouteAlgorithm::Idom => "IDOM",
        }
    }

    /// Instantiates the heuristic over any [`GraphView`]. Iterated
    /// algorithms receive the given candidate pool and run in screened
    /// mode (chip-scale graphs); ZEL and PFA restrict their Steiner-node
    /// scans to the same pool, so every construction's distance queries
    /// stay inside the net's spatial footprint and its recorded read set
    /// is bounded by the region instead of the whole chip.
    #[must_use]
    pub fn heuristic<G: GraphView>(self, pool: CandidatePool) -> Box<dyn SteinerHeuristic<G>> {
        let config = IteratedConfig {
            pool: pool.clone(),
            screened: true,
            ..IteratedConfig::default()
        };
        match self {
            RouteAlgorithm::Kmb => Box::new(Kmb::new()),
            RouteAlgorithm::Ikmb => Box::new(Iterated::with_config(Kmb::new(), config)),
            RouteAlgorithm::Zel => Box::new(Zel::with_pool(pool)),
            RouteAlgorithm::Izel => {
                Box::new(Iterated::with_config(Zel::with_pool(pool), config))
            }
            RouteAlgorithm::Djka => Box::new(Djka::new()),
            RouteAlgorithm::Dom => Box::new(Dom::new()),
            RouteAlgorithm::Pfa => Box::new(Pfa::with_pool(pool)),
            RouteAlgorithm::Idom => Box::new(idom_with_config(config)),
        }
    }

    /// `true` for the arborescence family (optimal source-sink paths).
    #[must_use]
    pub fn is_arborescence(self) -> bool {
        matches!(
            self,
            RouteAlgorithm::Djka | RouteAlgorithm::Dom | RouteAlgorithm::Pfa | RouteAlgorithm::Idom
        )
    }

    /// The paper's Table 1 roster, in table order.
    #[must_use]
    pub fn table1_roster() -> [RouteAlgorithm; 8] {
        [
            RouteAlgorithm::Kmb,
            RouteAlgorithm::Zel,
            RouteAlgorithm::Ikmb,
            RouteAlgorithm::Izel,
            RouteAlgorithm::Djka,
            RouteAlgorithm::Dom,
            RouteAlgorithm::Pfa,
            RouteAlgorithm::Idom,
        ]
    }
}

/// Which parallel engine drives multi-threaded passes.
///
/// Both engines produce trees and channel widths bit-identical to the
/// sequential router (`threads = 1`); they differ only in how worker
/// time is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Dependency-DAG wavefront ([`sched`](crate::sched)): ready nets
    /// flow through work-stealing deques and the in-order committer runs
    /// concurrently with ongoing speculation — no barriers.
    #[default]
    Wavefront,
    /// Lockstep batches ([`parallel`](crate::parallel)): speculate a
    /// bbox-disjoint batch, barrier, commit, repeat. Kept as a baseline
    /// and fallback.
    Batch,
}

impl SchedulerKind {
    /// Stable CLI/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Wavefront => "wavefront",
            SchedulerKind::Batch => "batch",
        }
    }
}

/// Which routing discipline resolves congestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteMode {
    /// The paper's sequential discipline: nets are routed one at a time,
    /// committed resources are removed so later nets stay disjoint, and
    /// move-to-front reacts to failures across passes. Parallelism comes
    /// from speculation ([`SchedulerKind`]).
    #[default]
    RipUp,
    /// Negotiated congestion (PathFinder, see
    /// [`pathfinder`](crate::pathfinder)): every iteration routes *all*
    /// nets independently against an immutable priced snapshot — trivially
    /// parallel, no conflict DAG — then a single-writer phase measures
    /// overuse, accumulates history costs, and reprices the snapshot.
    /// Converged when no routing resource is claimed by two nets.
    Pathfinder,
}

impl RouteMode {
    /// Stable CLI/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouteMode::RipUp => "ripup",
            RouteMode::Pathfinder => "pathfinder",
        }
    }
}

/// Router tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Per-net construction.
    pub algorithm: RouteAlgorithm,
    /// Which discipline resolves congestion: sequential rip-up (the
    /// paper's router, the default) or negotiated congestion.
    pub mode: RouteMode,
    /// Negotiated-congestion iteration budget ([`RouteMode::Pathfinder`]
    /// only): route-all/reprice rounds before the width is declared
    /// unroutable. Plays the role `max_passes` plays for rip-up.
    pub pf_max_iterations: usize,
    /// Negotiated-congestion present-cost coefficient, in milli-units of
    /// weight added to a node's incident edges per net that occupied the
    /// node last iteration ([`RouteMode::Pathfinder`] only).
    pub pf_present_milli: u64,
    /// Negotiated-congestion history-cost coefficient, in milli-units
    /// accumulated per unit of overuse per iteration on nodes that end an
    /// iteration over capacity ([`RouteMode::Pathfinder`] only).
    pub pf_history_milli: u64,
    /// Selective dirty-net negotiation ([`RouteMode::Pathfinder`] only):
    /// after each cost update, only nets whose committed route touches an
    /// over-capacity node (or whose path cost went stale past
    /// [`pf_stale_slack_milli`](RouterConfig::pf_stale_slack_milli)) rip
    /// up and reroute; every other net keeps its tree and its usage stays
    /// in the tally. The cost update also switches from the full
    /// `reprice_edges` sweep to a delta sweep over nodes whose pressure
    /// changed. Iteration work then scales with remaining congestion
    /// instead of circuit size. Off by default; results may legitimately
    /// differ from full-reroute mode (different, equally valid routings)
    /// but stay bit-identical across thread counts and schedulers.
    pub pf_selective: bool,
    /// Staleness slack for selective mode, in milli-units: a clean net is
    /// also marked dirty when the history cost summed over its own tree's
    /// segment nodes has grown by more than this slack since the net was
    /// last routed — its path price drifted even though it is not itself
    /// in conflict. `u64::MAX` disables staleness reselection entirely.
    pub pf_stale_slack_milli: u64,
    /// Optional ParaLarH-style multiplicative history decay, in
    /// milli-units removed per iteration ([`RouteMode::Pathfinder`]
    /// only): before accumulating this iteration's increments, every
    /// node's history is scaled by `(1000 - decay)/1000`. `0` (the
    /// default) skips the decay sweep entirely and is bit-identical to
    /// the undecayed router. Values are clamped to `1000`.
    pub pf_history_decay_milli: u64,
    /// Feasibility threshold: passes before declaring the width unroutable
    /// (the paper arbitrarily sets 20).
    pub max_passes: usize,
    /// Congestion pressure: an edge touching a channel position with
    /// occupancy `u` of `W` tracks is weighted
    /// `1 + alpha_milli·u/(1000·W)` units.
    pub congestion_alpha_milli: u64,
    /// How many blocks beyond the net's bounding box the Steiner candidate
    /// pool extends (iterated algorithms only).
    pub candidate_margin: usize,
    /// Promote the failing net to the front of the order before the next
    /// pass (the paper's ordering heuristic). Disabling it retries the
    /// same static order every pass — the ablation baseline.
    pub move_to_front: bool,
    /// Construction for nets flagged *critical* in
    /// [`route_classified`](Router::route_classified); `None` routes every
    /// net with [`algorithm`](RouterConfig::algorithm). The paper's
    /// intended deployment is a Steiner construction here (IKMB) with an
    /// arborescence (PFA/IDOM) for the critical nets.
    pub critical_algorithm: Option<RouteAlgorithm>,
    /// Worker threads for the batched parallel routing engine
    /// ([`parallel`](crate::parallel)). `1` (the default) takes the
    /// original strictly-sequential path; `>= 2` speculatively routes
    /// batches of spatially disjoint nets concurrently and repairs
    /// conflicts at commit time, producing identical routed trees and
    /// channel widths under a fixed seed. `0` selects automatically per
    /// circuit via [`auto_thread_count`]: small circuits route
    /// sequentially (speculation overhead dominates), large ones use
    /// every available core.
    pub threads: usize,
    /// Which parallel engine drives multi-threaded passes; ignored when
    /// the pass runs sequentially.
    pub scheduler: SchedulerKind,
    /// Work conservation in the wavefront scheduler: when the
    /// next-to-commit net has not been picked up by any worker, the
    /// committer claims it and routes it itself instead of waiting —
    /// over a private overlay while workers are mid-route, or directly
    /// on the shared graph (workers gated out, pure sequential speed)
    /// when nothing is in flight. Results are bit-identical either way;
    /// disabling it forces every net through worker speculation, which
    /// the adversarial stress tests use to exercise the conflict
    /// detector regardless of how the host schedules threads.
    pub committer_claims: bool,
    /// Wavefront adaptive suspension: consecutive stale speculations
    /// (with no ahead-of-frontier acceptance in between) after which
    /// worker speculation is suspended and the committer drains the
    /// ready queues at sequential speed. Lower values bail out of
    /// unprofitable overlap sooner; higher values tolerate longer
    /// stale streaks on bursty hosts. Ignored by the batch scheduler
    /// and sequential passes.
    pub spec_exit_misses: usize,
    /// Wavefront probe cadence while speculation is suspended: every
    /// this-many commits the workers get one probe window to show that
    /// overlap pays again. `0` is clamped to `1` (probe every commit).
    /// Ignored by the batch scheduler and sequential passes.
    pub spec_probe_period: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            algorithm: RouteAlgorithm::Ikmb,
            mode: RouteMode::default(),
            pf_max_iterations: 50,
            pf_present_milli: 2000,
            pf_history_milli: 1000,
            pf_selective: false,
            pf_stale_slack_milli: 8000,
            pf_history_decay_milli: 0,
            max_passes: 20,
            congestion_alpha_milli: 1500,
            candidate_margin: 1,
            move_to_front: true,
            critical_algorithm: None,
            threads: 1,
            scheduler: SchedulerKind::default(),
            committer_claims: true,
            spec_exit_misses: crate::sched::SPEC_EXIT_MISSES,
            spec_probe_period: crate::sched::SPEC_PROBE_PERIOD,
        }
    }
}

impl RouterConfig {
    /// Default configuration with a chosen algorithm.
    #[must_use]
    pub fn with_algorithm(algorithm: RouteAlgorithm) -> RouterConfig {
        RouterConfig {
            algorithm,
            ..RouterConfig::default()
        }
    }
}

/// A complete routing of a circuit.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// One tree per net, in circuit net order.
    pub trees: Vec<RoutingTree>,
    /// Passes used (1 = first attempt succeeded).
    pub passes: usize,
    /// Sum of all tree costs.
    pub total_wirelength: Weight,
    /// Per-net maximum source-sink pathlength within the tree.
    pub max_pathlengths: Vec<Weight>,
    /// Per-pass telemetry — wall-clock, parallel-engine batching
    /// counters, and end-of-pass congestion snapshots; one entry per
    /// executed pass (failed passes included), so benches can compare the
    /// sequential and parallel engines on equal footing.
    pub telemetry: crate::telemetry::RouteTelemetry,
}

impl RouteOutcome {
    /// The largest per-net maximum pathlength across the circuit.
    #[must_use]
    pub fn critical_pathlength(&self) -> Weight {
        self.max_pathlengths
            .iter()
            .copied()
            .max()
            .unwrap_or(Weight::ZERO)
    }

    /// Sum of per-net maximum pathlengths (the aggregate Table 5 compares).
    #[must_use]
    pub fn total_max_pathlength(&self) -> Weight {
        self.max_pathlengths.iter().copied().sum()
    }
}

/// The detailed router, bound to a device.
///
/// # Example
///
/// ```no_run
/// use fpga_device::{ArchSpec, Device, Router, RouterConfig, RouteAlgorithm};
/// use fpga_device::synth::{synthesize, xc4000_profiles};
///
/// # fn main() -> Result<(), fpga_device::FpgaError> {
/// let profile = xc4000_profiles()[2]; // term1
/// let circuit = synthesize(&profile, 2, 42)?;
/// let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, 9))?;
/// let router = Router::new(&device, RouterConfig::with_algorithm(RouteAlgorithm::Ikmb));
/// let outcome = router.route(&circuit)?;
/// println!("routed in {} passes, wirelength {}", outcome.passes, outcome.total_wirelength);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Router<'d> {
    device: &'d Device,
    config: RouterConfig,
}

impl<'d> Router<'d> {
    /// Binds a router to a device.
    #[must_use]
    pub fn new(device: &'d Device, config: RouterConfig) -> Router<'d> {
        Router { device, config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes every net of `circuit`, or reports the width unroutable.
    ///
    /// # Errors
    ///
    /// * [`FpgaError::CircuitMismatch`] if the circuit does not fit the
    ///   device;
    /// * [`FpgaError::Unroutable`] if `max_passes` passes end with a failed
    ///   net;
    /// * [`FpgaError::Steiner`] for internal construction failures.
    pub fn route(&self, circuit: &Circuit) -> Result<RouteOutcome, FpgaError> {
        self.route_classified(circuit, &vec![false; circuit.net_count()])
    }

    /// Routes the circuit with per-net criticality: nets with
    /// `critical[ni] == true` use
    /// [`critical_algorithm`](RouterConfig::critical_algorithm) (when set)
    /// and are routed *before* non-critical nets of the same size, so they
    /// see the least-congested fabric (paper §2: critical nets get "a
    /// higher routing priority").
    ///
    /// # Errors
    ///
    /// As [`route`](Router::route), plus [`FpgaError::CircuitMismatch`] if
    /// `critical` is not one flag per net.
    pub fn route_classified(
        &self,
        circuit: &Circuit,
        critical: &[bool],
    ) -> Result<RouteOutcome, FpgaError> {
        circuit.validate_against(self.device.arch())?;
        if critical.len() != circuit.net_count() {
            return Err(FpgaError::CircuitMismatch(format!(
                "{} criticality flags for {} nets",
                critical.len(),
                circuit.net_count()
            )));
        }
        // Initial order: critical nets first, then large nets (they are
        // hardest to place); move-to-front reacts to failures.
        let mut order: Vec<usize> = (0..circuit.net_count()).collect();
        order.sort_by_key(|&ni| {
            (
                !critical[ni],
                std::cmp::Reverse(circuit.nets()[ni].pin_count()),
            )
        });
        let threads = self.resolve_threads(circuit);
        // One delta arena per worker, allocated once and rebound every
        // batch wave — the per-wave snapshot cost is an O(1) generation
        // bump instead of a full graph clone per worker.
        let mut arenas: Vec<OverlayArena> = if threads > 1 {
            (0..threads).map(|_| OverlayArena::new()).collect()
        } else {
            Vec::new()
        };
        if self.config.mode == RouteMode::Pathfinder {
            return crate::pathfinder::route_negotiated(self, circuit, critical, threads, &mut arenas);
        }
        // Inverse of `order` so a failure promotes in O(pos) rotation
        // instead of an O(n) scan + remove + insert per failed pass.
        let mut index_of = vec![0usize; order.len()];
        for (i, &ni) in order.iter().enumerate() {
            index_of[ni] = i;
        }
        let mut last_failure = 0usize;
        let mut passes_telemetry: Vec<crate::telemetry::PassTelemetry> = Vec::new();
        for pass in 1..=self.config.max_passes.max(1) {
            let started = std::time::Instant::now();
            let (result, mut timing) = {
                let _pass_span = route_trace::span(route_trace::SpanKind::Pass, "pass", pass as u64);
                if threads > 1 {
                    match self.config.scheduler {
                        SchedulerKind::Wavefront => crate::sched::route_pass_wavefront(
                            self,
                            circuit,
                            &order,
                            critical,
                            threads,
                            &mut arenas,
                            pass,
                        )?,
                        SchedulerKind::Batch => crate::parallel::route_pass_parallel(
                            self,
                            circuit,
                            &order,
                            critical,
                            threads,
                            &mut arenas,
                            pass,
                        )?,
                    }
                } else {
                    self.route_pass(circuit, &order, critical)?
                }
            };
            timing.pass = pass;
            timing.elapsed = started.elapsed();
            timing.congestion.pass = pass;
            route_trace::record_snapshot(timing.congestion.clone());
            passes_telemetry.push(timing);
            match result {
                PassResult::Complete(mut outcome) => {
                    outcome.passes = pass;
                    outcome.telemetry =
                        crate::telemetry::RouteTelemetry { passes: passes_telemetry };
                    return Ok(outcome);
                }
                PassResult::Failed(ni) => {
                    last_failure = ni;
                    if self.config.move_to_front {
                        promote_to_front(&mut order, &mut index_of, ni);
                    }
                }
            }
        }
        Err(FpgaError::Unroutable {
            channel_width: self.device.arch().channel_width,
            passes: self.config.max_passes,
            failed_net: last_failure,
            overcapacity: Vec::new(),
        })
    }

    /// The device this router is bound to.
    pub(crate) fn device(&self) -> &Device {
        self.device
    }

    /// Resolves [`RouterConfig::threads`] for this circuit: `0` asks
    /// [`auto_thread_count`] with the machine's available parallelism,
    /// any other value is taken literally.
    fn resolve_threads(&self, circuit: &Circuit) -> usize {
        match self.config.threads {
            0 => {
                let available = std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1);
                let total_pins: usize = circuit.nets().iter().map(|n| n.pin_count()).sum();
                auto_thread_count(
                    available,
                    self.device.graph().live_node_count(),
                    circuit.net_count(),
                    total_pins,
                )
            }
            n => n,
        }
    }

    fn route_pass(
        &self,
        circuit: &Circuit,
        order: &[usize],
        critical: &[bool],
    ) -> Result<(PassResult, crate::telemetry::PassTelemetry), FpgaError> {
        let mut g = self.device.working_graph();
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::GraphSnapshotClones, 1);
        }
        let w = self.device.arch().channel_width as u64;
        let mut usage: Vec<u32> = vec![0; self.device.position_count()];
        let mut trees: Vec<Option<RoutingTree>> = vec![None; circuit.net_count()];
        let mut timing = crate::telemetry::PassTelemetry::default();
        for &ni in order {
            match self.route_net(&mut g, circuit, ni, critical)? {
                Some(tree) => {
                    self.commit(&mut g, &mut usage, w, &tree, None)?;
                    // Report against the pristine device graph so costs
                    // measure physical wire, not congestion-inflated
                    // weights.
                    let tree =
                        RoutingTree::from_edges(self.device.graph(), tree.edges().to_vec())?;
                    trees[ni] = Some(tree);
                }
                None => {
                    timing.congestion =
                        crate::telemetry::CongestionSnapshot::from_usage(0, w as usize, &usage);
                    return Ok((PassResult::Failed(ni), timing));
                }
            }
        }
        timing.congestion =
            crate::telemetry::CongestionSnapshot::from_usage(0, w as usize, &usage);
        Ok((PassResult::Complete(self.finalize(circuit, trees)?), timing))
    }

    /// Routes a single net against the current pass graph: masks foreign
    /// pins, runs the configured construction, and restores the masked
    /// pins. `Ok(None)` reports an unroutable (disconnected) net; the
    /// graph is left exactly as it was on entry either way.
    pub(crate) fn route_net<G: GraphViewMut>(
        &self,
        g: &mut G,
        circuit: &Circuit,
        ni: usize,
        critical: &[bool],
    ) -> Result<Option<RoutingTree>, FpgaError> {
        let _net_span = route_trace::span(route_trace::SpanKind::Net, "net", ni as u64);
        let net_started = if route_trace::enabled() {
            // lint: allow(determinism-wall-clock): gated on route_trace::enabled(); feeds the span timeline only, never routing state
            Some(std::time::Instant::now())
        } else {
            None
        };
        let terminals = circuit.net_terminals(self.device, ni)?;
        let masked = mask_foreign_pins(g, self.device, &terminals)?;
        let net = Net::from_terminals(terminals)?;
        let algorithm = match (critical[ni], self.config.critical_algorithm) {
            (true, Some(algo)) => algo,
            _ => self.config.algorithm,
        };
        let heuristic = algorithm.heuristic(self.candidate_pool(circuit, ni));
        let result = {
            let _phase_span =
                route_trace::span(route_trace::SpanKind::Phase, algorithm.label(), 0);
            heuristic.construct(g, &net)
        };
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::NetsRouted, 1);
        }
        if let Some(started) = net_started {
            route_trace::record_duration(
                route_trace::Metric::NetRouteNs,
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        unmask_pins(g, &masked)?;
        match result {
            Ok(tree) => Ok(Some(tree)),
            Err(SteinerError::Graph(GraphError::Disconnected { .. })) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Assembles the final [`RouteOutcome`] once every net has a tree.
    pub(crate) fn finalize(
        &self,
        circuit: &Circuit,
        trees: Vec<Option<RoutingTree>>,
    ) -> Result<RouteOutcome, FpgaError> {
        let trees: Vec<RoutingTree> = trees
            .into_iter()
            // lint: allow(panic-hygiene): finish() is only reached once every net routed; a hole is a router bug worth aborting on
            .map(|t| t.expect("all nets routed"))
            .collect();
        let mut max_pathlengths = Vec::with_capacity(trees.len());
        for (ni, tree) in trees.iter().enumerate() {
            let terminals = circuit.net_terminals(self.device, ni)?;
            let net = Net::from_terminals(terminals)?;
            max_pathlengths.push(tree.max_pathlength(&net)?);
        }
        let total_wirelength = trees.iter().map(RoutingTree::cost).sum();
        Ok(RouteOutcome {
            trees,
            passes: 0, // filled by route()
            total_wirelength,
            max_pathlengths,
            telemetry: crate::telemetry::RouteTelemetry::default(), // filled by route()
        })
    }

    /// Commits a routed tree: bumps channel occupancy, removes the tree's
    /// resources, and refreshes congestion weights around the touched
    /// channel positions.
    ///
    /// When `changed` is given, every node the commit invalidates for
    /// concurrent speculation — removed tree nodes plus the segment nodes
    /// whose incident edge weights were refreshed — is recorded there, so
    /// the parallel engine can detect stale speculative routes.
    ///
    /// Occupancy counters and congestion weights use saturating
    /// arithmetic: pathological `congestion_alpha_milli` values or
    /// long-running usage can otherwise overflow `alpha · u` and panic
    /// mid-pass.
    pub(crate) fn commit<G: GraphViewMut>(
        &self,
        g: &mut G,
        usage: &mut [u32],
        w: u64,
        tree: &RoutingTree,
        mut changed: Option<&mut std::collections::HashSet<NodeId>>,
    ) -> Result<(), FpgaError> {
        let commit_started = if route_trace::enabled() {
            // lint: allow(determinism-wall-clock): gated on route_trace::enabled(); feeds the span timeline only, never routing state
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut touched: Vec<usize> = Vec::new();
        let nodes: Vec<NodeId> = tree.nodes().collect();
        for &v in &nodes {
            if let Some(pos) = self.device.segment_position(v) {
                usage[pos] = usage[pos].saturating_add(1);
                touched.push(pos);
            }
        }
        for &v in &nodes {
            g.remove_node(v)?;
            if let Some(set) = changed.as_deref_mut() {
                set.insert(v);
            }
        }
        // Refresh weights of live edges around congested positions.
        touched.sort_unstable();
        touched.dedup();
        let alpha = self.config.congestion_alpha_milli;
        for &pos in &touched {
            for v in self.device.segment_nodes_at(pos) {
                if !g.is_node_live(v) {
                    continue;
                }
                if let Some(set) = changed.as_deref_mut() {
                    set.insert(v);
                }
                let edges: Vec<_> = g.neighbors(v).map(|(_, e, _)| e).collect();
                for e in edges {
                    let (a, b) = g.endpoints(e)?;
                    let occ = |n: NodeId| {
                        self.device
                            .segment_position(n)
                            .map_or(0, |p| usage[p]) as u64
                    };
                    let u = occ(a).max(occ(b));
                    let pressure = Weight::from_milli(alpha.saturating_mul(u) / w.max(1));
                    g.set_weight(e, Weight::UNIT.saturating_add(pressure))?;
                }
            }
        }
        if let Some(started) = commit_started {
            route_trace::record_duration(
                route_trace::Metric::CommitApplyNs,
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        Ok(())
    }

    /// Candidate pool for iterated algorithms: every segment within the
    /// net's block bounding box, expanded by the configured margin.
    fn candidate_pool(&self, circuit: &Circuit, ni: usize) -> CandidatePool {
        CandidatePool::Explicit(self.region_nodes(circuit, ni, self.config.candidate_margin))
    }

    /// Every segment node within the net's block bounding box expanded by
    /// `margin` blocks — the net's spatial footprint. Used both as the
    /// Steiner candidate pool and (with a wider margin) as the parallel
    /// engine's interaction region for batching and conflict detection.
    pub(crate) fn region_nodes(
        &self,
        circuit: &Circuit,
        ni: usize,
        margin: usize,
    ) -> Vec<NodeId> {
        let arch = self.device.arch();
        let pins = &circuit.nets()[ni].pins;
        let (mut r0, mut r1, mut c0, mut c1) = (usize::MAX, 0usize, usize::MAX, 0usize);
        for p in pins {
            r0 = r0.min(p.row);
            r1 = r1.max(p.row);
            c0 = c0.min(p.col);
            c1 = c1.max(p.col);
        }
        let r0 = r0.saturating_sub(margin);
        let c0 = c0.saturating_sub(margin);
        let r1 = (r1 + margin).min(arch.rows - 1);
        let c1 = (c1 + margin).min(arch.cols - 1);
        let mut nodes: Vec<NodeId> = Vec::new();
        // Horizontal channels r0..=r1+1, segments c0..=c1.
        let h_positions = (arch.rows + 1) * arch.cols;
        for ch in r0..=(r1 + 1) {
            for seg in c0..=c1 {
                nodes.extend(self.device.segment_nodes_at(ch * arch.cols + seg));
            }
        }
        // Vertical channels c0..=c1+1, segments r0..=r1.
        for ch in c0..=(c1 + 1) {
            for seg in r0..=r1 {
                nodes.extend(
                    self.device
                        .segment_nodes_at(h_positions + ch * arch.rows + seg),
                );
            }
        }
        nodes
    }
}

pub(crate) enum PassResult {
    Complete(RouteOutcome),
    Failed(usize),
}

/// Moves net `ni` to the front of `order`, keeping `index_of` (the
/// inverse permutation, `index_of[order[i]] == i`) consistent.
///
/// Equivalent to the old `position() + remove + insert(0, ..)` but with
/// no O(n) scan: the position comes from the inverse map and the shift is
/// a single `rotate_right` over the affected prefix. A net already at the
/// front is a no-op (the old code still churned the whole vector).
pub(crate) fn promote_to_front(order: &mut [usize], index_of: &mut [usize], ni: usize) {
    let pos = index_of[ni];
    debug_assert_eq!(order[pos], ni, "index_of out of sync with order");
    if pos == 0 {
        return;
    }
    order[..=pos].rotate_right(1);
    for (i, &n) in order[..=pos].iter().enumerate() {
        index_of[n] = i;
    }
}

/// Picks a worker count for `threads = 0` (automatic) from the circuit's
/// shape. Routing stays sequential when:
///
/// * there are too few nets to expose inter-net parallelism (fewer
///   than 8), or
/// * the routing graph is so small (under 2000 live nodes) that
///   speculation bookkeeping outweighs the snapshot savings, or
/// * the circuit is a **few-large-nets** shape — fewer than 32 nets
///   averaging 8+ pins each. High-fan-in nets have sprawling bounding
///   boxes, so the conflict DAG degenerates toward a chain and
///   speculation mostly re-speculates; the per-net Dijkstra fan-out
///   inside the sequential-ish schedule is then the better use of
///   cores, not inter-net speculation.
///
/// Otherwise every available core is used. Pure in its arguments so the
/// policy is unit-testable without a device.
#[must_use]
pub fn auto_thread_count(
    available: usize,
    live_nodes: usize,
    nets: usize,
    total_pins: usize,
) -> usize {
    const MIN_NETS: usize = 8;
    const MIN_LIVE_NODES: usize = 2000;
    const LARGE_NET_MIN_NETS: usize = 32;
    const LARGE_NET_AVG_PINS: usize = 8;
    if nets < MIN_NETS || live_nodes < MIN_LIVE_NODES {
        return 1;
    }
    // avg pins >= LARGE_NET_AVG_PINS, computed without division.
    if nets < LARGE_NET_MIN_NETS && total_pins >= LARGE_NET_AVG_PINS * nets {
        return 1;
    }
    available.max(1)
}

/// Temporarily removes every logic-block pin that does not belong to the
/// net being routed, so no route can pass *through* a foreign pin (a pin
/// cannot electrically join two channel tracks). Returns the masked pins
/// for restoration after the net is handled.
pub(crate) fn mask_foreign_pins<G: GraphViewMut>(
    g: &mut G,
    device: &Device,
    keep: &[NodeId],
) -> Result<Vec<NodeId>, FpgaError> {
    let mut masked = Vec::new();
    for pin in device.pin_nodes() {
        if g.is_node_live(pin) && !keep.contains(&pin) {
            g.remove_node(pin)?;
            masked.push(pin);
        }
    }
    Ok(masked)
}

/// Restores pins hidden by [`mask_foreign_pins`].
pub(crate) fn unmask_pins<G: GraphViewMut>(g: &mut G, masked: &[NodeId]) -> Result<(), FpgaError> {
    for &pin in masked {
        g.restore_node(pin)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchSpec, Side};
    use crate::netlist::{BlockPin, CircuitNet};

    fn pin(row: usize, col: usize, side: Side, slot: usize) -> BlockPin {
        BlockPin {
            row,
            col,
            side,
            slot,
        }
    }

    fn small_circuit() -> Circuit {
        Circuit::new(
            "small",
            3,
            3,
            vec![
                CircuitNet {
                    pins: vec![
                        pin(0, 0, Side::East, 0),
                        pin(2, 2, Side::West, 0),
                        pin(0, 2, Side::South, 0),
                    ],
                },
                CircuitNet {
                    pins: vec![pin(1, 0, Side::North, 0), pin(1, 2, Side::North, 0)],
                },
                CircuitNet {
                    pins: vec![pin(2, 0, Side::East, 1), pin(0, 1, Side::West, 1)],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn routes_a_small_circuit_with_every_algorithm() {
        let circuit = small_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 5)).unwrap();
        for algo in RouteAlgorithm::table1_roster() {
            let router = Router::new(&device, RouterConfig::with_algorithm(algo));
            let outcome = router
                .route(&circuit)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
            assert_eq!(outcome.trees.len(), 3, "{}", algo.label());
            assert!(outcome.total_wirelength > Weight::ZERO);
        }
    }

    #[test]
    fn routed_nets_are_electrically_disjoint() {
        let circuit = small_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 5)).unwrap();
        let router = Router::new(&device, RouterConfig::default());
        let outcome = router.route(&circuit).unwrap();
        let mut seen = std::collections::HashSet::new();
        for tree in &outcome.trees {
            for v in tree.nodes() {
                assert!(seen.insert(v), "resource {v} shared between nets");
            }
        }
    }

    #[test]
    fn each_tree_spans_its_net() {
        let circuit = small_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 5)).unwrap();
        let router = Router::new(&device, RouterConfig::default());
        let outcome = router.route(&circuit).unwrap();
        for (ni, tree) in outcome.trees.iter().enumerate() {
            let terminals = circuit.net_terminals(&device, ni).unwrap();
            let net = Net::from_terminals(terminals).unwrap();
            assert!(tree.spans(&net), "net {ni}");
        }
    }

    #[test]
    fn too_narrow_width_is_unroutable() {
        // Nine nets competing through a 1-track 2×2 device cannot all fit.
        let mut nets = Vec::new();
        for slot in 0..2 {
            for (a, b) in [
                ((0usize, 0usize), (1usize, 1usize)),
                ((0, 1), (1, 0)),
            ] {
                nets.push(CircuitNet {
                    pins: vec![
                        pin(a.0, a.1, Side::East, slot),
                        pin(b.0, b.1, Side::West, slot),
                    ],
                });
            }
        }
        let circuit = Circuit::new("dense", 2, 2, nets).unwrap();
        let device = Device::new(ArchSpec::xilinx4000(2, 2, 1)).unwrap();
        let router = Router::new(
            &device,
            RouterConfig {
                max_passes: 3,
                ..RouterConfig::default()
            },
        );
        assert!(matches!(
            router.route(&circuit),
            Err(FpgaError::Unroutable { .. })
        ));
    }

    #[test]
    fn wider_channels_make_it_routable() {
        let circuit = small_circuit();
        // Width 1 on a 3×3 with Fc=W=1 is very tight; width 6 is easy.
        let wide = Device::new(ArchSpec::xilinx4000(3, 3, 6)).unwrap();
        let router = Router::new(&wide, RouterConfig::default());
        assert!(router.route(&circuit).is_ok());
    }

    #[test]
    fn arborescence_router_reports_pathlengths() {
        let circuit = small_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 6)).unwrap();
        let router = Router::new(
            &device,
            RouterConfig::with_algorithm(RouteAlgorithm::Idom),
        );
        let outcome = router.route(&circuit).unwrap();
        assert_eq!(outcome.max_pathlengths.len(), 3);
        assert!(outcome.critical_pathlength() >= *outcome.max_pathlengths.iter().min().unwrap());
        assert!(outcome.total_max_pathlength() >= outcome.critical_pathlength());
    }

    #[test]
    fn extreme_congestion_pressure_saturates_instead_of_panicking() {
        // `alpha · u` overflows u64 at this setting; the commit path must
        // saturate (weights pinned at Weight::MAX) and keep routing.
        let circuit = small_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 6)).unwrap();
        let router = Router::new(
            &device,
            RouterConfig {
                congestion_alpha_milli: u64::MAX,
                ..RouterConfig::default()
            },
        );
        let outcome = router.route(&circuit).unwrap();
        assert_eq!(outcome.trees.len(), 3);
        assert!(outcome.total_wirelength > Weight::ZERO);
    }

    #[test]
    fn auto_thread_count_scales_with_circuit_size() {
        // Too few nets: sequential regardless of machine size.
        assert_eq!(auto_thread_count(16, 100_000, 3, 6), 1);
        // Tiny graph: sequential even with many nets.
        assert_eq!(auto_thread_count(16, 500, 200, 400), 1);
        // Big enough on both axes: use the whole machine.
        assert_eq!(auto_thread_count(16, 100_000, 200, 400), 16);
        // Degenerate available parallelism still yields a worker.
        assert_eq!(auto_thread_count(0, 100_000, 200, 400), 1);
        // Boundary values: exactly at the thresholds is parallel.
        assert_eq!(auto_thread_count(4, 2000, 8, 16), 4);
        assert_eq!(auto_thread_count(4, 1999, 8, 16), 1);
        assert_eq!(auto_thread_count(4, 2000, 7, 14), 1);
    }

    #[test]
    fn auto_thread_count_keeps_few_large_net_circuits_sequential() {
        // 16 nets averaging exactly 8 pins: few-large-nets → sequential.
        assert_eq!(auto_thread_count(16, 100_000, 16, 128), 1);
        // One pin fewer drops the average under the threshold: parallel.
        assert_eq!(auto_thread_count(16, 100_000, 16, 127), 16);
        // At 32 nets the rule no longer applies, whatever the fan-in.
        assert_eq!(auto_thread_count(16, 100_000, 32, 1024), 16);
        // Just under the net cutoff with heavy fan-in: sequential.
        assert_eq!(auto_thread_count(16, 100_000, 31, 248), 1);
    }

    #[test]
    fn threads_zero_routes_like_sequential() {
        let circuit = small_circuit();
        let device = Device::new(ArchSpec::xilinx4000(3, 3, 6)).unwrap();
        let auto = Router::new(
            &device,
            RouterConfig {
                threads: 0,
                ..RouterConfig::default()
            },
        );
        let seq = Router::new(&device, RouterConfig::default());
        let a = auto.route(&circuit).unwrap();
        let s = seq.route(&circuit).unwrap();
        assert_eq!(a.total_wirelength, s.total_wirelength);
        assert_eq!(a.passes, s.passes);
    }

    #[test]
    fn labels_and_roster() {
        assert_eq!(RouteAlgorithm::Ikmb.label(), "IKMB");
        assert!(RouteAlgorithm::Pfa.is_arborescence());
        assert!(!RouteAlgorithm::Kmb.is_arborescence());
        assert_eq!(RouteAlgorithm::table1_roster().len(), 8);
        assert_eq!(RouteMode::RipUp.name(), "ripup");
        assert_eq!(RouteMode::Pathfinder.name(), "pathfinder");
        assert_eq!(RouteMode::default(), RouteMode::RipUp);
    }

    #[test]
    fn promote_to_front_matches_naive_remove_insert() {
        // The exact sequence of orders must be unchanged by the O(pos)
        // rewrite: replay a failure sequence (with repeats and an
        // already-at-front net) against the old scan/remove/insert.
        let mut order: Vec<usize> = vec![2, 0, 4, 1, 3];
        let mut naive = order.clone();
        let mut index_of = vec![0usize; order.len()];
        for (i, &n) in order.iter().enumerate() {
            index_of[n] = i;
        }
        for ni in [3, 3, 1, 4, 0, 2, 2] {
            promote_to_front(&mut order, &mut index_of, ni);
            let pos = naive.iter().position(|&x| x == ni).unwrap();
            naive.remove(pos);
            naive.insert(0, ni);
            assert_eq!(order, naive, "after promoting {ni}");
            for (i, &n) in order.iter().enumerate() {
                assert_eq!(index_of[n], i, "index_of out of sync after {ni}");
            }
        }
    }
}
