//! Property tests over the device model: counts, flexibilities, and
//! connectivity for randomized architecture parameters.

use proptest::prelude::*;

use fpga_device::synth::{synthesize, CircuitProfile};
use fpga_device::{ArchSpec, Device, FcSpec, NodeKind, Side};
use route_graph::ShortestPaths;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Node counts follow the closed-form formula for any architecture.
    #[test]
    fn node_counts_follow_the_formula(
        rows in 1usize..7,
        cols in 1usize..7,
        w in 1usize..7,
        pins in 1usize..3,
    ) {
        let mut arch = ArchSpec::xilinx4000(rows, cols, w);
        arch.pins_per_side = pins;
        let device = Device::new(arch).unwrap();
        let expected = (rows + 1) * cols * w   // horizontal segments
            + (cols + 1) * rows * w            // vertical segments
            + rows * cols * 4 * pins;          // pins
        prop_assert_eq!(device.graph().node_count(), expected);
    }

    /// Every pin connects to exactly `F_c` tracks of one channel position.
    #[test]
    fn pin_fanout_equals_fc(
        rows in 2usize..6,
        cols in 2usize..6,
        w in 2usize..9,
        frac in 1usize..5,
    ) {
        let mut arch = ArchSpec::xilinx4000(rows, cols, w);
        arch.fc = FcSpec::Fraction { num: frac, den: 4 };
        let device = Device::new(arch).unwrap();
        let fc = arch.fc_resolved();
        for pin in device.pin_nodes() {
            let neighbors: Vec<_> = device.graph().neighbors(pin).collect();
            prop_assert_eq!(neighbors.len(), fc);
            // All on the same channel position.
            let positions: std::collections::HashSet<_> = neighbors
                .iter()
                .map(|&(u, _, _)| device.segment_position(u).unwrap())
                .collect();
            prop_assert_eq!(positions.len(), 1);
        }
    }

    /// Interior segments have exactly `2·F_s` segment-to-segment fanout
    /// for the supported flexibilities.
    #[test]
    fn interior_segment_fanout_is_two_fs(
        w in 3usize..8,
        fs_choice in 0usize..3,
    ) {
        let fs = [3usize, 4, 6][fs_choice];
        let mut arch = ArchSpec::xilinx4000(4, 4, w);
        arch.fs = fs;
        let device = Device::new(arch).unwrap();
        // An interior horizontal segment: channel 2 (between rows), seg 1.
        let interior = device
            .graph()
            .node_ids()
            .find(|&v| {
                matches!(
                    device.node_kind(v),
                    Ok(NodeKind::HorizontalSegment { channel: 2, seg: 1, track: 1 })
                )
            })
            .unwrap();
        let seg_neighbors = device
            .graph()
            .neighbors(interior)
            .filter(|&(u, _, _)| !device.is_pin(u))
            .count();
        prop_assert_eq!(seg_neighbors, 2 * fs);
    }

    /// Devices are always fully connected.
    #[test]
    fn device_is_connected(rows in 1usize..6, cols in 1usize..6, w in 1usize..6) {
        let device = Device::new(ArchSpec::xilinx4000(rows, cols, w)).unwrap();
        let start = device.pin_node(0, 0, Side::North, 0).unwrap();
        let sp = ShortestPaths::run(device.graph(), start).unwrap();
        for v in device.graph().node_ids() {
            prop_assert!(sp.dist(v).is_some());
        }
    }

    /// Synthetic circuits always match their profile histogram exactly and
    /// never double-book a pin.
    #[test]
    fn synthesis_honours_profiles(seed in 0u64..5_000, small in 2usize..12, big in 0usize..3) {
        let profile = CircuitProfile {
            name: "prop",
            rows: 6,
            cols: 6,
            nets_2_3: small,
            nets_4_10: 2,
            nets_over_10: big,
        };
        let circuit = synthesize(&profile, 2, seed).unwrap();
        let (s, m, l) = circuit.pin_histogram();
        prop_assert_eq!((s, m, l), (small, 2, big));
        let mut seen = std::collections::HashSet::new();
        for net in circuit.nets() {
            for pin in &net.pins {
                prop_assert!(seen.insert(*pin), "pin double-booked");
            }
        }
    }
}
