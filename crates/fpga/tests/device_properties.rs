//! Property tests over the device model: counts, flexibilities, and
//! connectivity for randomized architecture parameters.
//!
//! Cases are generated from the vendored [`route_graph::rng`] PRNG rather
//! than `proptest` so the suite builds with no network access.

use fpga_device::synth::{synthesize, CircuitProfile};
use fpga_device::{ArchSpec, Device, FcSpec, NodeKind, Side};
use route_graph::rng::{Rng, SplitMix64};
use route_graph::ShortestPaths;

const CASES: u64 = 24;

/// Node counts follow the closed-form formula for any architecture.
#[test]
fn node_counts_follow_the_formula() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let rows = rng.gen_range(1..7usize);
        let cols = rng.gen_range(1..7usize);
        let w = rng.gen_range(1..7usize);
        let pins = rng.gen_range(1..3usize);
        let mut arch = ArchSpec::xilinx4000(rows, cols, w);
        arch.pins_per_side = pins;
        let device = Device::new(arch).unwrap();
        let expected = (rows + 1) * cols * w   // horizontal segments
            + (cols + 1) * rows * w            // vertical segments
            + rows * cols * 4 * pins; // pins
        assert_eq!(device.graph().node_count(), expected, "seed {seed}");
    }
}

/// Every pin connects to exactly `F_c` tracks of one channel position.
#[test]
fn pin_fanout_equals_fc() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let rows = rng.gen_range(2..6usize);
        let cols = rng.gen_range(2..6usize);
        let w = rng.gen_range(2..9usize);
        let frac = rng.gen_range(1..5usize);
        let mut arch = ArchSpec::xilinx4000(rows, cols, w);
        arch.fc = FcSpec::Fraction { num: frac, den: 4 };
        let device = Device::new(arch).unwrap();
        let fc = arch.fc_resolved();
        for pin in device.pin_nodes() {
            let neighbors: Vec<_> = device.graph().neighbors(pin).collect();
            assert_eq!(neighbors.len(), fc, "seed {seed}");
            // All on the same channel position.
            let positions: std::collections::HashSet<_> = neighbors
                .iter()
                .map(|&(u, _, _)| device.segment_position(u).unwrap())
                .collect();
            assert_eq!(positions.len(), 1, "seed {seed}");
        }
    }
}

/// Interior segments have exactly `2·F_s` segment-to-segment fanout for
/// the supported flexibilities.
#[test]
fn interior_segment_fanout_is_two_fs() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let w = rng.gen_range(3..8usize);
        let fs = [3usize, 4, 6][rng.gen_range(0..3usize)];
        let mut arch = ArchSpec::xilinx4000(4, 4, w);
        arch.fs = fs;
        let device = Device::new(arch).unwrap();
        // An interior horizontal segment: channel 2 (between rows), seg 1.
        let interior = device
            .graph()
            .node_ids()
            .find(|&v| {
                matches!(
                    device.node_kind(v),
                    Ok(NodeKind::HorizontalSegment {
                        channel: 2,
                        seg: 1,
                        track: 1
                    })
                )
            })
            .unwrap();
        let seg_neighbors = device
            .graph()
            .neighbors(interior)
            .filter(|&(u, _, _)| !device.is_pin(u))
            .count();
        assert_eq!(seg_neighbors, 2 * fs, "seed {seed}");
    }
}

/// Devices are always fully connected.
#[test]
fn device_is_connected() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let rows = rng.gen_range(1..6usize);
        let cols = rng.gen_range(1..6usize);
        let w = rng.gen_range(1..6usize);
        let device = Device::new(ArchSpec::xilinx4000(rows, cols, w)).unwrap();
        let start = device.pin_node(0, 0, Side::North, 0).unwrap();
        let sp = ShortestPaths::run(device.graph(), start).unwrap();
        for v in device.graph().node_ids() {
            assert!(sp.dist(v).is_some(), "seed {seed}");
        }
    }
}

/// Synthetic circuits always match their profile histogram exactly and
/// never double-book a pin.
#[test]
fn synthesis_honours_profiles() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(case);
        let seed = rng.gen_range(0..5_000u64);
        let small = rng.gen_range(2..12usize);
        let big = rng.gen_range(0..3usize);
        let profile = CircuitProfile {
            name: "prop",
            rows: 6,
            cols: 6,
            nets_2_3: small,
            nets_4_10: 2,
            nets_over_10: big,
        };
        let circuit = synthesize(&profile, 2, seed).unwrap();
        let (s, m, l) = circuit.pin_histogram();
        assert_eq!((s, m, l), (small, 2, big), "case {case}");
        let mut seen = std::collections::HashSet::new();
        for net in circuit.nets() {
            for pin in &net.pins {
                assert!(seen.insert(*pin), "case {case}: pin double-booked");
            }
        }
    }
}
