//! Known-good fixture: the compliant counterparts of the determinism
//! family's bans — a sorted projection instead of raw hash iteration,
//! and a justified waiver where order provably cannot escape.

pub fn collect_ready(pending: &HashMap<u32, NetState>, out: &mut Vec<u32>) {
    let mut ready: Vec<u32> = pending.keys().copied().collect();
    ready.sort_unstable();
    for net in ready {
        if pending[&net].ready {
            out.push(net);
        }
    }
}

pub fn congestion_total(usage: &HashMap<u32, u32>) -> u64 {
    // lint: allow(determinism-hash-iter): u64 addition is commutative; the total is order-free
    usage.values().map(|&u| u as u64).fold(0, |a, b| a + b)
}
