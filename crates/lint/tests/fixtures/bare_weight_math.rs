//! Fixture: bare `+` on `Weight` values outside the weight modules.
//! Linted as `crates/core/src/bare_weight_math.rs`; must fire
//! `saturating-weights` exactly once, on the addition.

pub fn total_cost(a: Weight, b: Weight) -> Weight {
    a + b
}
