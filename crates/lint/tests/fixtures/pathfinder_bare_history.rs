//! Fixture: bare `+` on a `Weight` history accumulator, the exact bug
//! class saturating history accumulation exists to prevent. Linted as
//! `crates/fpga/src/pathfinder.rs`; must fire `saturating-weights`
//! exactly once, on the addition.

pub fn accumulate_history(history: Weight, increment: Weight) -> Weight {
    history + increment
}
