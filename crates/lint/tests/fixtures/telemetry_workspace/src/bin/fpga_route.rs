//! Fixture CLI for the telemetry-sync mini-workspace: parses one flag
//! that the fixture README never documents.

const ROUTE_FLAGS: FlagSpec = &[("bar", true)];
