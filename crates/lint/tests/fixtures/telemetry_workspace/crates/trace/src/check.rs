//! Fixture trace-check record-type table for the telemetry-sync
//! mini-workspace: both types are documented in the fixture README.

pub const RECORD_TYPES: [&str; 2] = ["meta", "span"];
