//! Fixture metrics enum for the telemetry-sync mini-workspace: one
//! histogram metric deliberately absent from the fixture README's
//! metric glossary, one gauge that is documented.

pub enum Metric {
    GhostNs,
}

pub enum Gauge {
    Workers,
}

impl Metric {
    pub fn name(self) -> &'static str {
        match self {
            Metric::GhostNs => "ghost_ns",
        }
    }
}

impl Gauge {
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Workers => "workers",
        }
    }
}
