//! Fixture counter enum for the telemetry-sync mini-workspace: one
//! variant, deliberately absent from the fixture README's glossary.

pub enum Counter {
    FooRuns,
}

impl Counter {
    pub fn name(self) -> &'static str {
        match self {
            Counter::FooRuns => "foo_runs",
        }
    }
}
