//! Fixture: a crate root without `#![forbid(unsafe_code)]`. Linted as
//! `crates/fixture/src/lib.rs`; must fire `unsafe-forbid` exactly once,
//! anchored to line 1.

pub fn entirely_safe() -> u32 {
    7
}
