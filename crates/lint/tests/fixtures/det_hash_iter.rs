//! Known-bad fixture: hash-order iteration in hot-path code. The net
//! order pushed into `out` inherits `HashMap`'s randomized iteration
//! order, so two runs route nets in different orders.

pub fn collect_ready(pending: &HashMap<u32, NetState>, out: &mut Vec<u32>) {
    for (net, state) in pending {
        if state.ready {
            out.push(*net);
        }
    }
}
