//! Known-bad fixture: float accumulation feeding a `Weight`. Float
//! addition is not associative, so the rounded total depends on commit
//! order — edge costs must stay in integer milli-units.

pub fn total_cost(edges: &[Weight]) -> Weight {
    let mut acc: f64 = 0.0;
    for w in edges {
        acc += w.as_f64();
    }
    Weight::from_milli(acc as u64)
}
