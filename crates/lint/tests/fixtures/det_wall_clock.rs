//! Known-bad fixture: a wall-clock reading in result-affecting hot
//! code. The elapsed time steers the rip-up budget, so the same input
//! routes differently under load.

pub fn ripup_budget(base: u32) -> u32 {
    let started = Instant::now();
    let slack = started.elapsed().as_millis() as u32;
    base.saturating_sub(slack)
}
