//! Fixture: `.unwrap()` in a hot-path module outside `#[cfg(test)]`.
//! Linted as `crates/fpga/src/router.rs` (a hot-path file name); must
//! fire `panic-hygiene` exactly once.

pub fn first_or_die(order: &[u32]) -> u32 {
    order.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
