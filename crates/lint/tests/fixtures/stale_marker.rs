//! Fixture: an allow-marker that no longer suppresses anything. Linted
//! as `crates/core/src/stale_marker.rs`; must fire `lint-marker`
//! exactly once, on the marker line.

pub fn harmless() -> u32 {
    // lint: allow(panic-hygiene): historical waiver, the unwrap it covered is long gone
    41 + 1
}
