//! Fixture: publishing to the shared pass graph from outside the
//! scheduler commit paths. Linted as `crates/fpga/src/commit_escape.rs`;
//! must fire `commit-path-mutation` exactly once.

pub fn sneak_commit(shared: &SharedPassGraph, seq: u64) {
    shared.publish(seq);
}
