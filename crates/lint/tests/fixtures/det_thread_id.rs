//! Known-bad fixture: thread identity leaking into routing behavior
//! outside the scheduler assignment layer. Seeding tie-breaks from the
//! thread id makes results depend on which worker picked up the net.

pub fn tie_break_seed() -> u64 {
    let id = thread::current().id();
    hash_of(id)
}
