//! Fixture: a distance entry point called from a module that is not on
//! the readset-recording allowlist. Linted as
//! `crates/fpga/src/readset_escape.rs`; must fire `readset-discipline`
//! exactly once, on the call line.

pub fn unrecorded_distances(g: &Graph, source: NodeId) -> ShortestPathsResult {
    ShortestPaths::run(g, source)
}
