//! Every rule must fire on its known-bad fixture, with a fully
//! populated diagnostic (file, line, rule, hint) — the self-test the
//! acceptance criteria demand, and the regression net that keeps a
//! lexer or matcher refactor from silently blinding a rule.

use std::path::Path;

use fpga_lint::rules::{commit_path, determinism, hygiene, readset, telemetry, weights};
use fpga_lint::{lint_source, Diagnostic, MARKER_RULE};

/// Reads a fixture from `tests/fixtures/`.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Lints a fixture under a logical workspace path and asserts it yields
/// exactly one diagnostic, for `rule`, with every field populated.
fn assert_fires_once(name: &str, logical: &str, rule: &str) -> Diagnostic {
    let diags = lint_source(logical, &fixture(name));
    assert_eq!(
        diags.len(),
        1,
        "{name} as {logical}: expected exactly one diagnostic, got {diags:#?}"
    );
    let d = diags.into_iter().next().unwrap();
    assert_eq!(d.rule, rule, "{name}: wrong rule");
    assert_eq!(d.path, logical, "{name}: wrong path");
    assert!(d.line >= 1, "{name}: line must be 1-based");
    assert!(!d.message.is_empty(), "{name}: empty message");
    assert!(!d.hint.is_empty(), "{name}: empty fix hint");
    let shown = d.to_string();
    assert!(
        shown.starts_with(&format!("{}:{}: [{}]", d.path, d.line, d.rule)),
        "{name}: rendered diagnostic must lead with file:line: [rule], got {shown}"
    );
    assert!(shown.contains("hint:"), "{name}: rendered hint missing");
    d
}

#[test]
fn readset_discipline_fires_on_unvetted_entry_point_call() {
    let d = assert_fires_once(
        "readset_escape.rs",
        "crates/fpga/src/readset_escape.rs",
        readset::RULE,
    );
    assert_eq!(d.line, 7, "diagnostic anchors to the call line");
    assert!(d.message.contains("ShortestPaths::run"));
}

#[test]
fn commit_path_mutation_fires_on_publish_outside_scheduler() {
    let d = assert_fires_once(
        "commit_escape.rs",
        "crates/fpga/src/commit_escape.rs",
        commit_path::RULE,
    );
    assert!(d.message.contains("publish"));
}

#[test]
fn saturating_weights_fires_on_bare_addition() {
    let d = assert_fires_once(
        "bare_weight_math.rs",
        "crates/core/src/bare_weight_math.rs",
        weights::RULE,
    );
    assert_eq!(d.line, 6, "diagnostic anchors to the addition");
}

#[test]
fn saturating_weights_fires_on_bare_history_accumulation_in_pathfinder() {
    // The negotiated-congestion module is NOT exempt from the rule: a
    // bare `+` on the history accumulator — the exact bug class its
    // saturating arithmetic exists to prevent — must still be caught
    // under the module's real workspace path.
    let d = assert_fires_once(
        "pathfinder_bare_history.rs",
        "crates/fpga/src/pathfinder.rs",
        weights::RULE,
    );
    assert_eq!(d.line, 7, "diagnostic anchors to the addition");
    assert!(d.message.contains("history"));
}

#[test]
fn unsafe_forbid_fires_on_crate_root_without_the_attribute() {
    let d = assert_fires_once(
        "missing_forbid.rs",
        "crates/fixture/src/lib.rs",
        hygiene::RULE_UNSAFE,
    );
    assert_eq!(d.line, 1, "missing-attribute diagnostics anchor to line 1");
}

#[test]
fn panic_hygiene_fires_on_hot_path_unwrap_but_not_in_tests() {
    let d = assert_fires_once(
        "hot_unwrap.rs",
        "crates/fpga/src/router.rs",
        hygiene::RULE_PANIC,
    );
    assert!(d.message.contains("unwrap"));
    // The same source under a cold-path name is clean: the fixture's
    // only finding really is the hot-path unwrap.
    assert!(lint_source("crates/fpga/src/viz.rs", &fixture("hot_unwrap.rs")).is_empty());
}

#[test]
fn stale_allow_markers_are_themselves_diagnostics() {
    let d = assert_fires_once(
        "stale_marker.rs",
        "crates/core/src/stale_marker.rs",
        MARKER_RULE,
    );
    assert!(d.message.contains("panic-hygiene"), "names the waived rule");
}

#[test]
fn telemetry_sync_fires_on_the_mini_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/telemetry_workspace");
    let diags = telemetry::check_workspace(&root);
    assert_eq!(diags.len(), 4, "got {diags:#?}");
    for d in &diags {
        assert_eq!(d.rule, telemetry::RULE);
        assert!(d.line >= 1 && !d.message.is_empty() && !d.hint.is_empty());
    }
    assert!(
        diags.iter().any(|d| d.message.contains("`foo_runs`")),
        "emitted counter missing from the glossary"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("`stale_counter`")),
        "glossary row naming no variant"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("`ghost_ns`")),
        "emitted metric missing from the metric glossary"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("`--bar`")),
        "undocumented CLI flag"
    );
}

#[test]
fn determinism_hash_iter_fires_on_raw_hashmap_iteration() {
    let d = assert_fires_once(
        "det_hash_iter.rs",
        "crates/fpga/src/det_hash_iter.rs",
        determinism::RULE_HASH,
    );
    assert_eq!(d.line, 6, "diagnostic anchors to the for-loop");
    assert!(d.message.contains("pending"), "names the container");
}

#[test]
fn determinism_wall_clock_fires_on_instant_now() {
    let d = assert_fires_once(
        "det_wall_clock.rs",
        "crates/fpga/src/det_wall_clock.rs",
        determinism::RULE_CLOCK,
    );
    assert_eq!(d.line, 6, "diagnostic anchors to the Instant::now call");
}

#[test]
fn determinism_thread_id_fires_outside_the_scheduler_layer() {
    let d = assert_fires_once(
        "det_thread_id.rs",
        "crates/fpga/src/det_thread_id.rs",
        determinism::RULE_THREAD,
    );
    assert_eq!(d.line, 6, "diagnostic anchors to thread::current");
    // The identical source inside the scheduler assignment layer is
    // legal: work distribution is identity-dependent by design.
    assert!(lint_source("crates/fpga/src/sched.rs", &fixture("det_thread_id.rs")).is_empty());
}

#[test]
fn determinism_float_weight_fires_on_accumulation_near_weight() {
    let d = assert_fires_once(
        "det_float_weight.rs",
        "crates/fpga/src/det_float_weight.rs",
        determinism::RULE_FLOAT,
    );
    assert_eq!(d.line, 8, "diagnostic anchors to the `+=`");
    assert!(d.message.contains("acc"), "names the accumulator");
}

#[test]
fn determinism_clean_fixture_shows_the_sanctioned_escapes() {
    // Sorted projection and a justified waiver both lint clean under a
    // hot-path logical name — the escapes DESIGN.md §5i prescribes.
    assert!(lint_source("crates/fpga/src/det_clean.rs", &fixture("det_clean.rs")).is_empty());
    // Under a telemetry path even the bad wall-clock fixture is fine:
    // timing is that module's product.
    assert!(
        lint_source("crates/trace/src/det_wall_clock.rs", &fixture("det_wall_clock.rs"))
            .is_empty()
    );
}

#[test]
fn clean_sources_stay_clean_under_the_same_logical_paths() {
    // The inverse direction: a compliant version of each fixture yields
    // nothing, so the assertions above measure the defect, not the path.
    assert!(lint_source(
        "crates/fpga/src/readset_escape.rs",
        "pub fn noop() {}\n"
    )
    .is_empty());
    assert!(lint_source(
        "crates/fixture/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn noop() {}\n"
    )
    .is_empty());
    assert!(lint_source(
        "crates/fpga/src/router.rs",
        "pub fn first(order: &[u32]) -> Option<u32> { order.first().copied() }\n"
    )
    .is_empty());
}
