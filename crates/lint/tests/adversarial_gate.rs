//! Adversarial end-to-end gate: seed a real nondeterminism bug — a
//! `HashMap`-iteration net ordering — into a *scratch copy* of a
//! route-phase helper and assert the `fpga_lint` binary (the exact
//! artifact ci.sh runs) exits nonzero, while the repaired copy and the
//! live workspace stay green. This exercises the whole pipeline: walk,
//! lex, item extraction, cone BFS through a helper one call away from
//! the entry point, rule dispatch, and the process exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The seeded bug: `order_nets` is NOT an entry point — it is reachable
/// only through `route_negotiated`, so catching it proves the cone
/// propagates through the call graph rather than matching entry files.
const PATHFINDER_BAD: &str = r#"
pub fn route_negotiated(nets: &HashMap<u32, Net>) -> Vec<u32> {
    order_nets(nets)
}

fn order_nets(pending: &HashMap<u32, Net>) -> Vec<u32> {
    let mut out = Vec::new();
    for (net, _state) in pending {
        out.push(*net);
    }
    out
}
"#;

/// The repaired copy: identical shape, sorted projection.
const PATHFINDER_GOOD: &str = r#"
pub fn route_negotiated(nets: &HashMap<u32, Net>) -> Vec<u32> {
    order_nets(nets)
}

fn order_nets(pending: &HashMap<u32, Net>) -> Vec<u32> {
    let mut out: Vec<u32> = pending.keys().copied().collect();
    out.sort_unstable();
    out
}
"#;

/// Stubs for the other pinned entry points, so the scratch workspace
/// carries no `determinism-cone` (missing anchor) diagnostics and the
/// only difference between bad and good runs is the seeded bug.
const PARALLEL_STUB: &str = "
pub fn route_pass_parallel() {}
pub fn speculate() {}
pub fn commit_one() {}
";
const SCHED_STUB: &str = "
pub fn route_pass_wavefront() {}
";
const DIJKSTRA_STUB: &str = "
pub fn run() {}
pub fn run_guided() {}
pub fn run_to_targets() {}
pub fn run_to_targets_guided() {}
pub fn run_to_targets_with() {}
";

struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn build(tag: &str, pathfinder: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "fpga_lint_adversarial_{}_{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, body) in [
            ("crates/fpga/src/pathfinder.rs", pathfinder),
            ("crates/fpga/src/parallel.rs", PARALLEL_STUB),
            ("crates/fpga/src/sched.rs", SCHED_STUB),
            ("crates/graph/src/dijkstra.rs", DIJKSTRA_STUB),
        ] {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("rel paths have parents")).unwrap();
            std::fs::write(path, body).unwrap();
        }
        Scratch { root }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn run_lint(root: &Path, extra: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fpga_lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn fpga_lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn seeded_hash_order_bug_fails_the_gate_and_the_fix_clears_it() {
    let bad = Scratch::build("bad", PATHFINDER_BAD);
    let (code, stdout, stderr) = run_lint(&bad.root, &[]);
    assert_eq!(code, Some(1), "seeded bug must fail the gate\nstdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("determinism-hash-iter") && stdout.contains("pathfinder.rs"),
        "diagnostic names the rule and file:\n{stdout}"
    );
    assert!(
        !stdout.contains("determinism-cone"),
        "all entry anchors resolve in the scratch workspace:\n{stdout}"
    );
    // The cone report proves the helper was reached through the entry.
    assert!(
        stderr.contains("route_negotiated"),
        "cone report lists the entry:\n{stderr}"
    );

    let good = Scratch::build("good", PATHFINDER_GOOD);
    let (code, stdout, stderr) = run_lint(&good.root, &[]);
    assert_eq!(
        code,
        Some(0),
        "sorted projection lints clean\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn seeded_bug_shows_up_in_json_with_code_and_snippet() {
    let bad = Scratch::build("json", PATHFINDER_BAD);
    let (code, stdout, _stderr) = run_lint(&bad.root, &["--json"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"code\":\"FL010\""), "stable rule code:\n{stdout}");
    assert!(
        stdout.contains("\"snippet\":\"for (net, _state) in pending {\""),
        "snippet quotes the offending line:\n{stdout}"
    );
    assert!(stdout.contains("\"summary\":{\"determinism-hash-iter\":1}"), "{stdout}");
}

#[test]
fn live_workspace_stays_green_under_the_ci_invocation() {
    // Two levels up from crates/lint: the real repository root. Budgets
    // mirror ci.sh — bench timing is tolerated, nothing else is.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let (code, stdout, stderr) = run_lint(
        &root,
        &[
            "--waiver-budget",
            "determinism-wall-clock=8",
            "--waiver-budget",
            "determinism-float-weight=2",
        ],
    );
    assert_eq!(
        code,
        Some(0),
        "live workspace must lint clean\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("hot-path cone:"),
        "cone report present:\n{stderr}"
    );
}
