//! A hand-rolled Rust lexer producing a flat token stream with line
//! numbers.
//!
//! The linter does not need a parse tree: every rule it enforces is a
//! statement about *which names are uttered where* (a Dijkstra entry
//! point outside an allowlisted module, `.unwrap()` in a hot-path file,
//! a bare `+` next to a `Weight`), and a token stream answers those
//! questions without the maintenance weight of a grammar. The lexer's
//! one hard job is to never misread context: string literals, char
//! literals, raw strings, lifetimes, and nested block comments must not
//! leak their contents into the identifier stream, or `"a + b"` inside
//! a doc string would trip an arithmetic rule.
//!
//! Line comments are kept (as [`TokenKind::LineComment`]) because the
//! `// lint: allow(<rule>): <why>` suppression markers live in them.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// Punctuation; multi-character operators (`::`, `+=`, `->`, …) are
    /// single tokens so rules can tell `+` from `+=`.
    Punct,
    /// A lifetime (`'a`), distinguished from char literals.
    Lifetime,
    /// A `//` comment, text *without* the leading slashes.
    LineComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators lexed as single tokens, longest first.
const COMPOUND: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>", "..",
];

/// Lexes `source` into a token stream. Never fails: unterminated
/// literals are closed at end of input (the linter runs on
/// work-in-progress files and must not panic on them).
pub fn lex(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as in real Rust.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if raw_string_hashes(b, i).is_some() => {
                let (body_start, hashes) = raw_string_hashes(b, i).unwrap();
                let tok_line = line;
                i = body_start;
                let closer = format!("\"{}", "#".repeat(hashes));
                let content_end;
                loop {
                    if i >= b.len() {
                        content_end = i;
                        break;
                    }
                    // Byte-wise compare: `"` (0x22) is never a UTF-8
                    // continuation byte, so a match is a real closer and
                    // `i` there is a char boundary.
                    if b[i..].starts_with(closer.as_bytes()) {
                        content_end = i;
                        i += closer.len();
                        break;
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[body_start..content_end].to_string(),
                    line: tok_line,
                });
            }
            b'b' if b.get(i + 1) == Some(&b'"') || b.get(i + 1) == Some(&b'\'') => {
                let tok_line = line;
                let quote = b[i + 1];
                let start = i + 2;
                i = skip_quoted(b, start, quote, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: quoted_content(source, start, i, quote),
                    line: tok_line,
                });
            }
            b'"' => {
                let tok_line = line;
                let start = i + 1;
                i = skip_quoted(b, start, b'"', &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: quoted_content(source, start, i, b'"'),
                    line: tok_line,
                });
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'` followed by
                // an identifier NOT closed by another `'`.
                if is_char_literal(source, i) {
                    let tok_line = line;
                    let start = i + 1;
                    i = skip_quoted(b, start, b'\'', &mut line);
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: quoted_content(source, start, i, b'\''),
                        line: tok_line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                // Raw identifier prefix.
                if c == b'r' && b.get(i + 1) == Some(&b'#') && ident_start(b.get(i + 2).copied()) {
                    i += 2;
                }
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let text = source[start..i].trim_start_matches("r#").to_string();
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                // Fractional part: `.` followed by a digit (so `0..n`
                // stays a range, not a float).
                if i < b.len()
                    && b[i] == b'.'
                    && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &source[i..];
                let op = COMPOUND.iter().find(|op| rest.starts_with(**op));
                // Fall back to one whole *character*, not one byte: a
                // multi-byte codepoint here (stray `é`, `→` in macro-ish
                // code) must not split mid-UTF-8 and panic the linter.
                let text = op.map_or_else(
                    || rest.chars().next().map_or_else(String::new, |c| c.to_string()),
                    ToString::to_string,
                );
                i += text.len().max(1);
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    tokens
}

fn ident_start(c: Option<u8>) -> bool {
    c.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br##"`, …),
/// returns `(index just past the opening quote, number of hashes)`.
fn raw_string_hashes(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// `true` if the `'` at `i` opens a char literal rather than a lifetime.
/// Char-aware, not byte-aware: `'é'` is a two-byte codepoint whose
/// closing quote sits at byte `i + 3`, and a byte-indexed check would
/// misread it as a lifetime and leave the lexer mid-codepoint.
fn is_char_literal(source: &str, i: usize) -> bool {
    let mut chars = source[i + 1..].chars();
    match chars.next() {
        Some('\\') => true,                  // '\n', '\'', …
        Some(_) => chars.next() == Some('\''), // 'a', 'é'
        None => false,
    }
}

/// The raw content (escapes unprocessed) of a quoted literal whose body
/// started at `start` and whose [`skip_quoted`] scan ended at `end`.
fn quoted_content(source: &str, start: usize, end: usize, quote: u8) -> String {
    let b = source.as_bytes();
    let end = end.min(b.len());
    // `end` sits just past the closing quote when the literal closed;
    // on an unterminated literal it is end-of-input.
    let content_end = if end > start && b.get(end - 1) == Some(&quote) {
        end - 1
    } else {
        end
    };
    source[start..content_end].to_string()
}

/// Skips a quoted literal body starting just after the opening quote;
/// returns the index just past the closing quote. Tracks newlines for
/// multi-line strings.
fn skip_quoted(b: &[u8], mut i: usize, quote: u8, line: &mut usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A `\`-newline continuation still ends a source line;
                // skipping it blind would shift every later line number
                // and misapply line-anchored allow-markers.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_and_compound_ops() {
        let toks = lex("let nd = d.saturating_add(w);");
        assert!(toks.iter().any(|t| t.is_ident("saturating_add")));
        let toks = lex("a += b; c -> d; e::f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"::"));
        assert!(!puncts.contains(&"+"));
    }

    #[test]
    fn string_contents_never_leak() {
        assert!(idents("let s = \"ShortestPaths::run + unwrap()\";").len() == 2);
        assert!(idents("let s = r#\"a \" + unwrap\"#;").len() == 2);
        assert!(idents("let c = 'u'; let e = '\\n';").len() == 4);
        assert!(idents("/* unwrap() /* nested */ still comment */ fn f() {}").len() == 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(),
            3
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            0
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1; // note\nfn f() {}\n";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("f")).unwrap();
        assert_eq!(f.line, 4);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert_eq!(comment.line, 3);
        assert_eq!(comment.text.trim(), "note");
    }

    #[test]
    fn ranges_and_floats_disambiguate() {
        let toks = lex("for i in 0..10 { let x = 1.5; }");
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal && t.text == "1.5"));
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex("let s = \"dijkstra_runs\"; let r = r#\"raw \" body\"#; let c = 'x';");
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["dijkstra_runs", "raw \" body", "x"]);
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn raw_strings_with_multi_hash_closers_do_not_leak() {
        // An `r##"…"##` body containing `"#` (a shorter closer) must not
        // end the literal early and spill `unwrap` into the ident stream.
        let src = "let s = r##\"body \"# still_inside unwrap()\"##; fn after() {}";
        assert_eq!(idents(src), vec!["let", "s", "fn", "after"]);
        let toks = lex(src);
        let lit = toks.iter().find(|t| t.kind == TokenKind::Literal).unwrap();
        assert_eq!(lit.text, "body \"# still_inside unwrap()");
        // Byte-string raw literals take the same path.
        assert_eq!(idents("let b = br#\"x \" unwrap\"#;"), vec!["let", "b"]);
    }

    #[test]
    fn nested_block_comments_track_depth_and_lines() {
        // Two levels of nesting: the inner `*/` must not close the outer
        // comment, and every newline inside still advances the line.
        let src = "/* outer\n /* inner\n */ still_comment\n*/\nfn f() {}";
        let toks = lex(src);
        assert_eq!(idents(src), vec!["fn", "f"]);
        assert_eq!(toks.iter().find(|t| t.is_ident("f")).unwrap().line, 5);
    }

    #[test]
    fn non_ascii_char_literals_are_literals_not_lifetimes() {
        // `'é'` is a two-byte codepoint; a byte-indexed disambiguation
        // would misread it as a lifetime and then panic slicing the
        // continuation byte. It must lex as one Literal without panicking.
        let toks = lex("let c = 'é'; fn f<'a>(x: &'a str) {}");
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["é"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(),
            2,
            "the generic parameter and reference lifetimes survive"
        );
        // A stray multi-byte punct-position char must not panic either.
        let toks = lex("let x = 1; → let y = 2;");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Punct && t.text == "→"));
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        let src = "let s = \"one\\\ntwo\";\nfn f() {}\n";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("f")).unwrap();
        assert_eq!(f.line, 3, "backslash-newline continuation advances the line count");
    }
}
