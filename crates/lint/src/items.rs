//! An approximate item model over the lexer's token stream: which
//! functions a file defines (with their enclosing `impl` type and body
//! spans) and which functions each body appears to call.
//!
//! This is deliberately *not* a parser. The call-graph consumers
//! ([`crate::callgraph`]) only need three statements per file — "a
//! function named N, on type T, spans tokens A..B", "inside that span,
//! `X::y(`, `.y(` or `y(` is uttered", and "this file `use`s these
//! paths" — and a single forward scan over tokens with a brace-depth
//! counter answers all three. The price is approximation: macro bodies,
//! trait-object dispatch, and function pointers produce no edges (the
//! known false-negative shapes, documented in DESIGN.md §5i), and
//! same-named methods on different types over-approximate. Both errors
//! are survivable for a lint scope — over-approximation widens the
//! checked cone, and the named false-negative shapes do not occur on
//! the routing hot path, which this workspace keeps macro-free and
//! static-dispatch by construction.

use crate::lexer::{Token, TokenKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `Type::method(` or `module::function(` — qualifier plus name.
    Qualified(String, String),
    /// `.method(` — receiver type unknown.
    Method(String),
    /// `function(` — a bare call.
    Bare(String),
}

impl CallRef {
    /// The called name, qualifier stripped.
    pub fn name(&self) -> &str {
        match self {
            CallRef::Qualified(_, n) | CallRef::Method(n) | CallRef::Bare(n) => n,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: CallRef,
    pub line: usize,
}

/// One `fn` item: its name, the `impl` type it sits on (if any), its
/// 1-based source line span, and the calls its body utters.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Last path segment of the `impl` target (`GraphOverlay`,
    /// `ShortestPaths`, …); `None` for free functions.
    pub self_ty: Option<String>,
    pub start_line: usize,
    pub end_line: usize,
    pub calls: Vec<CallSite>,
}

/// The item model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "in", "as", "fn", "loop", "move", "box", "where",
    "let", "else", "mut", "ref", "impl", "dyn", "use", "pub", "crate", "super", "self", "Self",
    "true", "false", "unsafe", "async", "await", "break", "continue",
];

/// Extracts the item model from a lexed file.
///
/// One forward scan with a brace-depth counter. `impl` blocks push their
/// target type onto a stack keyed by entry depth; `fn` items open a
/// frame keyed by the depth of their body brace, and every call-shaped
/// token triple inside is attributed to the *innermost* open function —
/// which also makes closure bodies and nested `fn`s attribute correctly
/// enough for reachability.
pub fn extract(tokens: &[Token]) -> FileItems {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment)
        .collect();
    let mut out = FileItems::default();
    let mut depth = 0i32;
    // (entered-at depth, impl target type)
    let mut impl_stack: Vec<(i32, Option<String>)> = Vec::new();
    // Open fn frames: (body depth, index into out.fns).
    let mut fn_stack: Vec<(i32, usize)> = Vec::new();

    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let tok = &tokens[i];
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => {
                depth -= 1;
                while fn_stack.last().is_some_and(|&(d, _)| d > depth) {
                    let (_, fi) = fn_stack.pop().expect("guarded by last()");
                    out.fns[fi].end_line = tok.line;
                }
                // An impl frame entered at depth D owns the brace that
                // raised depth to D+1, so its own `}` returns depth to D.
                while impl_stack.last().is_some_and(|&(d, _)| d >= depth) {
                    impl_stack.pop();
                }
            }
            (TokenKind::Ident, "impl") => {
                // Scan to the opening `{`, remembering the last path
                // segment of the target type (after `for` when present).
                let mut ty: Option<String> = None;
                let mut after_for = false;
                let mut j = k + 1;
                let mut angle = 0i32;
                while j < code.len() {
                    let t = &tokens[code[j]];
                    if t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    match (t.kind, t.text.as_str()) {
                        (TokenKind::Punct, "<") => angle += 1,
                        (TokenKind::Punct, ">") => angle -= 1,
                        (TokenKind::Punct, ">>") => angle -= 2,
                        (TokenKind::Ident, "for") => {
                            after_for = true;
                            ty = None;
                        }
                        (TokenKind::Ident, "where") => break,
                        (TokenKind::Ident, name) if angle <= 0 => {
                            // Keep the last base-path segment seen; for
                            // `impl Trait for Type` the reset above makes
                            // that the Type side.
                            let _ = after_for;
                            ty = Some(name.to_string());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                impl_stack.push((depth, ty));
                // Fall through: the `{` itself is handled on its turn.
            }
            (TokenKind::Ident, "fn") => {
                let Some(name_tok) = code.get(k + 1).map(|&j| &tokens[j]) else {
                    k += 1;
                    continue;
                };
                if name_tok.kind != TokenKind::Ident {
                    k += 1;
                    continue;
                }
                let self_ty = impl_stack
                    .iter()
                    .rev()
                    .find_map(|(_, ty)| ty.clone());
                // Find the body `{` (or a `;` for trait declarations),
                // skipping the parameter list and any return/where types.
                let mut j = k + 2;
                let mut paren = 0i32;
                let mut angle = 0i32;
                let mut body_at: Option<usize> = None;
                while j < code.len() {
                    let t = &tokens[code[j]];
                    match (t.kind, t.text.as_str()) {
                        (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => paren += 1,
                        (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => paren -= 1,
                        (TokenKind::Punct, "<") => angle += 1,
                        (TokenKind::Punct, ">") => angle -= 1,
                        (TokenKind::Punct, ">>") => angle -= 2,
                        (TokenKind::Punct, "->") => {}
                        (TokenKind::Punct, "{") if paren == 0 => {
                            body_at = Some(j);
                            break;
                        }
                        (TokenKind::Punct, ";") if paren == 0 && angle <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                out.fns.push(FnItem {
                    name: name_tok.text.clone(),
                    self_ty,
                    start_line: tok.line,
                    end_line: name_tok.line, // grown when the body closes
                    calls: Vec::new(),
                });
                if let Some(body) = body_at {
                    // The body brace will raise `depth` when its `{` is
                    // scanned; frames close when depth drops back.
                    fn_stack.push((depth + 1, out.fns.len() - 1));
                    // Resume the main scan *at* the `{` so depth tracking
                    // stays consistent.
                    k = body;
                    continue;
                }
                k = j;
                continue;
            }
            (TokenKind::Ident, name) => {
                if let Some(&(_, fi)) = fn_stack.last() {
                    if let Some(call) = call_at(tokens, &code, k, name) {
                        out.fns[fi].calls.push(CallSite {
                            callee: call,
                            line: tok.line,
                        });
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Close any frames left open by a truncated file.
    let last_line = tokens.last().map_or(1, |t| t.line);
    for (_, fi) in fn_stack {
        out.fns[fi].end_line = last_line;
    }
    out
}

/// If the identifier at `code[k]` is the *name position* of a
/// call-shaped token sequence, classify it.
fn call_at(tokens: &[Token], code: &[usize], k: usize, name: &str) -> Option<CallRef> {
    if CALL_KEYWORDS.contains(&name) {
        return None;
    }
    let get = |o: isize| {
        let idx = k as isize + o;
        usize::try_from(idx).ok().and_then(|u| code.get(u)).map(|&j| &tokens[j])
    };
    // The name must be directly followed by `(`; `name::` means this
    // token is a qualifier, not the callee (the callee's own turn will
    // classify it).
    if !get(1).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let prev = get(-1);
    if prev.is_some_and(|t| t.is_ident("fn")) {
        return None; // definition, not a call
    }
    if prev.is_some_and(|t| t.is_punct("::")) {
        // `Qualifier::name(` — capture the qualifier segment.
        let q = get(-2).filter(|t| t.kind == TokenKind::Ident);
        return Some(match q {
            Some(q) => CallRef::Qualified(q.text.clone(), name.to_string()),
            None => CallRef::Bare(name.to_string()),
        });
    }
    if prev.is_some_and(|t| t.is_punct(".")) {
        return Some(CallRef::Method(name.to_string()));
    }
    // Macro invocation `name!(…)` is not a function call.
    if prev.is_some_and(|t| t.is_punct("!")) {
        return None;
    }
    Some(CallRef::Bare(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileItems {
        extract(&lex(src))
    }

    #[test]
    fn free_and_impl_fns_extract_with_spans() {
        let src = "\
fn free(x: u32) -> u32 {\n    helper(x)\n}\n\
struct S;\n\
impl S {\n    fn method(&self) {\n        self.other();\n    }\n}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "free");
        assert_eq!(m.fns[0].self_ty, None);
        assert_eq!((m.fns[0].start_line, m.fns[0].end_line), (1, 3));
        assert_eq!(m.fns[1].name, "method");
        assert_eq!(m.fns[1].self_ty.as_deref(), Some("S"));
        assert_eq!((m.fns[1].start_line, m.fns[1].end_line), (6, 8));
    }

    #[test]
    fn fns_after_a_closed_impl_are_free_again() {
        let src = "impl S { fn m(&self) {} }\nfn free_after() { helper(); }\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].self_ty.as_deref(), Some("S"));
        assert_eq!(m.fns[1].self_ty, None, "the impl frame closed with its brace");
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let src = "impl<G: GraphView> Potential for GridPotential<G> {\n fn h(&self) { grid(self) }\n}\n";
        let m = model(src);
        assert_eq!(m.fns[0].self_ty.as_deref(), Some("GridPotential"));
    }

    #[test]
    fn calls_classify_and_attribute_to_the_innermost_fn() {
        let src = "\
fn outer() {\n\
    let x = ShortestPaths::run(&g, s);\n\
    let c = |v| inner_helper(v);\n\
    x.settle(c);\n\
    fn nested() { nested_only(); }\n\
    tail_call();\n\
}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2, "outer and nested both extract");
        let outer = &m.fns[0];
        let calls: Vec<&CallRef> = outer.calls.iter().map(|c| &c.callee).collect();
        assert!(calls.contains(&&CallRef::Qualified("ShortestPaths".into(), "run".into())));
        assert!(calls.contains(&&CallRef::Bare("inner_helper".into())));
        assert!(calls.contains(&&CallRef::Method("settle".into())));
        assert!(calls.contains(&&CallRef::Bare("tail_call".into())));
        let nested = &m.fns[1];
        assert_eq!(nested.calls.len(), 1);
        assert_eq!(nested.calls[0].callee, CallRef::Bare("nested_only".into()));
        assert!(
            !outer.calls.iter().any(|c| c.callee.name() == "nested_only"),
            "nested-body calls do not leak into the outer frame"
        );
    }

    #[test]
    fn keywords_macros_and_definitions_are_not_calls() {
        let src = "fn f() {\n if (a) {}\n println!(\"x\");\n match (b) { _ => {} }\n}\n";
        let m = model(src);
        assert!(m.fns[0].calls.is_empty(), "got {:?}", m.fns[0].calls);
    }

    #[test]
    fn trait_method_declarations_without_bodies_are_items_without_calls() {
        let src = "trait T {\n fn decl(&self) -> usize;\n fn with_default(&self) { dflt(); }\n}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].calls.is_empty());
        assert_eq!(m.fns[1].calls.len(), 1);
    }

    #[test]
    fn fn_returning_generic_with_brace_free_types_finds_its_body() {
        let src = "fn f<T: Ord>(v: Vec<T>) -> impl Iterator<Item = T> where T: Clone {\n body_call();\n v.into_iter()\n}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].calls.iter().any(|c| c.callee.name() == "body_call"));
    }
}
