//! `fpga-lint` — a zero-dependency invariant checker for this workspace.
//!
//! The router's bit-identity guarantee under speculation rides on
//! hand-maintained disciplines that the compiler cannot see: every
//! shortest-path computation must be recorded into the thread-local
//! read set, `SharedPassGraph` mutation must stay on the scheduler's
//! commit paths, `Weight` arithmetic must saturate, hot paths must not
//! panic, and the telemetry surface must stay documented. Each rule
//! here mechanically enforces one of those disciplines over the raw
//! token stream (see [`lexer`]) and fails CI with `file:line`
//! diagnostics when a call site drifts.
//!
//! # Suppression
//!
//! Any diagnostic can be waived at a single line with
//!
//! ```text
//! // lint: allow(<rule-name>): <justification>
//! ```
//!
//! on the offending line or the line directly above it. The
//! justification is mandatory — a bare `allow` is itself a diagnostic —
//! so every waiver carries its soundness argument in the source.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use lexer::{Token, TokenKind};

/// One registered rule: its marker name, stable machine-readable code
/// (for `--json` consumers; codes never get reused), and description.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub name: &'static str,
    pub code: &'static str,
    pub what: &'static str,
}

/// Every rule the linter knows.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: rules::readset::RULE,
        code: "FL001",
        what: "Dijkstra/distance-graph entry points may only be called from readset-recording modules",
    },
    RuleInfo {
        name: rules::commit_path::RULE,
        code: "FL002",
        what: "shared-graph write handles and snapshot repricing stay on single-writer commit paths",
    },
    RuleInfo {
        name: rules::weights::RULE,
        code: "FL003",
        what: "bare +/-/* on Weight values outside weight.rs/multiweight.rs",
    },
    RuleInfo {
        name: rules::hygiene::RULE_UNSAFE,
        code: "FL004",
        what: "every crate root keeps #![forbid(unsafe_code)]",
    },
    RuleInfo {
        name: rules::hygiene::RULE_PANIC,
        code: "FL005",
        what: "unwrap()/expect() banned in hot-path-cone functions outside #[cfg(test)]",
    },
    RuleInfo {
        name: rules::telemetry::RULE,
        code: "FL006",
        what: "trace counters and CLI flags stay in sync with the README",
    },
    RuleInfo {
        name: MARKER_RULE,
        code: "FL007",
        what: "malformed // lint: allow(...) markers",
    },
    RuleInfo {
        name: rules::determinism::RULE_HASH,
        code: "FL010",
        what: "HashMap/HashSet iteration in the hot-path cone without a sort or reduction",
    },
    RuleInfo {
        name: rules::determinism::RULE_CLOCK,
        code: "FL011",
        what: "Instant/SystemTime in hot-path-cone code outside the telemetry modules",
    },
    RuleInfo {
        name: rules::determinism::RULE_THREAD,
        code: "FL012",
        what: "thread identity or worker-index branching outside the scheduler assignment layer",
    },
    RuleInfo {
        name: rules::determinism::RULE_FLOAT,
        code: "FL013",
        what: "float accumulation in hot-path-cone code that feeds Weight",
    },
    RuleInfo {
        name: rules::determinism::RULE_CONE,
        code: "FL014",
        what: "every pinned hot-path entry point still exists (the cone cannot silently shrink)",
    },
];

/// The stable code of `rule`, for machine-readable output.
pub fn rule_code(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.name == rule)
        .map_or("FL000", |r| r.code)
}

/// Rule name for diagnostics about the markers themselves.
pub const MARKER_RULE: &str = "lint-marker";

/// One finding: where, which rule, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name, suitable for an `allow(...)` marker.
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    hint: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// A parsed `// lint: allow(rule): justification` marker.
#[derive(Debug, Clone)]
struct AllowMarker {
    line: usize,
    rule: String,
}

/// Where a file's rule scopes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeSource {
    /// A workspace lint with a real call graph: `in_cone` is the
    /// computed hot-path cone, `aux` marks tests/benches files.
    Workspace,
    /// A single-file lint (`lint_source` / `--check-file`): no call
    /// graph exists, so cone-scoped rules fall back to conservative
    /// path-based approximations (library-crate files are presumed
    /// in-cone for the determinism family; panic-hygiene keeps its
    /// legacy hot-file list).
    SingleFile,
}

/// Everything a per-file rule gets to look at.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// The full token stream, comments included.
    pub tokens: &'a [Token],
    /// `in_test[i]` — token `i` sits inside a `#[cfg(test)]` item.
    pub in_test: &'a [bool],
    /// `in_cone[i]` — token `i` sits inside a hot-path-cone function.
    /// All-false outside the call-graph universe and in single-file mode.
    pub in_cone: &'a [bool],
    /// The file sits in an auxiliary scan scope (integration tests,
    /// benches): the determinism family applies whole-file there.
    pub aux: bool,
    /// Workspace (real cone) or single-file (fallback scopes).
    pub scope: ScopeSource,
}

impl FileCtx<'_> {
    /// Iterator over non-comment token indices.
    pub fn code_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| self.tokens[i].kind != TokenKind::LineComment)
    }

    /// The file name component of the path.
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(self.path)
    }

    /// Whether token `i` is in scope for the determinism family: the
    /// hot-path cone, the aux scan scope, or (single-file fallback) any
    /// library-crate file — conservative, because without a call graph
    /// a fixture or work-in-progress file cannot prove itself cold.
    pub fn determinism_scope(&self, i: usize) -> bool {
        match self.scope {
            ScopeSource::Workspace => self.in_cone[i] || self.aux,
            ScopeSource::SingleFile => callgraph::in_universe(self.path) || self.aux,
        }
    }
}

/// Lints one file's source under its workspace-relative logical path.
///
/// The logical path drives every rule's applicability (hot-path file
/// lists, allowlisted modules, exempt directories), so fixtures can be
/// checked *as if* they lived anywhere in the tree. No call graph
/// exists in this mode: cone-scoped rules use their conservative
/// single-file fallbacks (see [`ScopeSource::SingleFile`]).
pub fn lint_source(logical_path: &str, source: &str) -> Vec<Diagnostic> {
    let tokens = lexer::lex(source);
    let in_cone = vec![false; tokens.len()];
    lint_tokens(
        logical_path,
        &tokens,
        &in_cone,
        aux_path(logical_path),
        ScopeSource::SingleFile,
    )
}

/// The shared per-file rule pipeline.
fn lint_tokens(
    path: &str,
    tokens: &[Token],
    in_cone: &[bool],
    aux: bool,
    scope: ScopeSource,
) -> Vec<Diagnostic> {
    let in_test = cfg_test_mask(tokens);
    let ctx = FileCtx {
        path,
        tokens,
        in_test: &in_test,
        in_cone,
        aux,
        scope,
    };
    let mut diags = Vec::new();
    diags.extend(rules::readset::check(&ctx));
    diags.extend(rules::commit_path::check(&ctx));
    diags.extend(rules::weights::check(&ctx));
    diags.extend(rules::hygiene::check(&ctx));
    diags.extend(rules::determinism::check(&ctx));
    let (markers, marker_diags) = collect_markers(path, tokens);
    diags.extend(marker_diags);
    apply_markers(path, diags, &markers)
}

/// Auxiliary scan scope: integration tests and benches. Not part of the
/// call-graph universe (they call into the libraries, never the
/// reverse) but scanned whole-file by the determinism family — a
/// nondeterministic test is a flaky bit-identity assertion. The
/// linter's own tree is excluded (its tests are made of deliberately
/// nondeterministic fixture text).
pub fn aux_path(path: &str) -> bool {
    !path.starts_with("crates/lint/")
        && (path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/"))
}

/// A workspace lint result: the diagnostics plus the hot-path cone they
/// were scoped by.
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    pub cone: callgraph::Cone,
}

/// Lints the whole workspace under `root`: lexes every `.rs` file,
/// builds the item model and approximate call graph over the library
/// crates, computes the hot-path cone, then runs every per-file rule
/// with real cone scopes, plus the cross-file telemetry-sync rule.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(lint_workspace_report(root)?.diagnostics)
}

/// [`lint_workspace`], keeping the cone for reporting.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace_report(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    // Pass 1: lex everything once; extract items over the call-graph
    // universe and compute the cone.
    let mut lexed: Vec<(String, Vec<Token>)> = Vec::new();
    let mut model: BTreeMap<String, items::FileItems> = BTreeMap::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let tokens = lexer::lex(&source);
        if callgraph::in_universe(&rel) {
            model.insert(rel.clone(), items::extract(&tokens));
        }
        lexed.push((rel, tokens));
    }
    let cone = callgraph::compute_cone(&model);

    // A pinned entry point that no longer resolves means the cone — and
    // with it every cone-scoped rule — silently shrank.
    let mut diagnostics: Vec<Diagnostic> = cone
        .missing_entry_points()
        .map(|entry| {
            let (path, name) = entry.rsplit_once("::").unwrap_or((entry, entry));
            Diagnostic {
                path: path.to_string(),
                line: 1,
                rule: rules::determinism::RULE_CONE,
                message: format!(
                    "hot-path entry point `{name}` not found — the cone lost an anchor"
                ),
                hint: "re-pin the renamed/moved entry point in callgraph::ENTRY_POINTS so \
                       cone-scoped rules keep covering the parallel route phases"
                    .to_string(),
            }
        })
        .collect();

    // Pass 2: per-file rules under real cone scopes.
    for (rel, tokens) in &lexed {
        let in_cone: Vec<bool> = tokens
            .iter()
            .map(|t| cone.contains_line(rel, t.line))
            .collect();
        diagnostics.extend(lint_tokens(
            rel,
            tokens,
            &in_cone,
            aux_path(rel),
            ScopeSource::Workspace,
        ));
    }
    diagnostics.extend(rules::telemetry::check_workspace(root));
    Ok(WorkspaceReport { diagnostics, cone })
}

/// Directories never scanned: build output, VCS, the linter's own
/// deliberately-bad fixtures, and non-source archives.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "experiments_out"];

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Parses every `// lint: allow(...)` marker in the comment stream.
/// Markers must carry a justification and name a known rule; violations
/// of either are diagnostics in their own right.
fn collect_markers(path: &str, tokens: &[Token]) -> (Vec<AllowMarker>, Vec<Diagnostic>) {
    let mut markers = Vec::new();
    let mut diags = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            diags.push(marker_diag(path, t.line, "marker is not `allow(<rule>)`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(marker_diag(path, t.line, "unclosed `allow(` marker"));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.iter().any(|r| r.name == rule) {
            diags.push(marker_diag(
                path,
                t.line,
                &format!("marker names unknown rule `{rule}`"),
            ));
            continue;
        }
        let justification = rest[close + 1..]
            .trim_start_matches([':', '-', ' '])
            .trim();
        if justification.is_empty() {
            diags.push(marker_diag(
                path,
                t.line,
                &format!("allow({rule}) marker has no justification"),
            ));
            continue;
        }
        markers.push(AllowMarker { line: t.line, rule });
    }
    (markers, diags)
}

fn marker_diag(path: &str, line: usize, message: &str) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        rule: MARKER_RULE,
        message: message.to_string(),
        hint: "write `// lint: allow(<rule>): <why this site is sound>`".to_string(),
    }
}

/// Drops diagnostics waived by a marker on the same line or the line
/// directly above. Unused markers are reported — a waiver that waives
/// nothing is stale documentation.
fn apply_markers(path: &str, diags: Vec<Diagnostic>, markers: &[AllowMarker]) -> Vec<Diagnostic> {
    let mut used: BTreeMap<usize, bool> = markers.iter().map(|m| (m.line, false)).collect();
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in diags {
        let waived = markers.iter().find(|m| {
            m.rule == d.rule && (m.line == d.line || m.line + 1 == d.line)
        });
        if let Some(m) = waived {
            if let Some(flag) = used.get_mut(&m.line) {
                *flag = true;
            }
        } else {
            kept.push(d);
        }
    }
    for m in markers {
        if used.get(&m.line) == Some(&false) && !kept.iter().any(|d| d.line == m.line) {
            // An unused marker is only worth reporting when nothing else
            // fired on its line (a marker above a moved line, say).
            kept.push(Diagnostic {
                path: path.to_string(),
                line: m.line,
                rule: MARKER_RULE,
                message: format!("allow({}) marker waives nothing", m.rule),
                hint: "delete the stale marker or move it next to the waived line".to_string(),
            });
        }
    }
    kept
}

/// Marks every token inside a `#[cfg(test)]`-gated item.
///
/// On seeing the attribute, any further attributes are skipped and the
/// following item's body (to the matching close brace, or the
/// terminating semicolon for brace-less items) is masked.
pub(crate) fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment)
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        if is_cfg_test_at(tokens, &code, k) {
            // Find the end of this attribute (its closing `]`).
            let mut j = k + 1; // at `[`
            let mut depth = 0i32;
            while j < code.len() {
                let t = &tokens[code[j]];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            // Skip any further attributes, then mask the item.
            let mut item = j + 1;
            while item < code.len() && tokens[code[item]].is_punct("#") {
                let mut d = 0i32;
                item += 1;
                while item < code.len() {
                    let t = &tokens[code[item]];
                    if t.is_punct("[") {
                        d += 1;
                    } else if t.is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    item += 1;
                }
                item += 1;
            }
            let mut brace = 0i32;
            let mut end = item;
            while end < code.len() {
                let t = &tokens[code[end]];
                if t.is_punct("{") {
                    brace += 1;
                } else if t.is_punct("}") {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                } else if t.is_punct(";") && brace == 0 {
                    break;
                }
                end += 1;
            }
            for idx in &code[k..=end.min(code.len() - 1)] {
                mask[*idx] = true;
            }
            k = end + 1;
        } else {
            k += 1;
        }
    }
    mask
}

/// `code[k]` starts a `#[cfg(test)]` or `#[cfg(all(test, …))]`-style
/// attribute: `#` `[` `cfg` `(` … `test` … `)` `]`.
fn is_cfg_test_at(tokens: &[Token], code: &[usize], k: usize) -> bool {
    let get = |o: usize| code.get(k + o).map(|&i| &tokens[i]);
    if !get(0).is_some_and(|t| t.is_punct("#"))
        || !get(1).is_some_and(|t| t.is_punct("["))
        || !get(2).is_some_and(|t| t.is_ident("cfg"))
        || !get(3).is_some_and(|t| t.is_punct("("))
    {
        return false;
    }
    // Scan the cfg argument list for a bare `test` predicate.
    let mut o = 4;
    let mut depth = 1i32;
    while let Some(t) = get(o) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident("test") && !get(o + 1).is_some_and(|n| n.is_punct("=")) {
            return true;
        }
        o += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mask_covers_test_modules() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let tokens = lexer::lex(src);
        let mask = cfg_test_mask(&tokens);
        let unwraps: Vec<bool> = tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let tail = tokens.iter().zip(&mask).find(|(t, _)| t.is_ident("tail")).unwrap();
        assert!(!tail.1, "items after the test module are unmasked");
    }

    #[test]
    fn cfg_test_mask_handles_attribute_stacks_and_cfg_all() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nfn t() { z.unwrap(); }\nfn hot() { w.unwrap(); }\n";
        let tokens = lexer::lex(src);
        let mask = cfg_test_mask(&tokens);
        let unwraps: Vec<bool> = tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_eq_value_is_not_a_test_gate() {
        // `#[cfg(test = "no")]` — contrived, but `test` here is a key,
        // not the predicate.
        let src = "#[cfg(feature = \"test\")]\nfn f() { a.unwrap(); }\n";
        let tokens = lexer::lex(src);
        let mask = cfg_test_mask(&tokens);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn markers_require_known_rule_and_justification() {
        let src = "\
// lint: allow(panic-hygiene): poisoned lock is fatal by design\n\
fn f() {}\n\
// lint: allow(panic-hygiene)\n\
// lint: allow(no-such-rule): whatever\n";
        let tokens = lexer::lex(src);
        let (markers, diags) = collect_markers("x.rs", &tokens);
        assert_eq!(markers.len(), 1);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == MARKER_RULE));
        assert!(diags[0].message.contains("no justification"));
        assert!(diags[1].message.contains("unknown rule"));
    }

    #[test]
    fn marker_waives_same_line_and_next_line() {
        let diag = |line| Diagnostic {
            path: "x.rs".into(),
            line,
            rule: rules::hygiene::RULE_PANIC,
            message: "m".into(),
            hint: "h".into(),
        };
        let markers = vec![AllowMarker {
            line: 10,
            rule: rules::hygiene::RULE_PANIC.to_string(),
        }];
        let kept = apply_markers("x.rs", vec![diag(10), diag(11), diag(12)], &markers);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 12);
    }

    #[test]
    fn stale_markers_are_reported() {
        let markers = vec![AllowMarker {
            line: 3,
            rule: rules::weights::RULE.to_string(),
        }];
        let kept = apply_markers("x.rs", Vec::new(), &markers);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("waives nothing"));
        assert_eq!(kept[0].path, "x.rs", "stale markers carry the file path");
    }
}
